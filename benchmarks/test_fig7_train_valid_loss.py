"""Figure 7: training and validation loss vs iteration for the large-minibatch run.

The paper shows the loss on the training and validation splits of the 15M
offline dataset while training at 1,024 nodes with the 128k global minibatch.
This bench runs the same pipeline at reproduction scale: the offline tau
dataset with a held-out validation split, the distributed trainer with
Adam-LARC and polynomial decay, and prints both curves.  Asserted shape: both
losses decrease, and the validation loss tracks the training loss without
diverging (no overfitting blow-up at this budget).
"""

import numpy as np

from repro.common.rng import RandomState
from repro.distributed import DistributedTrainer
from repro.ppl.nn import InferenceNetwork

from benchmarks.conftest import BENCH_CONFIG, print_series

ITERATIONS = 20
VALIDATE_EVERY = 2


def test_fig7_training_and_validation_loss(benchmark, tau_dataset):
    network = InferenceNetwork(config=BENCH_CONFIG, observe_key="detector", rng=RandomState(7))
    trainer = DistributedTrainer(
        network,
        tau_dataset,
        num_ranks=2,
        local_minibatch_size=8,
        optimizer="adam",
        larc=True,
        lr_schedule="poly2",
        total_iterations_hint=ITERATIONS,
        learning_rate=3e-3,
        end_learning_rate=1e-4,
        validation_fraction=0.15,
        seed=7,
    )
    report = benchmark.pedantic(
        lambda: trainer.train(ITERATIONS, validate_every=VALIDATE_EVERY, validation_minibatch=32),
        iterations=1,
        rounds=1,
    )

    print_series(
        "Figure 7: training loss vs iteration",
        "iteration",
        list(range(1, ITERATIONS + 1)),
        {"train_loss": report.train_losses},
    )
    print_series(
        "Figure 7: validation loss",
        "iteration",
        report.validation_iterations,
        {"validation_loss": report.validation_losses},
    )

    train = np.asarray(report.train_losses)
    valid = np.asarray(report.validation_losses)
    assert train[-5:].mean() < train[:5].mean()
    assert valid[-1] < valid[0]
    # Validation tracks training: the gap stays within a factor of the overall
    # improvement (no divergence).
    assert abs(valid[-1] - train[-3:].mean()) < 2.0 * abs(train[0] - train[-3:].mean()) + 1.0
