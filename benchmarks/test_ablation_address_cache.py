"""Ablation (Section 4.2): caching of address-string construction.

The C++ PPX front end converts stack traces to symbolic names with dladdr;
caching those conversions gave a 5x improvement in address-string production.
The Python analogue caches per-code-object frame symbolisation inside
:class:`repro.ppx.addresses.AddressBuilder`.  This bench measures address
construction with and without the cache from a call stack of realistic depth
and asserts the cached path is faster while producing identical addresses.
"""

import time

from repro.ppx import AddressBuilder

from benchmarks.conftest import print_table

CALLS = 3000
STACK_DEPTH = 10


def _call_chain(builder, depth):
    if depth == 0:
        return builder.build(skip_frames=1)
    return _call_chain(builder, depth - 1)


def _time_builder(builder):
    start = time.perf_counter()
    for _ in range(CALLS):
        _call_chain(builder, STACK_DEPTH)
    return time.perf_counter() - start


def test_ablation_address_cache_speedup(benchmark):
    cached = AddressBuilder(use_cache=True, max_depth=STACK_DEPTH + 4)
    uncached = AddressBuilder(use_cache=False, max_depth=STACK_DEPTH + 4)

    # Same address strings either way.
    assert _call_chain(cached, STACK_DEPTH) == _call_chain(uncached, STACK_DEPTH)

    uncached_time = _time_builder(uncached)
    benchmark(lambda: _call_chain(cached, STACK_DEPTH))
    cached_time = _time_builder(cached)
    speedup = uncached_time / cached_time

    print_table(
        "Ablation: address-string construction with and without the symbolisation cache",
        ["configuration", f"time for {CALLS} addresses (ms)", "speedup"],
        [
            ["uncached (dladdr every call)", f"{uncached_time * 1e3:.1f}", "1.0x"],
            ["cached", f"{cached_time * 1e3:.1f}", f"{speedup:.2f}x"],
        ],
    )
    print(f"cache hits {cached.cache_hits}, misses {cached.cache_misses}")

    assert cached.cache_hits > cached.cache_misses
    assert speedup > 1.0
