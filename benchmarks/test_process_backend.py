"""Benchmark: process-based cohort execution vs the thread pool under the GIL.

After PR 3, the ROADMAP records that the per-trace cost floor of the serving
stack is GIL contention between cohort worker threads, not NN compute.  This
bench measures exactly that boundary: a CPU-bound pure-Python simulator (the
worst case for threads, the normal case for scientific simulators) served by
``PosteriorService`` with ``backend="thread"`` vs ``backend="process"`` at
``num_workers = 2``, identical seeds and shard layout.

Required on a multi-core runner (the bench skips when only one core is
visible — two worker processes pinned to one core measure scheduling noise,
not the GIL):

* both backends produce **identical** seeded posteriors (the load-bearing
  correctness property: randomness is derived in the parent, so the execution
  venue cannot change what is drawn); and
* the process backend completes the same request load at least
  ``PROCESS_SPEEDUP_MIN`` (default 1.15x) faster in wall-clock time.

The vectorised-choice-kernel micro-bench rides along: the inverse-CDF kernel
must not be slower than per-draw ``generator.choice(p=...)`` it replaces
(bit-identity is asserted in ``tests/test_distributions_batched.py``).
"""

import os
import time

import numpy as np
import pytest

from repro.common.rng import RandomState
from repro.distributions.batched import BatchedMixtureOfTruncatedNormals
from repro.ppl import FunctionModel, observe, sample
from repro.serving import PosteriorService
from repro.distributions import Normal, Uniform

from benchmarks.conftest import print_table

NUM_REQUESTS = 6
TRACES_PER_REQUEST = 8
NUM_WORKERS = 2
# Heavy enough that per-shard compute (~hundreds of ms) dominates the
# process backend's fixed IPC/pickle overhead (~tens of ms per run).
SPIN_ITERATIONS = int(os.environ.get("PROCESS_BENCH_SPIN", "60000"))
MIN_SPEEDUP = float(os.environ.get("PROCESS_SPEEDUP_MIN", "1.15"))


def cpu_bound_program():
    """A simulator whose cost is pure-Python compute (holds the GIL)."""
    a = sample(Uniform(-1.0, 1.0), name="a", address="cpu_a")
    total = 0.0
    for i in range(SPIN_ITERATIONS):
        total += ((a + i) % 7.0) * 1e-6
    b = sample(Normal(total, 1.0), name="b", address="cpu_b")
    observe(Normal(a + b, 0.5), name="obs")
    return a


OBSERVATION = {"obs": np.array(0.4)}


def _run_backend(backend: str):
    model = FunctionModel(cpu_bound_program, name="cpu-bound")
    service = PosteriorService(
        model,
        None,  # likelihood weighting: all cost is the simulator itself
        num_workers=NUM_WORKERS,
        backend=backend,
        max_batch=TRACES_PER_REQUEST,  # one request per cohort: pure worker parallelism
        max_latency=0.001,
        shard_min=1,
    ).start()
    try:
        started = time.perf_counter()
        futures = [
            service.submit(
                OBSERVATION, num_traces=TRACES_PER_REQUEST, seed=seed, use_cache=False
            )
            for seed in range(NUM_REQUESTS)
        ]
        results = [future.result(timeout=300) for future in futures]
        elapsed = time.perf_counter() - started
    finally:
        service.stop()
    summaries = [
        (result.posterior.extract("a").mean, result.posterior.log_evidence)
        for result in results
    ]
    return elapsed, summaries


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 2,
    reason="process-vs-thread speedup needs at least two cores",
)
def test_process_backend_beats_threads_on_cpu_bound_model():
    thread_elapsed, thread_summaries = _run_backend("thread")
    process_elapsed, process_summaries = _run_backend("process")

    # Identical seeded posteriors whichever backend executed the shards.
    for (thread_mean, thread_evidence), (process_mean, process_evidence) in zip(
        thread_summaries, process_summaries
    ):
        assert process_mean == thread_mean
        assert process_evidence == thread_evidence

    speedup = thread_elapsed / process_elapsed
    print_table(
        f"process vs thread backend ({NUM_REQUESTS} requests x "
        f"{TRACES_PER_REQUEST} traces, {NUM_WORKERS} workers)",
        ["backend", "wall s", "speedup"],
        [
            ["thread", f"{thread_elapsed:.3f}", "1.00"],
            ["process", f"{process_elapsed:.3f}", f"{speedup:.2f}"],
        ],
    )
    assert speedup >= MIN_SPEEDUP, (
        f"process backend speedup {speedup:.2f}x below required {MIN_SPEEDUP}x "
        f"(thread {thread_elapsed:.3f}s vs process {process_elapsed:.3f}s)"
    )


def test_inverse_cdf_choice_kernel_not_slower_than_percall():
    rng = np.random.default_rng(7)
    batch, components, rounds = 64, 10, 200
    locs = rng.normal(size=(batch, components))
    scales = np.abs(rng.normal(size=(batch, components))) + 0.1
    weights = np.abs(rng.normal(size=(batch, components))) + 0.05
    lows = locs.min(axis=1) - 1.0
    highs = locs.max(axis=1) + 1.0

    def run(kernel: str) -> float:
        batched = BatchedMixtureOfTruncatedNormals(
            locs, scales, weights, lows, highs, choice_kernel=kernel
        )
        rngs = [RandomState(row) for row in range(batch)]
        started = time.perf_counter()
        for _ in range(rounds):
            batched.sample_rows(rngs)
        return time.perf_counter() - started

    run("percall")  # warm-up: first-touch allocations out of the timing
    percall = run("percall")
    inverse_cdf = run("inverse_cdf")
    ratio = percall / inverse_cdf
    print_table(
        f"component-choice kernel (B={batch}, K={components}, {rounds} rounds)",
        ["kernel", "wall s", "relative"],
        [
            ["percall generator.choice", f"{percall:.4f}", "1.00"],
            ["inverse-CDF", f"{inverse_cdf:.4f}", f"{ratio:.2f}"],
        ],
    )
    # Wall-clock assertion kept loose (shared runners): the vectorised kernel
    # must at minimum not regress the path it replaces.
    assert inverse_cdf <= percall * 1.10
