"""Figure 6: weak scaling of distributed training on Cori and Edison.

Throughput (traces/s) vs node count with a fixed local minibatch of 64 per
rank and 2 ranks per node, showing average, peak and ideal curves for both
machines.  The reproduction drives the calibrated cluster performance model
with the trace-length distribution of the actual mini-Sherpa dataset, so the
load-imbalance behaviour comes from real data.  Assertions cover the shape of
the published result: throughput grows with node count but falls away from
ideal, Cori is faster than Edison in absolute traces/s, average scaling
efficiency at 1,024 nodes lands in the published ballpark (0.5 on Cori, 0.79
on Edison — Edison scales better because its slower sockets make the fixed
communication cost relatively smaller), and peak >= average.
"""

import numpy as np

from repro.common.rng import RandomState
from repro.distributed import CORI, EDISON, ClusterPerformanceModel

from benchmarks.conftest import print_series

NODE_COUNTS = [1, 64, 128, 256, 512, 1024]


def _scaling(cluster, lengths, seed):
    model = ClusterPerformanceModel(
        cluster,
        trace_length_distribution=lengths,
        local_minibatch_size=64,
        ranks_per_node=2,
        rng=RandomState(seed),
    )
    return model.weak_scaling(NODE_COUNTS, iterations=15)


def test_fig6_weak_scaling(benchmark, tau_dataset):
    lengths = [tau_dataset.trace_length_of(i) for i in range(len(tau_dataset))]
    cori = benchmark.pedantic(_scaling, args=(CORI, lengths, 1), iterations=1, rounds=1)
    edison = _scaling(EDISON, lengths, 2)

    for name, points in (("Cori", cori), ("Edison", edison)):
        print_series(
            f"Figure 6: weak scaling on {name} (traces/s)",
            "nodes",
            NODE_COUNTS,
            {
                "average": [p.average_traces_per_s for p in points],
                "peak": [p.peak_traces_per_s for p in points],
                "ideal": [p.ideal_traces_per_s for p in points],
                "efficiency": [p.efficiency for p in points],
            },
        )

    for points in (cori, edison):
        avg = [p.average_traces_per_s for p in points]
        assert all(a < b for a, b in zip(avg, avg[1:]))                 # still scaling
        assert all(p.peak_traces_per_s >= p.average_traces_per_s for p in points)
        assert all(p.average_traces_per_s <= p.ideal_traces_per_s for p in points)
        assert points[-1].efficiency < points[0].efficiency            # growing gap from ideal

    # Cori (HSW) is faster in absolute terms at every node count.
    for c, e in zip(cori, edison):
        assert c.average_traces_per_s > e.average_traces_per_s
    # Efficiency at 1,024 nodes in a broad band around the published 0.5 / 0.79,
    # and Edison's relative efficiency is at least as good as Cori's.
    assert 0.3 < cori[-1].efficiency < 0.95
    assert 0.4 < edison[-1].efficiency <= 1.0
    assert edison[-1].efficiency >= cori[-1].efficiency - 0.05
