"""Benchmark: micro-batched posterior serving vs serial one-shot inference.

The serving subsystem's claim: when many *independent* posterior requests are
in flight at once, coalescing their trace jobs into shared lockstep cohorts
amortizes the per-request costs that serial ``posterior()`` calls pay every
time — the observation-embedding forward and tiny-cohort NN stepping — which
is the amortized-inference payoff at the traffic level rather than the trace
level.

The workload is the latency-sensitive serving shape: ``NUM_REQUESTS``
concurrent low-budget queries (``TRACES_PER_REQUEST`` traces each, distinct
seeds so every request is genuine inference, not a cache hit) against one
observation.  Serially each request runs its own 2-trace cohort and its own
observation embedding; coalesced, all of them share full 64-slot cohorts and
a single embedding.  Required:

* every request completes, and its posterior is identical (to floating-point
  batching precision) to a direct seeded ``batched_importance_sampling`` run;
* the scheduler actually coalesced the requests (far fewer cohorts than
  requests, cohorts mixing many requests); and
* total throughput beats the serial baseline by ``SERVING_SPEEDUP_MIN``
  (default 2x; CI smoke overrides down for noisy shared runners).
"""

import os
import time

import numpy as np

from repro.common.config import Config
from repro.common.rng import RandomState
from repro.ppl import FunctionModel, observe, sample
from repro.ppl.inference.batched import batched_importance_sampling
from repro.ppl.inference.inference_compilation import InferenceCompilation
from repro.serving import PosteriorService
from repro.distributions import Normal, Uniform

from benchmarks.conftest import print_table

NUM_REQUESTS = 32
TRACES_PER_REQUEST = 2
MAX_BATCH = 64
ROUNDS = 3
MIN_SPEEDUP = float(os.environ.get("SERVING_SPEEDUP_MIN", "2.0"))

SERVING_CONFIG = Config(
    observation_shape=(12, 17, 17),
    lstm_hidden=128,
    lstm_stacks=1,
    observation_embedding_dim=64,
    address_embedding_dim=32,
    sample_embedding_dim=4,
    proposal_mixture_components=10,
)

_D, _H, _W = SERVING_CONFIG.observation_shape
_ZZ = np.linspace(-1, 1, _D)[:, None, None]
_YY = np.linspace(-1, 1, _H)[None, :, None]
_XX = np.linspace(-1, 1, _W)[None, None, :]


def _deposit(px, py, pz):
    """A cheap deterministic 'calorimeter': a Gaussian blob on the voxel grid."""
    return pz * np.exp(-((_XX - px / 3.0) ** 2 + (_YY - py / 3.0) ** 2 + _ZZ**2))


def lockstep_program():
    px = sample(Uniform(-2.0, 2.0), name="px")
    py = sample(Normal(0.0, 1.0), name="py")
    pz = sample(Uniform(0.5, 2.0), name="pz")
    observe(Normal(_deposit(px, py, pz), 0.5), name="detector")
    return px


def test_serving_coalesces_concurrent_requests_with_speedup():
    model = FunctionModel(lockstep_program, name="serving-lockstep")
    engine = InferenceCompilation(config=SERVING_CONFIG, observe_key="detector", rng=RandomState(0))
    engine.train(model, num_traces=160, minibatch_size=16, learning_rate=3e-3)
    observation = {"detector": _deposit(0.7, -0.4, 1.2)}
    seeds = [100 + index for index in range(NUM_REQUESTS)]

    def run_serial():
        start = time.perf_counter()
        posteriors = [
            batched_importance_sampling(
                model, observation, num_traces=TRACES_PER_REQUEST,
                batch_size=MAX_BATCH,  # the engine default: one small cohort per request
                network=engine.network, rng=RandomState(seed),
            )
            for seed in seeds
        ]
        return time.perf_counter() - start, posteriors

    def run_served(service):
        start = time.perf_counter()
        futures = [
            service.submit(observation, TRACES_PER_REQUEST, seed=seed, use_cache=False)
            for seed in seeds
        ]
        results = [future.result(timeout=300) for future in futures]
        return time.perf_counter() - start, results

    serial_times, served_times = [], []
    serial_posteriors = served_results = None
    with PosteriorService(
        model, engine.network, observe_key="detector",
        max_batch=MAX_BATCH, max_latency=0.01, num_workers=1, shard_min=MAX_BATCH,
    ) as service:
        run_served(service)  # warm both paths once (numpy/scipy dispatch caches)
        run_serial()
        for _ in range(ROUNDS):
            elapsed, served_results = run_served(service)
            served_times.append(elapsed)
            elapsed, serial_posteriors = run_serial()
            serial_times.append(elapsed)
        stats = service.stats()

    serial_best = min(serial_times)
    served_best = min(served_times)
    speedup = serial_best / served_best
    total_traces = NUM_REQUESTS * TRACES_PER_REQUEST
    cohorts_per_round = stats["engine"]["num_cohorts"] / (ROUNDS + 1)

    print_table(
        "Micro-batched posterior serving vs serial one-shot inference "
        f"({NUM_REQUESTS} concurrent requests x {TRACES_PER_REQUEST} traces)",
        ["mode", "best wall time (s)", "traces/s", "cohorts/round", "obs embeds/round"],
        [
            ["serial posterior() calls", f"{serial_best:.3f}",
             f"{total_traces / serial_best:.1f}", NUM_REQUESTS, NUM_REQUESTS],
            ["served (coalesced)", f"{served_best:.3f}",
             f"{total_traces / served_best:.1f}", f"{cohorts_per_round:.1f}",
             f"{stats['engine']['num_observation_embeddings'] / (ROUNDS + 1):.1f}"],
        ],
    )
    print(f"speedup: {speedup:.2f}x (required: >= {MIN_SPEEDUP}x)")
    print(f"mixed-cohort fraction: {stats['mixed_cohort_fraction']:.2f}  "
          f"mean occupancy: {stats['mean_cohort_occupancy']:.2f}")

    # Coalescing really happened: far fewer cohorts than requests, cohorts
    # mixing many requests, and the shared observation embedded once per
    # cohort instead of once per request.
    assert cohorts_per_round < NUM_REQUESTS / 4
    assert stats["mixed_cohort_fraction"] > 0.5
    assert stats["engine"]["num_observation_embeddings"] < stats["engine"]["num_cohorts"] + 1
    assert stats["completed"] == (ROUNDS + 1) * NUM_REQUESTS

    # Identical seeded posteriors: serving changes scheduling, not inference.
    for result, direct in zip(served_results, serial_posteriors):
        for latent in ("px", "py", "pz"):
            assert abs(
                result.posterior.extract(latent).mean - direct.extract(latent).mean
            ) < 1e-6, latent
        assert abs(result.posterior.log_evidence - direct.log_evidence) < 1e-6

    assert speedup >= MIN_SPEEDUP
