"""Ablation (Section 4.2): 13x speed-up of the 3D-scalar multivariate-normal PDF.

The paper replaced the general xtensor-based MVN PDF used by the detector
simulator with a scalar implementation limited to the 3D case, reporting a 13x
PDF speed-up and a 1.5x speed-up of the whole simulator pipeline.  This bench
times both code paths of :class:`repro.distributions.MultivariateNormal` on
detector-sized batches and asserts that the scalar path wins by a substantial
factor while producing identical densities.
"""

import time

import numpy as np

from repro.common.rng import RandomState
from repro.distributions import MultivariateNormal

from benchmarks.conftest import print_table

BATCH = 5000
REPEATS = 20


def _time(fn, repeats=REPEATS):
    start = time.perf_counter()
    for _ in range(repeats):
        fn()
    return (time.perf_counter() - start) / repeats


def test_ablation_mvn_pdf_speedup(benchmark):
    rng = RandomState(0)
    cov = np.array([[0.04, 0.001, 0.0], [0.001, 0.05, 0.002], [0.0, 0.002, 0.03]])
    mvn = MultivariateNormal([0.1, -0.2, 0.3], cov)
    points = np.asarray(mvn.sample(rng, size=BATCH))

    general_time = _time(lambda: mvn.log_prob(points))
    scalar_time = benchmark(lambda: mvn.log_prob_3d_scalar(points))
    scalar_time_measured = _time(lambda: mvn.log_prob_3d_scalar(points))
    speedup = general_time / scalar_time_measured

    print_table(
        "Ablation: multivariate-normal PDF, general vs scalar 3D path",
        ["path", "time per call (ms)", "speedup"],
        [
            ["general (Cholesky solve)", f"{general_time * 1e3:.3f}", "1.0x"],
            ["scalar 3D", f"{scalar_time_measured * 1e3:.3f}", f"{speedup:.1f}x"],
        ],
    )

    # Identical densities, and a clear win for the scalar path (the paper saw
    # 13x against xtensor; we only require a solid factor, not the exact one).
    assert np.allclose(mvn.log_prob(points), mvn.log_prob_3d_scalar(points))
    assert speedup > 1.5
