"""Table 2: single-node training throughput (traces/s) and flop rate per platform.

Two views are produced:

* the *measured* single-rank throughput of this reproduction's trainer on the
  local CPU (the ``benchmark`` timing), projected onto every Table 1 platform
  through the flop-rate model, and
* the model calibrated on the paper's published HSW rate, which reproduces
  the published Table 2 rows directly.

The assertions check the shape: platform ordering matches the paper and
2-socket throughput is 1.6-2x the 1-socket rate.
"""

import numpy as np

from repro.distributed import PAPER_TABLE2, DistributedTrainer, SingleNodeModel
from repro.ppl.nn import InferenceNetwork

from benchmarks.conftest import BENCH_CONFIG, print_table


def _one_training_iteration(trainer):
    trainer.train(1)


def test_table2_single_node_throughput(benchmark, tau_dataset):
    network = InferenceNetwork(config=BENCH_CONFIG, observe_key="detector")
    trainer = DistributedTrainer(
        network,
        tau_dataset,
        num_ranks=1,
        local_minibatch_size=16,
        learning_rate=1e-3,
        validation_fraction=0.0,
    )
    benchmark.pedantic(_one_training_iteration, args=(trainer,), iterations=1, rounds=5, warmup_rounds=1)
    measured_traces_per_s = trainer.report.mean_throughput

    measured_model = SingleNodeModel(reference_platform="HSW", measured_traces_per_s=measured_traces_per_s)
    paper_model = SingleNodeModel(reference_platform="HSW")  # calibrated on the published HSW rate

    rows = []
    for code in ("IVB", "HSW", "BDW", "SKL", "CSL"):
        ours = measured_model.table2()[code]
        published = paper_model.table2()[code]
        rows.append(
            [
                code,
                f"{ours['1socket_traces_per_s']:.1f}",
                f"{ours['2socket_traces_per_s']:.1f}",
                f"{published['1socket_traces_per_s']:.1f}",
                f"{published['2socket_traces_per_s']:.1f}",
                f"{PAPER_TABLE2[code]['1socket']:.1f}",
                f"{PAPER_TABLE2[code]['2socket']:.1f}",
                f"{published['1socket_gflops']:.0f} ({published['percent_peak']:.0f}%)",
            ]
        )
    print_table(
        "Table 2: single-node training throughput (traces/s) and flop rate",
        [
            "Platform",
            "ours 1-socket",
            "ours 2-socket",
            "model 1-socket",
            "model 2-socket",
            "paper 1-socket",
            "paper 2-socket",
            "Gflop/s (% peak)",
        ],
        rows,
    )

    # Shape: ordering across platforms matches the paper for both calibrations.
    codes = ["IVB", "HSW", "BDW", "SKL", "CSL"]
    paper_order = np.argsort([PAPER_TABLE2[c]["1socket"] for c in codes])
    ours_order = np.argsort([measured_model.throughput(c, 1) for c in codes])
    model_order = np.argsort([paper_model.throughput(c, 1) for c in codes])
    assert list(model_order) == list(paper_order)
    assert list(ours_order) == list(paper_order)
    # 2-socket scaling between 1.6x and 2x, as in Table 2.
    for code in codes:
        ratio = measured_model.throughput(code, 2) / measured_model.throughput(code, 1)
        assert 1.5 < ratio <= 2.0
    assert measured_traces_per_s > 0
