"""Figure 8: posterior comparison — RMH (MCMC reference) vs IC (amortized) vs truth.

The paper's headline science result: for a held-out tau observation, the
posterior over latent variables of physics interest (tau momentum px/py/pz,
decay channel, final-state-particle energies, missing transverse energy)
obtained with the trained IC network closely matches the RMH reference
posterior, and both concentrate around the ground-truth values.

This bench reproduces the comparison end to end on the mini-Sherpa pipeline:
an RMH chain conditioned on the test observation, the session-trained IC
engine running amortized importance sampling on the same observation, and a
prior baseline for contrast.  Assertions target the shape of the figure:
both posteriors move from the prior towards the truth for the momentum
components, the two posteriors agree with each other within their spread, and
the decay-channel posterior puts more mass on the true channel than the prior
does.
"""

import numpy as np

from repro.common.rng import RandomState
from repro.distributions import Uniform
from repro.ppl.inference import RandomWalkMetropolis
from repro.simulators import TauDecayConfig, branching_ratios

from benchmarks.conftest import print_table

RMH_BURN_IN = 1500
RMH_SAMPLES = 4000
IC_SAMPLES = 300


def _posterior_summary(posterior, name):
    latent = posterior.extract(name)
    return latent.mean, latent.stddev


def test_fig8_posterior_comparison(benchmark, tau_model, tau_observation, trained_ic_engine):
    ground_truth, observation = tau_observation
    conditioned = {"detector": observation}

    sampler = RandomWalkMetropolis(tau_model, conditioned, kernel="random_walk", step_scale=0.25, burn_in=RMH_BURN_IN)
    rmh_posterior = sampler.run(RMH_SAMPLES, rng=RandomState(21))

    ic_posterior = benchmark.pedantic(
        trained_ic_engine.posterior,
        args=(tau_model, conditioned),
        kwargs={"num_traces": IC_SAMPLES, "rng": RandomState(22)},
        iterations=1,
        rounds=1,
    )

    config = TauDecayConfig()
    prior_means = {
        "px": 0.5 * sum(config.px_range),
        "py": 0.5 * sum(config.py_range),
        "pz": 0.5 * sum(config.pz_range),
    }
    rows = []
    results = {}
    for name in ("px", "py", "pz"):
        rmh_mean, rmh_std = _posterior_summary(rmh_posterior, name)
        ic_mean, ic_std = _posterior_summary(ic_posterior, name)
        truth = ground_truth[name]
        rows.append(
            [
                name,
                f"{truth:.2f}",
                f"{prior_means[name]:.2f}",
                f"{rmh_mean:.2f} +/- {rmh_std:.2f}",
                f"{ic_mean:.2f} +/- {ic_std:.2f}",
            ]
        )
        results[name] = (truth, prior_means[name], rmh_mean, rmh_std, ic_mean, ic_std)

    # Decay channel: posterior probability of the true channel under each engine.
    true_channel = int(ground_truth["channel"])
    prior_channel_prob = float(branching_ratios()[true_channel])
    rmh_channel_probs = rmh_posterior.extract("channel").categorical_probabilities()
    ic_channel_probs = ic_posterior.extract("channel").categorical_probabilities()
    rows.append(
        [
            "channel (P of true)",
            f"{true_channel}",
            f"{prior_channel_prob:.2f}",
            f"{rmh_channel_probs.get(true_channel, 0.0):.2f}",
            f"{ic_channel_probs.get(true_channel, 0.0):.2f}",
        ]
    )
    # Derived FSP energies and MET from the trace results (map over executions).
    for key in ("fsp_energy_1", "fsp_energy_2", "met"):
        rmh_vals = rmh_posterior.map_values(lambda t: t.result[key])
        ic_vals = ic_posterior.map_values(lambda t: t.result[key])
        rows.append(
            [
                key,
                f"{ground_truth[key]:.2f}",
                "-",
                f"{rmh_vals.mean:.2f} +/- {rmh_vals.stddev:.2f}",
                f"{ic_vals.mean:.2f} +/- {ic_vals.stddev:.2f}",
            ]
        )
    print_table(
        "Figure 8: posterior for the test tau observation (RMH vs IC vs truth)",
        ["latent", "truth", "prior mean", "RMH posterior", "IC posterior"],
        rows,
    )
    print(
        f"RMH acceptance rate {sampler.acceptance_rate:.2f}, "
        f"IC ESS {ic_posterior.effective_sample_size():.1f} / {IC_SAMPLES}"
    )

    # --- shape assertions -------------------------------------------------------
    for name in ("px", "py"):
        truth, prior_mean, rmh_mean, rmh_std, ic_mean, ic_std = results[name]
        prior_std = (config.px_range[1] - config.px_range[0]) / np.sqrt(12.0)
        # Both posteriors move from the prior mean towards the truth...
        assert abs(rmh_mean - truth) < abs(prior_mean - truth) + 0.3
        # ...and are tighter than the prior.
        assert rmh_std < prior_std
        # RMH and IC agree within their combined spread (the Figure 8 overlap).
        assert abs(rmh_mean - ic_mean) < 3.0 * (rmh_std + ic_std) + 0.5
    # pz is weakly constrained by a transverse calorimeter image; require that
    # both engines at least stay inside the prior support.
    _, _, rmh_pz, _, ic_pz, _ = results["pz"]
    assert config.pz_range[0] <= rmh_pz <= config.pz_range[1]
    assert config.pz_range[0] <= ic_pz <= config.pz_range[1]
    # Channel identification: with the reproduction's noisier, lower-resolution
    # detector the channel can remain partially ambiguous between hadronic
    # topologies, so require that the RMH reference keeps the true channel among
    # its two most probable channels and does not suppress it below half its
    # prior probability (the paper's full-size detector resolves it fully).
    top_two = sorted(rmh_channel_probs, key=rmh_channel_probs.get, reverse=True)[:2]
    assert true_channel in top_two
    assert rmh_channel_probs.get(true_channel, 0.0) >= 0.5 * prior_channel_prob
    assert sum(ic_channel_probs.values()) > 0.99
