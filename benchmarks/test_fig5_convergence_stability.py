"""Figure 5: mean and standard deviation of the loss over five runs (128k minibatch).

The paper demonstrates stable convergence of the Adam-LARC + order-2
polynomial-decay configuration at the 128k global minibatch size by repeating
the run five times with different seeds and plotting mean +/- std of the loss.
This bench repeats that protocol at reproduction scale: five seeds, the same
optimizer configuration, a scaled-down global minibatch, and asserts that the
mean loss decreases while the run-to-run spread stays bounded.
"""

import numpy as np

from repro.common.rng import RandomState
from repro.distributed import DistributedTrainer
from repro.ppl.nn import InferenceNetwork

from benchmarks.conftest import BENCH_CONFIG, print_series

NUM_SEEDS = 5
ITERATIONS = 12


def _one_run(seed, dataset):
    network = InferenceNetwork(config=BENCH_CONFIG, observe_key="detector", rng=RandomState(seed))
    trainer = DistributedTrainer(
        network,
        dataset,
        num_ranks=2,
        local_minibatch_size=8,
        optimizer="adam",
        larc=True,
        lr_schedule="poly2",
        total_iterations_hint=ITERATIONS,
        learning_rate=3e-3,
        end_learning_rate=1e-4,
        validation_fraction=0.0,
        seed=seed,
    )
    return trainer.train(ITERATIONS).train_losses


def test_fig5_convergence_stability(benchmark, tau_dataset):
    runs = [
        _one_run(seed, tau_dataset) for seed in range(NUM_SEEDS - 1)
    ]
    runs.append(benchmark.pedantic(_one_run, args=(NUM_SEEDS - 1, tau_dataset), iterations=1, rounds=1))
    losses = np.asarray(runs)  # (seeds, iterations)
    mean = losses.mean(axis=0)
    std = losses.std(axis=0)
    print_series(
        f"Figure 5: mean +/- std loss over {NUM_SEEDS} Adam-LARC runs",
        "iteration",
        list(range(1, ITERATIONS + 1)),
        {"mean_loss": mean.tolist(), "std_loss": std.tolist()},
    )
    # Convergence: the mean of the last quarter of iterations is below the first.
    assert mean[-3:].mean() < mean[:3].mean()
    # Stability: run-to-run spread stays bounded relative to the loss scale,
    # and no run diverges (all losses finite).
    assert np.all(np.isfinite(losses))
    assert std[-1] < 0.5 * abs(mean[0] - mean[-1]) + 1.0
