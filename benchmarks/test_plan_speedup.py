"""Benchmark: compiled execution plans vs the dynamic lockstep path.

The plan cache's claim (ROADMAP: compiled execution plans + buffer reuse):
once a trace type is hot, serving its cohorts from a compiled
:class:`repro.ppl.inference.plans.EnginePlan` — fixed address schedule,
precompiled prior geometry, pre-gathered address-embedding rows, one batched
previous-sample encode, ``build_into`` distribution construction into leased
scratch — removes the per-round bookkeeping the dynamic session re-derives
every cohort, without changing a single sampled bit.

The workload is the hot-trace-type serving shape the cache is built for: one
fixed-control-flow model with ``NUM_STEPS`` latent draws, every request
asking for one full ``B = MAX_BATCH = 32`` cohort of the same trace type,
seeds distinct so every request is genuine inference.  Required:

* every served posterior is **bit-identical** between ``use_plans=True`` and
  ``use_plans=False`` (same values, same log-weights — the plan equivalence
  gate, not a tolerance);
* the planned service records plan-cache hits on every post-warm-up request
  (the workload really ran on the fast path); and
* planned throughput beats dynamic by ``PLAN_SPEEDUP_MIN`` (default 1.5x;
  dedicated hardware measures ~2.5x, CI overrides down for shared-runner
  wall-clock noise).
"""

import os
import time

import numpy as np

from repro.common.rng import RandomState
from repro.distributions import Normal, Uniform
from repro.ppl import FunctionModel, observe, sample
from repro.ppl.inference.inference_compilation import InferenceCompilation
from repro.ppl.nn.embeddings import ObservationEmbeddingFC
from repro.serving import PosteriorService

from benchmarks.conftest import print_table

NUM_STEPS = 8
MAX_BATCH = 32
NUM_REQUESTS = 12
WARMUP_REQUESTS = 2
ROUNDS = 3
MIN_SPEEDUP = float(os.environ.get("PLAN_SPEEDUP_MIN", "1.5"))

OBSERVATION = {"obs": np.array([0.3, 0.15, -0.3, 1.0])}


def hot_program():
    """Fixed control flow: one trace type, NUM_STEPS static-prior draws."""
    total = 0.0
    for i in range(NUM_STEPS):
        total += sample(Uniform(-1.0, 1.0), name=f"x{i}", address=f"addr_{i}")
    observe(Normal(np.array([total, total * 0.5, -total, 1.0]), 0.4), name="obs")
    return total


def _trained_engine(model):
    engine = InferenceCompilation(
        observation_embedding=ObservationEmbeddingFC(input_dim=4, embedding_dim=16),
        observe_key="obs",
        rng=RandomState(0),
    )
    engine.train(model, num_traces=200, minibatch_size=20, learning_rate=3e-3)
    return engine


def _run_service(model, network, use_plans):
    """Serve NUM_REQUESTS hot-type cohorts; return (elapsed, posteriors, stats)."""
    service = PosteriorService(
        model, network, observe_key="obs", backend="thread",
        num_workers=1, max_batch=MAX_BATCH, shard_min=MAX_BATCH,
        use_plans=use_plans,
    )
    with service:
        for warmup in range(WARMUP_REQUESTS):  # compiles the plan on the planned side
            service.posterior(OBSERVATION, MAX_BATCH, seed=10 + warmup,
                              use_cache=False, timeout=300)
        start = time.perf_counter()
        posteriors = [
            service.posterior(OBSERVATION, MAX_BATCH, seed=100 + request,
                              use_cache=False, timeout=300).posterior
            for request in range(NUM_REQUESTS)
        ]
        elapsed = time.perf_counter() - start
        stats = service.stats()
    return elapsed, posteriors, stats


def test_planned_serving_beats_dynamic_with_bit_identical_posteriors():
    model = FunctionModel(hot_program, name="hot-trace-type")
    engine = _trained_engine(model)

    planned_time = dynamic_time = float("inf")
    planned_stats = None
    for _ in range(ROUNDS):
        elapsed, planned_posteriors, stats = _run_service(model, engine.network, True)
        if elapsed < planned_time:
            planned_time, planned_stats = elapsed, stats
        elapsed, dynamic_posteriors, _ = _run_service(model, engine.network, False)
        dynamic_time = min(dynamic_time, elapsed)
        # The equivalence gate: bit-identical, not approximately equal.
        for planned, dynamic in zip(planned_posteriors, dynamic_posteriors):
            for planned_trace, dynamic_trace in zip(planned.values, dynamic.values):
                assert [s.value for s in planned_trace.samples if s.controlled] == [
                    s.value for s in dynamic_trace.samples if s.controlled
                ]
            assert np.array_equal(
                np.asarray(planned.log_weights), np.asarray(dynamic.log_weights)
            )

    hits = planned_stats["plans"]["hits"]
    hit_rate = hits / max(1, hits + planned_stats["plans"]["misses"])
    speedup = dynamic_time / planned_time
    traces = NUM_REQUESTS * MAX_BATCH
    print_table(
        f"Compiled-plan serving speedup (B={MAX_BATCH}, {NUM_STEPS}-step hot trace type)",
        ["path", "time (s)", "traces/s", "plan hit rate"],
        [
            ["dynamic", f"{dynamic_time:.3f}", f"{traces / dynamic_time:.0f}", "-"],
            ["planned", f"{planned_time:.3f}", f"{traces / planned_time:.0f}",
             f"{hit_rate:.2f}"],
            ["speedup", f"{speedup:.2f}x", "", f"(require >= {MIN_SPEEDUP}x)"],
        ],
    )
    assert hits >= NUM_REQUESTS, "hot workload must be served from the plan cache"
    assert planned_stats["engine"]["num_plan_divergences"] == 0
    assert speedup >= MIN_SPEEDUP, (
        f"planned serving speedup {speedup:.2f}x below the {MIN_SPEEDUP}x floor"
    )
