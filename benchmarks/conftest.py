"""Shared fixtures for the benchmark harness.

Each benchmark module regenerates one table or figure of the paper (see
DESIGN.md's experiment index).  Expensive artefacts — the tau-decay dataset,
a trained IC engine, the ground-truth test observation — are built once per
session here and reused across benches.  Every bench prints the rows/series it
regenerates so that ``pytest benchmarks/ --benchmark-only -s`` produces a
textual version of the paper's tables and figures, and asserts the *shape*
(ordering, rough factors, crossovers) rather than absolute numbers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.config import Config
from repro.common.rng import RandomState, seed_all
from repro.data import generate_dataset
from repro.ppl.inference.inference_compilation import InferenceCompilation
from repro.simulators import TauDecayModel, ground_truth_event


BENCH_CONFIG = Config(
    observation_shape=(8, 11, 11),
    lstm_hidden=32,
    lstm_stacks=1,
    observation_embedding_dim=16,
    address_embedding_dim=8,
    sample_embedding_dim=4,
    proposal_mixture_components=3,
)


@pytest.fixture(autouse=True)
def _seed():
    seed_all(2026)
    yield


@pytest.fixture(scope="session")
def tau_model():
    return TauDecayModel()


@pytest.fixture(scope="session")
def tau_dataset(tau_model):
    """400 prior traces of the mini-Sherpa pipeline (the offline dataset)."""
    return generate_dataset(tau_model, 400, rng=RandomState(11))


@pytest.fixture(scope="session")
def tau_observation(tau_model):
    """A held-out test observation with known ground truth (Section 6.4)."""
    ground_truth, observation = ground_truth_event(
        overrides={"px": 1.2, "py": -0.8, "pz": 45.5, "channel": 1}, rng=RandomState(99)
    )
    return ground_truth, observation


@pytest.fixture(scope="session")
def trained_ic_engine(tau_model, tau_dataset):
    """An IC engine trained on the offline tau dataset (shared by several benches)."""
    engine = InferenceCompilation(config=BENCH_CONFIG, observe_key="detector", rng=RandomState(5))
    engine.train(
        dataset=list(tau_dataset),
        num_traces=2400,
        minibatch_size=16,
        learning_rate=3e-3,
        lr_schedule="poly2",
        end_learning_rate=1e-4,
    )
    return engine


def print_table(title: str, headers, rows) -> None:
    """Render a small fixed-width table to stdout (the bench 'figure')."""
    print(f"\n=== {title} ===")
    widths = [max(len(str(h)), max((len(str(r[i])) for r in rows), default=0)) for i, h in enumerate(headers)]
    print("  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers)))
    for row in rows:
        print("  ".join(str(cell).ljust(widths[i]) for i, cell in enumerate(row)))


def print_series(title: str, x_label: str, xs, series: dict) -> None:
    """Render one or more named series against a common x axis."""
    headers = [x_label] + list(series.keys())
    rows = []
    for i, x in enumerate(xs):
        rows.append([x] + [f"{series[name][i]:.4g}" for name in series])
    print_table(title, headers, rows)
