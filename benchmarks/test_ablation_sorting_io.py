"""Ablation (Section 4.4.3): trace sorting, file grouping and pruning.

The paper's I/O work has three measurable effects that this bench reproduces
on the mini-Sherpa dataset:

* pre-sorting traces by trace type makes minibatch-sized chunks predominantly
  single-type, which raises the effective minibatch size (training-speed gains
  of up to 50x at scale) — measured here as the effective minibatch size and
  the number of sub-minibatches per minibatch, sorted vs unsorted;
* grouping small shard files into larger ones turns random reads into
  sequential reads of contiguous file regions — measured as shard-cache hit
  rates for sequential-after-sorting vs random access;
* pruning + the address dictionary shrink the serialised traces (reported 40%
  memory reduction) — measured as on-disk bytes per trace.
"""

import os

import numpy as np

from repro.common.rng import RandomState
from repro.data import (
    ShardStore,
    effective_minibatch_size,
    regroup_dataset,
    sorted_indices_by_trace_type,
    sub_minibatch_count,
)
from repro.trace import AddressDictionary, prune_trace, pruned_size_bytes

from benchmarks.conftest import print_table

CHUNK = 16


def _chunk_stats(dataset, order):
    types = [dataset.trace_type_of(i) for i in order]
    effective = []
    sub_counts = []
    for start in range(0, len(types) - CHUNK + 1, CHUNK):
        chunk = types[start : start + CHUNK]
        effective.append(effective_minibatch_size(chunk))
        sub_counts.append(sub_minibatch_count(chunk))
    return float(np.mean(effective)), float(np.mean(sub_counts))


def test_ablation_sorting_grouping_pruning(benchmark, tau_dataset, tmp_path):
    # --- sorting: effective minibatch size -----------------------------------
    unsorted_order = list(range(len(tau_dataset)))
    sorted_order = benchmark(lambda: sorted_indices_by_trace_type(tau_dataset))
    unsorted_eff, unsorted_subs = _chunk_stats(tau_dataset, unsorted_order)
    sorted_eff, sorted_subs = _chunk_stats(tau_dataset, sorted_order)

    # --- grouping: shard-cache behaviour under sequential vs random access ----
    directory = os.path.join(tmp_path, "regrouped")
    regrouped = regroup_dataset(tau_dataset, directory, records_per_shard=50, order=sorted_order)
    store: ShardStore = regrouped.store
    store.clear_cache()
    for i in range(len(regrouped)):
        _ = store[i]
    sequential_miss_rate = store.cache_misses / (store.cache_hits + store.cache_misses)
    store.clear_cache()
    random_order = RandomState(3).permutation(len(regrouped))
    small_cache = ShardStore(directory, cache_size=1)
    for i in random_order:
        _ = small_cache[int(i)]
    random_miss_rate = small_cache.cache_misses / (small_cache.cache_hits + small_cache.cache_misses)

    # --- pruning + address dictionary: bytes per trace -------------------------
    traces = tau_dataset.get_batch(range(60))
    dictionary = AddressDictionary()
    full_bytes = np.mean([pruned_size_bytes(t.to_dict()) for t in traces])
    pruned_bytes = np.mean(
        [pruned_size_bytes(prune_trace(t, address_dictionary=dictionary)) for t in traces]
    )

    print_table(
        "Ablation: I/O pipeline (sorting, grouping, pruning)",
        ["quantity", "unsorted / naive", "sorted / optimised", "improvement"],
        [
            [
                "effective minibatch size",
                f"{unsorted_eff:.1f}",
                f"{sorted_eff:.1f}",
                f"{sorted_eff / unsorted_eff:.1f}x",
            ],
            [
                "sub-minibatches per minibatch",
                f"{unsorted_subs:.1f}",
                f"{sorted_subs:.1f}",
                f"{unsorted_subs / sorted_subs:.1f}x fewer",
            ],
            [
                "shard read miss rate",
                f"{random_miss_rate:.2f}",
                f"{sequential_miss_rate:.2f}",
                f"{random_miss_rate / max(sequential_miss_rate, 1e-9):.1f}x fewer misses",
            ],
            [
                "bytes per stored trace",
                f"{full_bytes:.0f}",
                f"{pruned_bytes:.0f}",
                f"{100 * (1 - pruned_bytes / full_bytes):.0f}% smaller",
            ],
        ],
    )

    # Shape assertions.
    assert sorted_eff > unsorted_eff                      # sorting raises effective minibatch size
    assert sorted_subs < unsorted_subs                    # and cuts sub-minibatch count
    assert sequential_miss_rate <= random_miss_rate       # grouping+sequential access is cache friendly
    assert pruned_bytes < 0.8 * full_bytes                # pruning + dictionary: substantial shrink
