"""Table 1: Intel Xeon CPU models and codes.

Regenerates the platform registry (model string, code, cores/socket, peak
single-precision flop rate) that the single-node and cluster performance
models are built on.
"""

from repro.distributed import PLATFORMS, SingleNodeModel

from benchmarks.conftest import print_table


def test_table1_platform_registry(benchmark):
    model = benchmark(SingleNodeModel)  # trivial construction; the table itself is static
    rows = []
    for code in ("IVB", "HSW", "BDW", "SKL", "CSL"):
        platform = PLATFORMS[code]
        rows.append(
            [
                platform.model,
                code,
                platform.cores_per_socket,
                f"{platform.clock_ghz:.2f} GHz",
                f"{platform.peak_sp_gflops_per_socket:.0f}",
                f"{100 * platform.observed_efficiency:.0f}%",
            ]
        )
    print_table(
        "Table 1: Intel Xeon CPU models and codes",
        ["Model", "Code", "Cores/socket", "Clock", "Peak SP Gflop/s", "Observed % peak"],
        rows,
    )
    # Shape assertions: the five paper platforms, with IVB the slowest and the
    # newer SKL/CSL parts having the highest peak rates.
    assert set(PLATFORMS) == {"IVB", "HSW", "BDW", "SKL", "CSL"}
    assert PLATFORMS["IVB"].peak_sp_gflops_per_socket < PLATFORMS["HSW"].peak_sp_gflops_per_socket
    assert PLATFORMS["SKL"].peak_sp_gflops_per_socket > PLATFORMS["BDW"].peak_sp_gflops_per_socket
    assert model.throughput("HSW", 1) > 0
