"""Figure 2: hyperparameter search — loss curves for different NN architectures.

The paper sweeps LSTM hidden units {128, 256, 512}, LSTM stacks {1..4} and
proposal mixture components {5, 10, 25, 50} and picks 512 units / 1 stack / 10
components.  This bench runs a scaled-down version of the same grid on the
mini-Sherpa model and prints the loss after a fixed trace budget for every
configuration, asserting that (a) every configuration's loss improves and
(b) larger LSTMs do at least as well as smaller ones at equal budget.
"""

import numpy as np
import pytest

from repro.common.config import Config
from repro.common.rng import RandomState
from repro.ppl.inference.inference_compilation import InferenceCompilation

from benchmarks.conftest import print_series

GRID = [
    {"lstm_hidden": 16, "lstm_stacks": 1, "proposal_mixture_components": 2},
    {"lstm_hidden": 32, "lstm_stacks": 1, "proposal_mixture_components": 2},
    {"lstm_hidden": 32, "lstm_stacks": 2, "proposal_mixture_components": 2},
    {"lstm_hidden": 32, "lstm_stacks": 1, "proposal_mixture_components": 5},
]

NUM_TRACES = 960
MINIBATCH = 16


def _train_one(config_overrides, dataset):
    config = Config(
        observation_shape=(8, 11, 11),
        observation_embedding_dim=16,
        address_embedding_dim=8,
        sample_embedding_dim=4,
        **config_overrides,
    )
    engine = InferenceCompilation(config=config, observe_key="detector", rng=RandomState(3))
    history = engine.train(
        dataset=dataset, num_traces=NUM_TRACES, minibatch_size=MINIBATCH, learning_rate=3e-3
    )
    return history


def test_fig2_hyperparameter_search(benchmark, tau_dataset):
    dataset = list(tau_dataset)[:256]
    histories = {}
    for overrides in GRID[:-1]:
        label = f"units={overrides['lstm_hidden']} stacks={overrides['lstm_stacks']} mix={overrides['proposal_mixture_components']}"
        histories[label] = _train_one(overrides, dataset)
    # The last configuration goes through the benchmark fixture so the harness
    # reports a representative wall-clock cost per configuration.
    last = GRID[-1]
    label = f"units={last['lstm_hidden']} stacks={last['lstm_stacks']} mix={last['proposal_mixture_components']}"
    histories[label] = benchmark.pedantic(_train_one, args=(last, dataset), iterations=1, rounds=1)

    iterations = list(range(1, NUM_TRACES // MINIBATCH + 1))
    smoothed = {
        label: np.convolve(history.losses, np.ones(5) / 5, mode="same")
        for label, history in histories.items()
    }
    print_series(
        "Figure 2: loss vs traces seen for NN architectures (scaled-down grid)",
        "iteration",
        iterations,
        {label: list(curve) for label, curve in smoothed.items()},
    )

    for label, history in histories.items():
        early = np.mean(history.losses[:5])
        late = np.mean(history.losses[-5:])
        assert late < early, f"{label} did not improve"
    # Larger LSTM should end at a loss no worse than the smallest one (allowing noise).
    small = np.mean(histories[f"units=16 stacks=1 mix=2"].losses[-5:])
    large = np.mean(histories[f"units=32 stacks=1 mix=2"].losses[-5:])
    assert large <= small * 1.15
