"""Figure 4: actual vs best time per trace broken down by phase, 1/2/64 sockets.

Two components are combined, exactly as in the paper's methodology:

* *measured* per-phase times from the instrumented trainer running 2 simulated
  ranks on the real network/dataset (batch_read, forward+backward, optimizer,
  sync), post-processed into "actual" (slowest rank) and "best" (mean rank)
  times, and
* the calibrated cluster model extrapolating the same breakdown to 64 sockets,
  where load imbalance dominates (the paper reports 5% at 2 sockets growing to
  19% at 64 sockets).
"""

import numpy as np

from repro.common.rng import RandomState
from repro.distributed import CORI, ClusterPerformanceModel, DistributedTrainer
from repro.ppl.nn import InferenceNetwork

from benchmarks.conftest import BENCH_CONFIG, print_table


def test_fig4_phase_breakdown(benchmark, tau_dataset):
    network = InferenceNetwork(config=BENCH_CONFIG, observe_key="detector")
    trainer = DistributedTrainer(
        network,
        tau_dataset,
        num_ranks=2,
        local_minibatch_size=8,
        learning_rate=1e-3,
        validation_fraction=0.0,
    )
    benchmark.pedantic(lambda: trainer.train(3), iterations=1, rounds=1)
    report = trainer.report

    # Measured 2-rank breakdown (milliseconds per trace).
    per_trace = 1000.0 / (report.traces_per_iteration)
    measured_rows = [
        ["measured 2-rank (actual)", *(f"{report.phase_means.get(p, 0.0) * per_trace:.2f}" for p in ("batch_read", "forward_backward", "optimizer", "sync"))],
    ]

    # Modelled breakdown for 1 / 2 / 64 sockets.
    lengths = [tau_dataset.trace_length_of(i) for i in range(len(tau_dataset))]
    model = ClusterPerformanceModel(
        CORI, trace_length_distribution=lengths, local_minibatch_size=8, rng=RandomState(2)
    )
    breakdown = model.phase_breakdown([1, 2, 64], iterations=40)
    rows = list(measured_rows)
    for entry in breakdown:
        actual_total = sum(entry.actual.values())
        best_total = sum(entry.best.values())
        rows.append(
            [
                f"model {entry.sockets}-socket actual",
                *(f"{entry.actual.get(p, 0.0):.2f}" for p in ("batch_read", "forward", "optimizer", "sync")),
            ]
        )
        rows.append(
            [
                f"model {entry.sockets}-socket best",
                *(f"{entry.best.get(p, 0.0):.2f}" for p in ("batch_read", "forward", "optimizer", "sync")),
            ]
        )
        rows.append([f"model {entry.sockets}-socket imbalance", f"{entry.imbalance_percent:.1f}%", "", "", ""])
    print_table(
        "Figure 4: normalised time per trace by phase (ms), actual vs best",
        ["configuration", "batch_read", "forward(+backward)", "optimizer", "sync"],
        rows,
    )

    # Shape assertions: imbalance grows from 1 -> 2 -> 64 sockets, and the
    # measured actual iteration time is never below the perfectly balanced one.
    imbalances = [entry.imbalance_percent for entry in breakdown]
    assert imbalances[0] <= 1e-6
    assert imbalances[1] < imbalances[2]
    assert imbalances[2] > 5.0          # at 64 sockets the imbalance is substantial
    assert report.load_imbalance_percent >= 0.0
    assert report.best_throughput >= report.mean_throughput
