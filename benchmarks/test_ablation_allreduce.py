"""Ablation (Section 4.4.4): sparse (non-null-only) allreduce and tensor fusion.

The paper reports a 4x improvement in allreduce time from reducing only the
union of non-null gradient tensors, plus a further gain from concatenating
small tensors into buffers so that one MPI call is issued per buffer instead
of one per tensor.  This bench builds the *real* gradient structure of the IC
network trained on the tau dataset (each simulated rank computes gradients
from its own minibatch, so only a subset of the address-specific layers is
non-null per rank), runs all three strategies, and compares the modelled
communication cost under the Aries latency/bandwidth model.
"""

import numpy as np

from repro.common.rng import RandomState
from repro.data import DistributedTraceSampler, sorted_indices_by_trace_type
from repro.distributed import (
    CommunicationStats,
    dense_allreduce,
    fused_sparse_allreduce,
    sparse_allreduce,
)
from repro.ppl.nn import InferenceNetwork, pregenerate_layers

from benchmarks.conftest import BENCH_CONFIG, print_table

NUM_RANKS = 2
MINIBATCH = 8


def _per_rank_gradients(network, dataset):
    order = sorted_indices_by_trace_type(dataset)
    lengths = [dataset.trace_length_of(i) for i in range(len(dataset))]
    gradients = []
    for rank in range(NUM_RANKS):
        sampler = DistributedTraceSampler(
            order, minibatch_size=MINIBATCH, num_ranks=NUM_RANKS, rank=rank, lengths=lengths, seed=3
        )
        indices = next(iter(sampler))
        traces = dataset.get_batch(indices)
        network.zero_grad()
        network.loss(traces).backward()
        gradients.append(
            {name: param.grad.copy() for name, param in network.named_parameters() if param.grad is not None}
        )
    return gradients


def test_ablation_sparse_and_fused_allreduce(benchmark, tau_dataset):
    network = InferenceNetwork(config=BENCH_CONFIG, observe_key="detector", rng=RandomState(1))
    pregenerate_layers(network, list(tau_dataset), freeze=True)
    named = dict(network.named_parameters())
    names = list(named)
    shapes = {name: param.data.shape for name, param in named.items()}

    per_rank = _per_rank_gradients(network, tau_dataset)
    non_null_fraction = np.mean([len(g) / len(names) for g in per_rank])

    aries = dict(latency_s=1.3e-6, bandwidth_bytes_per_s=10e9)
    stats = {}
    results = {}
    for strategy, fn in (
        ("dense", dense_allreduce),
        ("sparse", sparse_allreduce),
        ("fused_sparse", lambda *a, **k: fused_sparse_allreduce(*a, bucket_elements=200_000, **k)),
    ):
        stat = CommunicationStats(**aries)
        if strategy == "fused_sparse":
            # rounds=1 so the CommunicationStats accounting covers exactly one step
            results[strategy] = benchmark.pedantic(
                fn, args=(per_rank, names, shapes), kwargs={"stats": stat}, iterations=1, rounds=1
            )
        else:
            results[strategy] = fn(per_rank, names, shapes, stat)
        stats[strategy] = stat

    rows = []
    for strategy, stat in stats.items():
        rows.append(
            [
                strategy,
                stat.num_calls,
                f"{stat.bytes / 1e6:.2f} MB",
                f"{stat.modeled_time * 1e3:.3f} ms",
                f"{stats['dense'].modeled_time / stat.modeled_time:.1f}x",
            ]
        )
    print_table(
        "Ablation: gradient allreduce strategies (modelled on Cray Aries)",
        ["strategy", "collective calls", "bytes", "modelled time", "improvement vs dense"],
        rows,
    )
    print(f"fraction of tensors with non-null gradients per rank: {non_null_fraction:.2f}")

    # Numerically identical averaged gradients across strategies.
    for name in results["sparse"]:
        assert np.allclose(results["dense"][name], results["sparse"][name])
        assert np.allclose(results["dense"][name], results["fused_sparse"][name])
    # The paper's shape: each rank touches only a subset of address-specific
    # layers, sparse reduction never moves more data than dense, and fusion
    # cuts the collective call count, which is what makes the communication
    # bandwidth-bound rather than latency-bound.
    assert non_null_fraction < 1.0
    # The presence map costs one element per parameter tensor; beyond that the
    # sparse reduction never moves more data than the dense one.
    assert stats["sparse"].elements <= stats["dense"].elements + len(names)
    assert stats["fused_sparse"].num_calls < stats["sparse"].num_calls
    assert stats["fused_sparse"].num_calls < stats["dense"].num_calls
    assert stats["fused_sparse"].modeled_time < stats["dense"].modeled_time
