"""Ablation (Section 7.2): load-balancing schemes — bucketing and dynamic batching.

The paper measured a 30-60% throughput increase from multi-bucketing (grouping
chunks by trace length and drawing each global minibatch from one bucket) at
128-256 nodes, but found its interaction with same-type batching hurt
convergence, and that token-based dynamic batching helped the LSTM but not the
3DCNN; the shipped configuration uses sorting + same-type chunking only.

This bench evaluates the four schemes on the mini-Sherpa dataset with the
throughput proxy used by the performance model (effective minibatch size
de-rated by load imbalance) and checks the qualitative ordering the paper
reports: sorting beats no sorting; bucketing further reduces imbalance and
does not reduce the effective minibatch size; dynamic batching balances
per-rank tokens best.
"""

import numpy as np

from repro.distributed import compare_schemes

from benchmarks.conftest import print_table

NUM_RANKS = 4
LOCAL_MINIBATCH = 16


def test_ablation_load_balancing_schemes(benchmark, tau_dataset):
    results = benchmark.pedantic(
        compare_schemes,
        args=(tau_dataset,),
        kwargs={
            "num_ranks": NUM_RANKS,
            "local_minibatch_size": LOCAL_MINIBATCH,
            "num_buckets": 5,
        },
        iterations=1,
        rounds=1,
    )

    rows = []
    for scheme in ("unsorted", "sorted", "bucketing", "dynamic"):
        evaluation = results[scheme]
        rows.append(
            [
                scheme,
                f"{evaluation.mean_effective_minibatch:.1f}",
                f"{evaluation.mean_imbalance_percent:.1f}%",
                f"{evaluation.throughput_proxy:.1f}",
                evaluation.iterations,
            ]
        )
    print_table(
        "Ablation: load-balancing schemes (Section 7.2)",
        ["scheme", "effective minibatch", "token imbalance", "throughput proxy", "iterations"],
        rows,
    )

    unsorted, sorted_, bucketing, dynamic = (
        results["unsorted"],
        results["sorted"],
        results["bucketing"],
        results["dynamic"],
    )
    # Sorting raises the effective minibatch size (the big win kept in the paper).
    assert sorted_.mean_effective_minibatch > unsorted.mean_effective_minibatch
    assert sorted_.throughput_proxy > unsorted.throughput_proxy
    # Bucketing keeps the effective minibatch at least as large and reduces imbalance.
    assert bucketing.mean_effective_minibatch >= sorted_.mean_effective_minibatch * 0.9
    assert bucketing.mean_imbalance_percent <= sorted_.mean_imbalance_percent + 1e-9
    # Dynamic (token) batching gives the most even per-rank token counts.
    assert dynamic.mean_imbalance_percent <= sorted_.mean_imbalance_percent + 1e-9
