"""Machine-readable inference benchmark: one JSON report per run.

``python benchmarks/bench_inference.py [--output BENCH_inference.json]``
runs the hot-trace-type workload of :mod:`benchmarks.test_plan_speedup`
through both the raw engine and the serving layer, with and without the
compiled-plan cache, and writes one flat JSON document::

    {
      "workload": {...},                  # model/batch shape, trace counts
      "engine":  {"dynamic": {...}, "planned": {...}},   # traces/s, emission rate
      "serving": {"dynamic": {...}, "planned": {...}},   # traces/s, p50/p99 latency
      "plan_cache": {...},                # hit rate + raw PlanCache counters
      "speedup": {"engine": ..., "serving": ...}
    }

Numbers in the JSON are measurements, not gates — the pass/fail thresholds
live in the pytest benchmarks (``PLAN_SPEEDUP_MIN`` and friends) so a noisy
runner fails loudly there while this artifact stays comparable across runs.
CI uploads the file from every push, giving a per-commit throughput series
without digging numbers out of job logs.

Emission rate counts proposal distributions handed to workers per second
(``num_proposal_steps``), the paper's per-latent cost unit; traces/s is the
end-to-end unit serving capacity is planned in.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))
sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.common.rng import RandomState
from repro.distributions import Normal, Uniform
from repro.ppl import FunctionModel, observe, sample
from repro.ppl.inference.batched import batched_importance_sampling
from repro.ppl.inference.inference_compilation import InferenceCompilation
from repro.ppl.inference.plans import PlanCache
from repro.ppl.nn.embeddings import ObservationEmbeddingFC
from repro.serving import PosteriorService

NUM_STEPS = 8
MAX_BATCH = 32
ENGINE_TRACES = 256
NUM_REQUESTS = 12
ROUNDS = 3

OBSERVATION = {"obs": np.array([0.3, 0.15, -0.3, 1.0])}


def hot_program():
    total = 0.0
    for i in range(NUM_STEPS):
        total += sample(Uniform(-1.0, 1.0), name=f"x{i}", address=f"addr_{i}")
    observe(Normal(np.array([total, total * 0.5, -total, 1.0]), 0.4), name="obs")
    return total


def bench_engine(model, network, plan_cache):
    """Best-of-ROUNDS raw-engine pass: traces/s and proposal emission rate."""
    best = float("inf")
    stats = None
    for round_index in range(ROUNDS):
        start = time.perf_counter()
        posterior = batched_importance_sampling(
            model, OBSERVATION, num_traces=ENGINE_TRACES, batch_size=MAX_BATCH,
            network=network, rng=RandomState(50 + round_index), plan_cache=plan_cache,
        )
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best, stats = elapsed, posterior.engine_stats
    return {
        "time_s": best,
        "traces_per_s": ENGINE_TRACES / best,
        "emission_rate_per_s": stats["num_proposal_steps"] / best,
        "planned_cohorts": stats.get("num_planned_cohorts", 0),
        "plan_hits": stats.get("plan_hits", 0),
    }


def bench_serving(model, network, use_plans):
    """Best-of-ROUNDS serving pass: traces/s plus p50/p99 request latency."""
    best = None
    for _ in range(ROUNDS):
        service = PosteriorService(
            model, network, observe_key="obs", backend="thread",
            num_workers=1, max_batch=MAX_BATCH, shard_min=MAX_BATCH,
            use_plans=use_plans,
        )
        with service:
            for warmup in range(2):
                service.posterior(OBSERVATION, MAX_BATCH, seed=10 + warmup,
                                  use_cache=False, timeout=300)
            start = time.perf_counter()
            latencies = [
                service.posterior(OBSERVATION, MAX_BATCH, seed=100 + request,
                                  use_cache=False, timeout=300).latency
                for request in range(NUM_REQUESTS)
            ]
            elapsed = time.perf_counter() - start
            stats = service.stats()
        measured = {
            "time_s": elapsed,
            "traces_per_s": NUM_REQUESTS * MAX_BATCH / elapsed,
            "latency_p50_s": float(np.percentile(latencies, 50)),
            "latency_p99_s": float(np.percentile(latencies, 99)),
        }
        if best is None or measured["time_s"] < best[0]["time_s"]:
            best = (measured, stats)
    return best


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default="BENCH_inference.json",
                        help="where to write the JSON report")
    args = parser.parse_args(argv)

    model = FunctionModel(hot_program, name="hot-trace-type")
    engine = InferenceCompilation(
        observation_embedding=ObservationEmbeddingFC(input_dim=4, embedding_dim=16),
        observe_key="obs",
        rng=RandomState(0),
    )
    engine.train(model, num_traces=200, minibatch_size=20, learning_rate=3e-3)
    network = engine.network

    cache = PlanCache()
    # Warm the cache so the planned engine pass measures the hot path, not
    # the one-time compile.
    batched_importance_sampling(
        model, OBSERVATION, num_traces=2 * MAX_BATCH, batch_size=MAX_BATCH,
        network=network, rng=RandomState(7), plan_cache=cache,
    )
    engine_dynamic = bench_engine(model, network, None)
    engine_planned = bench_engine(model, network, cache)

    serving_dynamic, _ = bench_serving(model, network, use_plans=False)
    serving_planned, planned_stats = bench_serving(model, network, use_plans=True)

    plans = planned_stats["plans"]
    lookups = plans["hits"] + plans["misses"]
    report = {
        "workload": {
            "model": "hot-trace-type",
            "num_steps": NUM_STEPS,
            "batch_size": MAX_BATCH,
            "engine_traces": ENGINE_TRACES,
            "serving_requests": NUM_REQUESTS,
            "traces_per_request": MAX_BATCH,
            "rounds": ROUNDS,
        },
        "engine": {"dynamic": engine_dynamic, "planned": engine_planned},
        "serving": {"dynamic": serving_dynamic, "planned": serving_planned},
        "plan_cache": dict(plans, hit_rate=plans["hits"] / lookups if lookups else 0.0),
        "speedup": {
            "engine": engine_dynamic["time_s"] / engine_planned["time_s"],
            "serving": serving_dynamic["time_s"] / serving_planned["time_s"],
        },
    }
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
