"""Benchmark: batched lockstep IC inference vs the sequential engine.

The sequential guided-execution engine pays one observation-embedding
forward, one LSTM step and one proposal forward per trace per address at
batch size 1.  The batched engine amortizes the observation embedding across
the whole cohort and advances all traces through single batched NN steps, so
on the paper's workload shape — a 3D voxel observation feeding a 3DCNN, an
LSTM core, and mixture-of-truncated-normal proposal heads — it must deliver
at least a 3x throughput gain at cohort size 64 while producing the *same*
posterior: per-trace random streams are derived from (master seed, trace
index), so the two engines draw identical latents up to floating-point
batching effects.
"""

import os
import time

import numpy as np

from repro.common.config import Config
from repro.common.rng import RandomState
from repro.ppl import FunctionModel, observe, sample
from repro.ppl.inference.batched import batched_importance_sampling
from repro.ppl.inference.inference_compilation import InferenceCompilation
from repro.distributions import Normal, Uniform

from benchmarks.conftest import print_table

NUM_TRACES = 64
BATCH_SIZE = 64
ROUNDS = 3
# The dedicated-hardware target is 3x; CI smoke runs on shared runners whose
# wall clocks are noisy and overrides this down to "clearly beats sequential".
MIN_SPEEDUP = float(os.environ.get("BATCHED_SPEEDUP_MIN", "3.0"))
# Array-parameterised proposal emission vs the per-object emission it
# replaced: the isolated proposal step must be measurably faster (the whole
# point is eliminating the O(B*K) object churn), and the full engine must be
# no slower within wall-clock noise.
MIN_PROPOSAL_SPEEDUP = float(os.environ.get("BATCHED_PROPOSAL_MIN", "1.3"))
ENGINE_NOISE_MARGIN = float(os.environ.get("BATCHED_ENGINE_MARGIN", "1.10"))

SPEEDUP_CONFIG = Config(
    observation_shape=(12, 17, 17),
    lstm_hidden=128,
    lstm_stacks=1,
    observation_embedding_dim=64,
    address_embedding_dim=32,
    sample_embedding_dim=4,
    proposal_mixture_components=10,
)

_D, _H, _W = SPEEDUP_CONFIG.observation_shape
_ZZ = np.linspace(-1, 1, _D)[:, None, None]
_YY = np.linspace(-1, 1, _H)[None, :, None]
_XX = np.linspace(-1, 1, _W)[None, None, :]


def _deposit(px, py, pz):
    """A cheap deterministic 'calorimeter': a Gaussian blob on the voxel grid."""
    return pz * np.exp(-((_XX - px / 3.0) ** 2 + (_YY - py / 3.0) ** 2 + _ZZ**2))


def lockstep_program():
    px = sample(Uniform(-2.0, 2.0), name="px")
    py = sample(Normal(0.0, 1.0), name="py")
    pz = sample(Uniform(0.5, 2.0), name="pz")
    observe(Normal(_deposit(px, py, pz), 0.5), name="detector")
    return px


def test_batched_engine_speedup_and_equivalence():
    model = FunctionModel(lockstep_program, name="lockstep")
    engine = InferenceCompilation(config=SPEEDUP_CONFIG, observe_key="detector", rng=RandomState(0))
    engine.train(model, num_traces=160, minibatch_size=16, learning_rate=3e-3)
    observation = {"detector": _deposit(0.7, -0.4, 1.2)}

    def run(batch_size, batched_proposals=True):
        start = time.perf_counter()
        posterior = batched_importance_sampling(
            model,
            observation,
            num_traces=NUM_TRACES,
            batch_size=batch_size,
            network=engine.network,
            rng=RandomState(7),
            batched_proposals=batched_proposals,
        )
        return time.perf_counter() - start, posterior

    # Warm all paths once (numpy/scipy dispatch caches), then best-of-N.
    run(BATCH_SIZE)
    run(BATCH_SIZE, batched_proposals=False)
    run(1)
    batched_times, per_object_times, sequential_times = [], [], []
    batched_posterior = per_object_posterior = sequential_posterior = None
    for _ in range(ROUNDS):
        elapsed, batched_posterior = run(BATCH_SIZE)
        batched_times.append(elapsed)
        elapsed, per_object_posterior = run(BATCH_SIZE, batched_proposals=False)
        per_object_times.append(elapsed)
        elapsed, sequential_posterior = run(1)
        sequential_times.append(elapsed)

    sequential_best = min(sequential_times)
    batched_best = min(batched_times)
    per_object_best = min(per_object_times)
    speedup = sequential_best / batched_best
    stats = batched_posterior.engine_stats

    print_table(
        "Batched lockstep engine vs sequential guided execution "
        f"({NUM_TRACES} traces, cohort {BATCH_SIZE})",
        ["engine", "best wall time (s)", "traces/s", "batched NN steps"],
        [
            ["sequential (B=1)", f"{sequential_best:.3f}", f"{NUM_TRACES / sequential_best:.1f}", "-"],
            [
                f"lockstep, per-object proposals (B={BATCH_SIZE})",
                f"{per_object_best:.3f}",
                f"{NUM_TRACES / per_object_best:.1f}",
                per_object_posterior.engine_stats["num_batched_steps"],
            ],
            [
                f"lockstep, batched proposals (B={BATCH_SIZE})",
                f"{batched_best:.3f}",
                f"{NUM_TRACES / batched_best:.1f}",
                stats["num_batched_steps"],
            ],
        ],
    )
    print(f"speedup vs sequential: {speedup:.2f}x (required: >= {MIN_SPEEDUP}x)")
    print(
        f"batched-object vs per-object engine: {per_object_best / batched_best:.2f}x "
        f"(required: no slower within {ENGINE_NOISE_MARGIN:.2f}x noise margin)"
    )

    # The array-parameterised path must never lose to the per-object path it
    # replaced (the isolated proposal-step win is asserted separately below,
    # where wall-clock noise from threading can't wash it out).
    assert batched_best <= per_object_best * ENGINE_NOISE_MARGIN
    # Identical traces: the representation swap must be invisible to results.
    assert np.array_equal(batched_posterior.log_weights, per_object_posterior.log_weights)

    # Identical seeded posterior: same per-trace random streams, so the two
    # engines agree to floating-point batching precision.
    for latent in ("px", "py", "pz"):
        batched_mean = batched_posterior.extract(latent).mean
        sequential_mean = sequential_posterior.extract(latent).mean
        assert abs(batched_mean - sequential_mean) < 1e-6, latent
    assert abs(batched_posterior.log_evidence - sequential_posterior.log_evidence) < 1e-6

    assert stats["num_fallbacks"] == 0
    assert stats["num_divergent_rounds"] == 0
    assert speedup >= MIN_SPEEDUP


def test_batched_proposal_emission_beats_per_object_emission():
    """The churn the batched-distribution subsystem removes, in isolation.

    Per lockstep round and address group, the per-object path materialises B
    ``Mixture`` objects plus B*K truncated-normal components; the batched
    path materialises ONE array-parameterised object (row views are two-field
    structs).  Both paths pay the identical NN forward, and both consume the
    proposals with the identical per-slot ``sample``/``log_prob`` rng calls —
    so emission is exactly where they can differ, and it must be measurably
    faster at B>=16 (the win grows with B: the batched construction cost is
    dominated by a handful of fixed-size array ops).
    """
    from repro.distributions import Uniform
    from repro.ppl.nn.proposals import ProposalNormalMixture
    from repro.tensor.tensor import Tensor

    rounds = 150
    rows = []
    speedups = {}
    for batch in (16, 64):
        layer = ProposalNormalMixture(
            input_dim=SPEEDUP_CONFIG.lstm_hidden,
            num_components=SPEEDUP_CONFIG.proposal_mixture_components,
            rng=RandomState(0),
        )
        hidden = Tensor(RandomState(1).standard_normal((batch, SPEEDUP_CONFIG.lstm_hidden)))
        priors = [Uniform(-2.0, 2.0) for _ in range(batch)]

        def run_per_object():
            start = time.perf_counter()
            for _ in range(rounds):
                group = layer.proposal_distributions(hidden, priors)
                for slot in range(batch):
                    group[slot]
            return time.perf_counter() - start

        def run_batched():
            start = time.perf_counter()
            for _ in range(rounds):
                group = layer.proposal_batch(hidden, priors)
                for slot in range(batch):
                    group.row(slot)
            return time.perf_counter() - start

        run_per_object(), run_batched()  # warm caches
        per_object_best = min(run_per_object() for _ in range(ROUNDS))
        batched_best = min(run_batched() for _ in range(ROUNDS))
        speedups[batch] = per_object_best / batched_best
        rows.append(
            [
                f"B={batch} per-object (B mixtures + B*K components)",
                f"{per_object_best * 1e6 / rounds:.0f}",
                "1.00x",
            ]
        )
        rows.append(
            [
                f"B={batch} batched (1 object + B row views)",
                f"{batched_best * 1e6 / rounds:.0f}",
                f"{speedups[batch]:.2f}x",
            ]
        )

    print_table(
        "Proposal emission per lockstep round "
        f"(K={SPEEDUP_CONFIG.proposal_mixture_components}, best of {ROUNDS})",
        ["path", "us/round", "speedup"],
        rows,
    )
    print(
        f"emission speedups: B=16 {speedups[16]:.2f}x, B=64 {speedups[64]:.2f}x "
        f"(required: >= {MIN_PROPOSAL_SPEEDUP}x at both)"
    )
    assert speedups[16] >= MIN_PROPOSAL_SPEEDUP
    assert speedups[64] >= MIN_PROPOSAL_SPEEDUP
