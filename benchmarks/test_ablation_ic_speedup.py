"""Ablation (Section 6.4): IC inference speed-up over the RMH baseline.

The paper reports that a 2M-trace IC run completed in 30 minutes on 24 nodes
versus 115 hours for the 7.68M-trace RMH result — a 230x speed-up for a
comparable posterior.  Two effects combine to produce it:

1. **statistical efficiency** — every IC trace is an independent draw from the
   proposal, whereas RMH samples are strongly autocorrelated (the paper
   measures ~1e5 iterations per effectively independent trace), so RMH needs
   far more *simulator executions* per effective posterior sample; and
2. **parallelism** — IC importance sampling is embarrassingly parallel while
   an RMH chain is inherently sequential.

On the mini-Sherpa substrate the simulator itself is so cheap that raw
wall-clock comparisons are dominated by the (Python) NN overhead rather than
by simulator cost, which inverts the paper's regime.  The bench therefore
measures the transferable quantity — simulator executions per effective
sample for each engine — and prices executions at a Sherpa-like per-event
cost to report the wall-clock speed-up in the paper's regime, alongside the
raw measured numbers.
"""

import time

import numpy as np

from repro.common.rng import RandomState
from repro.ppl.inference import RandomWalkMetropolis, effective_sample_size

from benchmarks.conftest import print_table

RMH_SAMPLES = 1500
IC_SAMPLES = 150
PARALLEL_RANKS = 48          # the paper's IC run used 24 dual-socket HSW nodes
SHERPA_COST_PER_EXECUTION = 0.1  # seconds per simulated event at Sherpa scale


def test_ablation_ic_speedup_over_rmh(benchmark, tau_model, tau_observation, trained_ic_engine):
    _, observation = tau_observation
    conditioned = {"detector": observation}

    # --- RMH: sequential, autocorrelated ---------------------------------------
    start = time.perf_counter()
    sampler = RandomWalkMetropolis(tau_model, conditioned, burn_in=200)
    rmh_posterior = sampler.run(RMH_SAMPLES, rng=RandomState(31))
    rmh_wall_time = time.perf_counter() - start
    rmh_chain = [t["px"] for t in rmh_posterior.values]
    rmh_ess = max(effective_sample_size(rmh_chain), 1.0)
    rmh_executions = sampler.num_executions
    rmh_exec_per_eff = rmh_executions / rmh_ess

    # --- IC: amortized importance sampling with the trained network -------------
    start = time.perf_counter()
    ic_posterior = benchmark.pedantic(
        trained_ic_engine.posterior,
        args=(tau_model, conditioned),
        kwargs={"num_traces": IC_SAMPLES, "rng": RandomState(32)},
        iterations=1,
        rounds=1,
    )
    ic_wall_time = time.perf_counter() - start
    ic_ess = max(ic_posterior.effective_sample_size(), 1.0)
    ic_exec_per_eff = IC_SAMPLES / ic_ess
    ic_overhead_per_trace = ic_wall_time / IC_SAMPLES  # NN + bookkeeping cost per trace

    # --- price executions at Sherpa cost (the paper's regime) -------------------
    rmh_time_at_scale = rmh_exec_per_eff * SHERPA_COST_PER_EXECUTION  # sequential chain
    ic_time_at_scale = (
        ic_exec_per_eff * (SHERPA_COST_PER_EXECUTION + ic_overhead_per_trace) / PARALLEL_RANKS
    )
    speedup_at_scale = rmh_time_at_scale / ic_time_at_scale
    statistical_advantage = rmh_exec_per_eff / ic_exec_per_eff

    print_table(
        "Ablation: RMH vs IC inference for the same observation",
        ["engine", "wall time (s)", "simulator executions", "ESS", "executions per effective sample"],
        [
            ["RMH (sequential)", f"{rmh_wall_time:.1f}", rmh_executions, f"{rmh_ess:.1f}", f"{rmh_exec_per_eff:.1f}"],
            ["IC (1 rank)", f"{ic_wall_time:.1f}", IC_SAMPLES, f"{ic_ess:.1f}", f"{ic_exec_per_eff:.1f}"],
        ],
    )
    print(
        f"statistical advantage (RMH/IC executions per effective sample): {statistical_advantage:.1f}x; "
        f"modelled wall-clock speed-up at Sherpa per-event cost ({SHERPA_COST_PER_EXECUTION}s) "
        f"with {PARALLEL_RANKS} parallel IC ranks: {speedup_at_scale:.0f}x (paper: 230x)"
    )

    # Shape assertions: IC needs no more simulator executions per effective
    # sample than RMH (usually far fewer), and in the paper's cost regime the
    # combined statistical + parallel advantage is at least an order of
    # magnitude.  We do not require the exact 230x.
    assert ic_exec_per_eff <= rmh_exec_per_eff * 1.2
    assert speedup_at_scale > 10.0
    # Amortization: the trained engine can be reused for a second observation
    # without retraining (just another cheap IS run).
    second = trained_ic_engine.posterior(tau_model, conditioned, num_traces=20, rng=RandomState(33))
    assert len(second) == 20
