"""Benchmark: fault-injection hooks must be free when injection is off.

The harness's contract is that production code can leave ``fault_point`` /
``perform`` calls inline at every failure site because the disabled path is a
single module-global ``is None`` check.  This bench holds that to a number:
the serving hot path (scheduler flush → worker cohort → completion) runs a
few hook calls per cohort, so the disabled hook must stay within an order of
magnitude of a no-op function call — not within an order of magnitude of a
*lock acquisition*, which is what an always-locking implementation would
cost.  An installed plan is allowed to be ~10-100x slower (it takes a lock
and scans rules); that price is only ever paid inside chaos tests.
"""

import time

from repro.testing import FaultPlan, FaultRule, activate, fault_point

from benchmarks.conftest import print_table

CALLS = 200_000


def _time_calls(fn, calls=CALLS):
    start = time.perf_counter()
    for _ in range(calls):
        fn()
    return (time.perf_counter() - start) / calls


def _noop():
    return None


class TestDisabledHookOverhead:
    def test_disabled_fault_point_is_near_noop(self):
        disabled = _time_calls(lambda: fault_point("bench.site", shard=1))
        baseline = _time_calls(_noop)
        plan = FaultPlan(
            [FaultRule(site="other.site", kind="error", at=10**9)], seed=0
        )
        with activate(plan):
            enabled = _time_calls(lambda: fault_point("bench.site", shard=1))
        print_table(
            "fault_point overhead per call",
            ["variant", "ns/call"],
            [
                ["noop function", f"{baseline * 1e9:.1f}"],
                ["disabled hook", f"{disabled * 1e9:.1f}"],
                ["installed plan (miss)", f"{enabled * 1e9:.1f}"],
            ],
        )
        # The disabled hook does one global read + None check on top of the
        # call itself: require it within 10x of a no-op call (generous for
        # shared CI runners), and three orders of magnitude under 1µs.
        assert disabled < baseline * 10 + 1e-7
        assert disabled < 1e-6
