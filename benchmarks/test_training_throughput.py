"""Benchmark: the packed-minibatch training pipeline vs the per-object loop.

The pre-packing offline trainer paid, every iteration, for work that never
changes between epochs: drawing a random mixed-type minibatch (splitting into
many small sub-minibatches, each its own LSTM forward), re-stacking the same
observation arrays, re-deriving per-trace prior geometry in Python loops, and
re-encoding the same sample values.  The packed pipeline sorts the dataset by
trace type once, chunks it under a token budget, caches the packed array
inputs across epochs and scores each step in array ops — so per iteration
only the NN forwards/backwards remain.

The gate: at minibatch 64 on a multi-trace-type model, the packed pipeline
must deliver at least ``TRAINING_SPEEDUP_MIN``x (2x on dedicated hardware,
relaxed on noisy CI runners) the offline training throughput (traces/s) of
the retained reference — ``vectorized_loss=False`` plus the legacy
per-iteration random schedule.  Correctness is owned by
``tests/test_training_packed.py``: under the *same* schedule the two loss
paths are bit-identical, so everything measured here is schedule + caching +
vectorisation, not different math.
"""

import os
import time

import numpy as np

from repro.common.config import Config
from repro.common.rng import RandomState
from repro.data.packing import pack_minibatch
from repro.ppl import FunctionModel, observe, sample
from repro.ppl.inference.inference_compilation import InferenceCompilation
from repro.ppl.nn.embeddings import ObservationEmbeddingFC
from repro.ppl.nn.preprocessing import pregenerate_layers
from repro.distributions import Categorical, Normal, Uniform

from benchmarks.conftest import print_table

MINIBATCH = 64
DATASET_SIZE = 256
NUM_TRACES = MINIBATCH * 30   # 30 iterations, several epochs over the plan
ROUNDS = 3
MIN_SPEEDUP = float(os.environ.get("TRAINING_SPEEDUP_MIN", "2.0"))

TRAIN_CONFIG = Config(
    observation_shape=(4, 5, 5),
    lstm_hidden=32,
    lstm_stacks=1,
    observation_embedding_dim=16,
    address_embedding_dim=8,
    sample_embedding_dim=4,
    proposal_mixture_components=5,
)

OBS_DIM = 12


def training_program():
    """Variable-length traces (6 trace types), bounded-Uniform + Categorical.

    Trace-type diversity is the point: the paper's Sherpa workload has
    thousands of types, and a random minibatch splits into one sub-minibatch
    per type present while the sorted schedule keeps groups near-pure.
    """
    regime = sample(
        Categorical([0.22, 0.20, 0.18, 0.16, 0.14, 0.10]), name="regime", address="regime"
    )
    total = 0.0
    for i in range(5 + int(regime)):
        total += sample(Uniform(-1.0, 1.0), name=f"w{i}", address=f"w{i}")
    drift = sample(Normal(0.0, 1.0), name="drift", address="drift")
    signal = np.linspace(-1.0, 1.0, OBS_DIM) * total + drift
    observe(Normal(signal, 0.3), name="obs")
    return total


def build_engine(vectorized_loss):
    engine = InferenceCompilation(
        config=TRAIN_CONFIG,
        observation_embedding=ObservationEmbeddingFC(
            input_dim=OBS_DIM,
            embedding_dim=TRAIN_CONFIG.observation_embedding_dim,
            rng=RandomState(1),
        ),
        observe_key="obs",
        rng=RandomState(5),
    )
    engine.network.vectorized_loss = vectorized_loss
    return engine


def test_packed_training_pipeline_speedup():
    model = FunctionModel(training_program, name="training_bench")
    dataset = model.prior_traces(DATASET_SIZE, rng=RandomState(17))
    num_types = len({t.trace_type for t in dataset})
    assert num_types >= 4  # the schedule win needs real trace-type diversity

    # Fixed evaluation loss over the whole dataset: per-iteration training
    # losses are not comparable across schedules (minibatch composition
    # differs), so "did it learn" is judged against the untrained network.
    eval_packs = pack_minibatch(dataset, observe_key="obs")
    probe = build_engine(True)
    pregenerate_layers(probe.network, dataset, freeze=True)
    untrained_eval = probe.network.loss_packed(eval_packs).item()

    def run(vectorized_loss, schedule):
        engine = build_engine(vectorized_loss)
        start = time.perf_counter()
        history = engine.train(
            dataset=dataset,
            num_traces=NUM_TRACES,
            minibatch_size=MINIBATCH,
            learning_rate=1e-3,
            offline_schedule=schedule,
        )
        elapsed = time.perf_counter() - start
        evaluation = engine.network.loss_packed(eval_packs).item()
        return elapsed, history, evaluation

    # Warm numpy/scipy dispatch caches, then best-of-N.
    run(True, "sorted")
    run(False, "random")
    packed_times, reference_times = [], []
    packed_history = reference_history = None
    packed_eval = reference_eval = None
    for _ in range(ROUNDS):
        elapsed, packed_history, packed_eval = run(True, "sorted")
        packed_times.append(elapsed)
        elapsed, reference_history, reference_eval = run(False, "random")
        reference_times.append(elapsed)

    packed_best = min(packed_times)
    reference_best = min(reference_times)
    packed_traces = packed_history.traces_seen[-1]
    reference_traces = reference_history.traces_seen[-1]
    speedup = (packed_traces / packed_best) / (reference_traces / reference_best)

    print_table(
        "Offline IC training: packed pipeline vs per-object reference "
        f"(minibatch {MINIBATCH}, {DATASET_SIZE} traces, {num_types} trace types)",
        ["pipeline", "best wall time (s)", "traces/s", "dataset loss after"],
        [
            [
                "reference (random schedule, per-object loss)",
                f"{reference_best:.3f}",
                f"{reference_traces / reference_best:.1f}",
                f"{reference_eval:.3f}",
            ],
            [
                "packed (sorted schedule, cached packs, vectorised loss)",
                f"{packed_best:.3f}",
                f"{packed_traces / packed_best:.1f}",
                f"{packed_eval:.3f}",
            ],
        ],
    )
    print(f"dataset loss before training: {untrained_eval:.3f}")
    print(f"training speedup: {speedup:.2f}x (required: >= {MIN_SPEEDUP}x)")

    # Both pipelines must actually train (the speedup must not come from a
    # schedule that stops learning).
    assert packed_eval < untrained_eval
    assert reference_eval < untrained_eval
    assert speedup >= MIN_SPEEDUP
