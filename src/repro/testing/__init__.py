"""Test-support subsystems that ship with the library.

:mod:`repro.testing.faults` is the deterministic fault-injection harness: the
serving tier, the PPX transports and the process pool expose explicit fault
points that a seedable :class:`~repro.testing.faults.FaultPlan` can trigger.
It lives under ``src`` (not ``tests``) because the chaos harness is part of
the product's verification surface — CI drives it, and operators can replay a
failing chaos seed locally against an installed copy.
"""

from repro.testing.faults import (
    FaultAction,
    FaultPlan,
    FaultRule,
    InjectedFault,
    activate,
    active,
    clear,
    fault_point,
    injected_counts,
    install,
    perform,
)

__all__ = [
    "FaultAction",
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "activate",
    "active",
    "clear",
    "fault_point",
    "injected_counts",
    "install",
    "perform",
]
