"""Deterministic, seedable fault injection for the serving + PPX stack.

The harness is built around three ideas:

* **Explicit fault points.**  Production code calls
  :func:`fault_point`/:func:`perform` at named sites (``"workers.cohort"``,
  ``"transport.send"``, ...).  When no plan is installed the call is a single
  module-global ``is None`` check — no locks, no allocation, no branching on
  configuration — so the hooks are effectively free in production.

* **A seedable plan.**  :class:`FaultPlan` holds :class:`FaultRule` entries
  (crash worker at shard N, delay every Kth cohort, drop a socket with
  probability p, ...).  All probabilistic decisions derive from
  ``sha256(seed, site, occurrence)`` rather than a stateful RNG, so a plan is
  reproducible from its seed alone and independent of thread interleaving:
  the Nth call at a given site always gets the same verdict.

* **Observable firings.**  Every fault the plan fires is recorded on the
  plan (and surfaced through ``ServingMetrics`` by the serving tier), so a
  chaos test can assert that the fault it asked for actually happened.

Plans are picklable (minus ``match`` callables) so the process-backend
worker entrypoint can carry a plan into child processes.
"""

from __future__ import annotations

import contextlib
import hashlib
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "InjectedFault",
    "FaultRule",
    "FaultAction",
    "FaultPlan",
    "install",
    "clear",
    "activate",
    "active",
    "fault_point",
    "perform",
    "injected_counts",
]


class InjectedFault(RuntimeError):
    """An error raised on purpose by the fault harness.

    ``transient = True`` marks it retryable for the resilience layer: an
    injected fault stands in for a crash/disconnect that a retry may outrun.
    """

    transient = True


# The fault kinds sites know how to interpret.  ``error`` and ``delay`` are
# generic (handled by :func:`perform`); the rest are site-specific and
# returned to the caller to act on (kill a worker process, corrupt a frame,
# flip a cached value, reject an admission).
KINDS = (
    "error",        # raise InjectedFault at the site
    "delay",        # sleep rule.delay seconds (straggler)
    "crash",        # procpool: SIGKILL the worker a shard was dispatched to
    "disconnect",   # transport: close the socket mid-stream
    "garbage",      # transport: corrupt the outgoing frame
    "poison",       # cache: corrupt the stored posterior
    "reject",       # service admission: synthetic queue-full burst
)


@dataclass(frozen=True)
class FaultRule:
    """One trigger: *when* (at/every/probability) and *what* (kind) at a site.

    ``at`` fires on the Nth eligible call at the site (0-based), ``every``
    fires on every Kth call, ``probability`` fires pseudo-randomly (derived
    from the plan seed, not wall-clock randomness).  ``limit`` caps total
    firings of this rule; ``match`` optionally filters on the call context
    (not picklable — leave ``None`` for plans that cross process boundaries).
    """

    site: str
    kind: str
    at: Optional[int] = None
    every: Optional[int] = None
    probability: float = 0.0
    limit: Optional[int] = None
    delay: float = 0.0
    match: Optional[Callable[[Dict[str, Any]], bool]] = None

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r} (known: {KINDS})")
        if self.at is None and self.every is None and self.probability <= 0.0:
            raise ValueError(
                f"rule for site {self.site!r} can never fire: "
                "set at=, every=, or probability="
            )


@dataclass(frozen=True)
class FaultAction:
    """The verdict handed back to a fault point when a rule fires."""

    site: str
    kind: str
    delay: float = 0.0
    rule_index: int = -1


def _chance(seed: int, site: str, occurrence: int, rule_index: int) -> float:
    """Deterministic uniform-[0,1) draw for probability rules.

    Hash-derived rather than RNG-derived so the verdict for the Nth call at a
    site is a pure function of the plan seed — independent of how threads
    interleave calls at *other* sites.
    """
    digest = hashlib.sha256(
        f"{seed}:{site}:{occurrence}:{rule_index}".encode()
    ).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


class FaultPlan:
    """A reproducible schedule of faults, derived entirely from ``seed``."""

    def __init__(self, rules: Sequence[FaultRule] = (), seed: int = 0) -> None:
        self.rules: Tuple[FaultRule, ...] = tuple(rules)
        self.seed = int(seed)
        self._lock = threading.Lock()
        # occurrence counter per site; firing record per rule; flat log.
        self._site_calls: Dict[str, int] = {}
        self._rule_fired: List[int] = [0] * len(self.rules)
        self._fired: List[Tuple[str, str, int]] = []  # (site, kind, occurrence)

    # -- pickling: drop the lock (re-created on load), keep counters so a
    # child process starts from the parent's schedule position only if the
    # parent pickled mid-run (normally counters are zero at worker spawn).
    def __getstate__(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "rules": self.rules,
                "seed": self.seed,
                "site_calls": dict(self._site_calls),
                "rule_fired": list(self._rule_fired),
                "fired": list(self._fired),
            }

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.rules = state["rules"]
        self.seed = state["seed"]
        self._lock = threading.Lock()
        self._site_calls = dict(state["site_calls"])
        self._rule_fired = list(state["rule_fired"])
        self._fired = list(state["fired"])

    def decide(self, site: str, **ctx: Any) -> Optional[FaultAction]:
        """Advance the site's occurrence counter and return a verdict."""
        with self._lock:
            occurrence = self._site_calls.get(site, 0)
            self._site_calls[site] = occurrence + 1
            for index, rule in enumerate(self.rules):
                if rule.site != site:
                    continue
                if rule.limit is not None and self._rule_fired[index] >= rule.limit:
                    continue
                if rule.match is not None and not rule.match(ctx):
                    continue
                hit = False
                if rule.at is not None and occurrence == rule.at:
                    hit = True
                elif rule.every is not None and rule.every > 0 and (
                    occurrence % rule.every == rule.every - 1
                ):
                    hit = True
                elif rule.probability > 0.0 and (
                    _chance(self.seed, site, occurrence, index) < rule.probability
                ):
                    hit = True
                if not hit:
                    continue
                self._rule_fired[index] += 1
                self._fired.append((site, rule.kind, occurrence))
                return FaultAction(
                    site=site, kind=rule.kind, delay=rule.delay, rule_index=index
                )
        return None

    # -- observability -----------------------------------------------------
    def fired(self) -> List[Tuple[str, str, int]]:
        with self._lock:
            return list(self._fired)

    def fired_counts(self) -> Dict[str, int]:
        """``{"site/kind": count}`` for everything this plan has injected."""
        counts: Dict[str, int] = {}
        with self._lock:
            for site, kind, _ in self._fired:
                key = f"{site}/{kind}"
                counts[key] = counts.get(key, 0) + 1
        return counts

    def total_fired(self) -> int:
        with self._lock:
            return len(self._fired)

    def site_calls(self, site: str) -> int:
        with self._lock:
            return self._site_calls.get(site, 0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlan(seed={self.seed}, rules={len(self.rules)})"

    # -- randomized chaos plans -------------------------------------------
    @staticmethod
    def randomized(
        seed: int,
        *,
        crash: bool = True,
        stragglers: bool = True,
        transport: bool = False,
        rejects: bool = True,
    ) -> "FaultPlan":
        """A mixed chaos plan derived deterministically from ``seed``.

        Used by the soak test: each seed picks a different combination of
        worker crashes, straggler delays, admission-reject bursts and (when
        the workload has sockets) transport drops.  The expansion uses
        sha256, not ``random``, so the plan is a pure function of the seed.
        """

        def word(tag: str) -> int:
            digest = hashlib.sha256(f"{seed}:{tag}".encode()).digest()
            return int.from_bytes(digest[:8], "big")

        rules: List[FaultRule] = []
        if crash:
            # One crash somewhere in the first few dispatches, plus a small
            # chance of a second one later.
            rules.append(
                FaultRule(
                    site="procpool.dispatch",
                    kind="crash",
                    at=word("crash-at") % 6,
                    limit=1,
                )
            )
            if word("crash-second") % 4 == 0:
                rules.append(
                    FaultRule(
                        site="procpool.dispatch",
                        kind="crash",
                        probability=0.05,
                        limit=1,
                    )
                )
        if stragglers:
            rules.append(
                FaultRule(
                    site="workers.cohort",
                    kind="delay",
                    probability=0.15 + (word("straggle-p") % 20) / 100.0,
                    delay=0.005 + (word("straggle-d") % 30) / 1000.0,
                    limit=8,
                )
            )
        if transport:
            rules.append(
                FaultRule(
                    site="transport.send",
                    kind="disconnect",
                    at=word("drop-at") % 10,
                    limit=1,
                )
            )
        if rejects:
            rules.append(
                FaultRule(
                    site="service.admit",
                    kind="reject",
                    probability=0.05 + (word("reject-p") % 10) / 100.0,
                    limit=4,
                )
            )
        return FaultPlan(rules, seed=seed)


# ---------------------------------------------------------------------------
# Module-global active plan.  ``fault_point`` reads one global; ``None``
# (the production state) short-circuits before any other work.
# ---------------------------------------------------------------------------

_ACTIVE: Optional[FaultPlan] = None


def install(plan: Optional[FaultPlan]) -> None:
    """Install ``plan`` as the process-wide active plan (``None`` disables)."""
    global _ACTIVE
    _ACTIVE = plan


def clear() -> None:
    """Disable fault injection in this process."""
    install(None)


def active() -> Optional[FaultPlan]:
    """The currently installed plan, or ``None``."""
    return _ACTIVE


@contextlib.contextmanager
def activate(plan: FaultPlan):
    """Context manager: install ``plan`` for the block, restore on exit."""
    previous = _ACTIVE
    install(plan)
    try:
        yield plan
    finally:
        install(previous)


def fault_point(site: str, **ctx: Any) -> Optional[FaultAction]:
    """The hook production code calls.  Free when no plan is installed."""
    plan = _ACTIVE
    if plan is None:
        return None
    return plan.decide(site, **ctx)


def perform(site: str, **ctx: Any) -> Optional[FaultAction]:
    """Like :func:`fault_point`, but handles the generic kinds in place.

    ``delay`` sleeps here; ``error`` raises :class:`InjectedFault` here.
    Site-specific kinds (``crash``, ``disconnect``, ``garbage``, ``poison``,
    ``reject``) are returned for the caller to enact.
    """
    action = fault_point(site, **ctx)
    if action is None:
        return None
    if action.delay > 0.0:
        time.sleep(action.delay)
    if action.kind == "error":
        raise InjectedFault(f"injected fault at {site}")
    if action.kind == "delay":
        return None
    return action


def injected_counts() -> Dict[str, int]:
    """Fired counts of the active plan (empty when injection is off)."""
    plan = _ACTIVE
    if plan is None:
        return {}
    return plan.fired_counts()
