"""Categorical distribution over ``{0, ..., K-1}``.

Used in the mini-Sherpa simulator for the tau decay-channel choice, and as
the proposal family for categorical priors in the IC network (Section 4.3).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.common.rng import RandomState
from repro.distributions.distribution import Distribution, register_distribution

__all__ = ["Categorical"]


@register_distribution
class Categorical(Distribution):
    """Categorical(probs) over integer outcomes ``0..K-1``."""

    discrete = True

    def __init__(self, probs: Sequence[float]) -> None:
        probs_arr = np.asarray(probs, dtype=float)
        if probs_arr.ndim != 1:
            raise ValueError("probs must be a 1-D vector")
        if np.any(probs_arr < 0):
            raise ValueError("probabilities must be non-negative")
        total = probs_arr.sum()
        if total <= 0:
            raise ValueError("probabilities must sum to a positive value")
        self.probs = probs_arr / total
        self._log_probs = np.log(np.clip(self.probs, 1e-300, None))

    @property
    def num_categories(self) -> int:
        return int(self.probs.shape[0])

    def sample(self, rng: Optional[RandomState] = None, size=None):
        out = self._rng(rng).choice(self.num_categories, size=size, p=self.probs)
        if size is None:
            return int(out)
        return out

    def log_prob(self, value) -> np.ndarray:
        idx = np.asarray(value, dtype=np.int64)
        if np.any((idx < 0) | (idx >= self.num_categories)):
            out = np.full(idx.shape if idx.shape else (), -np.inf)
            valid = (idx >= 0) & (idx < self.num_categories)
            safe = np.where(valid, idx, 0)
            vals = self._log_probs[safe]
            return np.where(valid, vals, -np.inf)
        return self._log_probs[idx]

    @property
    def mean(self):
        return float(np.dot(np.arange(self.num_categories), self.probs))

    @property
    def variance(self):
        values = np.arange(self.num_categories)
        mean = self.mean
        return float(np.dot((values - mean) ** 2, self.probs))

    def to_dict(self):
        return {"type": "Categorical", "probs": self.probs.tolist()}
