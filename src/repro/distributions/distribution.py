"""Base class for probability distributions.

PPX defines language-agnostic descriptions of common probability
distributions so that the simulator side and the PPL side agree on priors and
likelihoods (Section 4.1).  Every distribution here therefore supports:

* ``sample(rng, size)`` and ``log_prob(value)`` with numpy semantics,
* ``to_dict()`` / ``Distribution.from_dict()`` for the PPX wire format,
* simple moments (``mean``, ``variance``) used by posterior summaries.

Differentiable *proposal* distributions (whose parameters are autograd
tensors produced by the inference network) live in
:mod:`repro.ppl.nn.proposals`; the classes here are plain numpy and are what
the simulator, the prior, and the MCMC engines use.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Type

import numpy as np

from repro.common.rng import RandomState, get_rng

__all__ = ["Distribution", "register_distribution", "distribution_from_dict"]

_REGISTRY: Dict[str, Type["Distribution"]] = {}


def register_distribution(cls: Type["Distribution"]) -> Type["Distribution"]:
    """Class decorator adding the distribution to the PPX name registry."""
    _REGISTRY[cls.__name__] = cls
    return cls


def distribution_from_dict(payload: Dict[str, Any]) -> "Distribution":
    """Reconstruct a distribution from its PPX dictionary representation."""
    name = payload.get("type")
    if name not in _REGISTRY:
        raise KeyError(f"unknown distribution type {name!r}")
    params = {k: v for k, v in payload.items() if k != "type"}
    return _REGISTRY[name].from_params(**params)


class Distribution:
    """Abstract base class for numpy-backed distributions."""

    #: event dimensionality: 0 for scalars, 1 for vectors, ...
    event_dim: int = 0
    #: whether the support is a discrete set
    discrete: bool = False

    @property
    def name(self) -> str:
        return type(self).__name__

    # ------------------------------------------------------------------ api
    def sample(self, rng: Optional[RandomState] = None, size=None):
        """Draw a sample (or ``size`` samples) using the given random state."""
        raise NotImplementedError

    def log_prob(self, value) -> np.ndarray:
        """Elementwise log density / log mass at ``value``."""
        raise NotImplementedError

    def prob(self, value) -> np.ndarray:
        return np.exp(self.log_prob(value))

    @property
    def mean(self):
        raise NotImplementedError

    @property
    def variance(self):
        raise NotImplementedError

    @property
    def stddev(self):
        return np.sqrt(self.variance)

    # ------------------------------------------------------------ PPX format
    def to_dict(self) -> Dict[str, Any]:
        """Serialise to the PPX dictionary representation."""
        raise NotImplementedError

    @classmethod
    def from_params(cls, **params) -> "Distribution":
        """Construct from the parameters stored by :meth:`to_dict`."""
        return cls(**params)  # type: ignore[call-arg]

    # --------------------------------------------------------------- helpers
    def _rng(self, rng: Optional[RandomState]) -> np.random.Generator:
        return (rng or get_rng()).generator

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        params = {k: v for k, v in self.to_dict().items() if k != "type"}
        inner = ", ".join(f"{k}={v}" for k, v in params.items())
        return f"{self.name}({inner})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Distribution):
            return NotImplemented
        a, b = self.to_dict(), other.to_dict()
        if a.keys() != b.keys():
            return False
        for key in a:
            va, vb = a[key], b[key]
            if isinstance(va, (list, tuple, np.ndarray)) or isinstance(vb, (list, tuple, np.ndarray)):
                # Non-broadcastable parameter shapes (e.g. a scalar-loc Normal
                # vs a grid-likelihood Normal over a differently shaped grid)
                # mean "not equal", not "crash": np.allclose raises on them.
                # Non-numeric payloads (e.g. Mixture's list of component
                # dicts) cannot be compared numerically at all — fall back to
                # structural equality for those.
                try:
                    arr_a = np.asarray(va, dtype=float)
                    arr_b = np.asarray(vb, dtype=float)
                except (ValueError, TypeError):
                    equal = va == vb  # non-numeric payload: structural equality
                else:
                    try:
                        equal = bool(np.allclose(arr_a, arr_b))
                    except ValueError:
                        equal = False  # numeric but non-broadcastable shapes
                if not equal:
                    return False
            elif va != vb:
                return False
        return True

    def __hash__(self) -> int:  # allow use in sets keyed by repr
        return hash(repr(self))
