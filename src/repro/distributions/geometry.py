"""Prior geometry shared by proposal emission, minibatch packing and plans.

:class:`PriorGeometry` describes everything the continuous proposal family
needs to know about the B priors of one same-address group: support bounds,
the location/scale used to rescale the NN's normalised outputs, and the
bounded flags.  Deriving it is the only per-prior Python loop on both the
training and inference hot paths, which is why three layers precompute it:

* ``ppl/nn/proposals.py`` derives it per proposal step at emission time,
* ``data/packing.py`` derives it once per (dataset, step) at pack-build time,
* ``ppl/inference/plans.py`` compiles it once per (trace type, bucket) and
  reuses it for every planned cohort.

All three must evaluate the same floating-point expression — bit-identity
between the dynamic and planned/packed paths rests on this module being the
single definition.

:func:`prior_signature` is the exact-match companion: a cheap hashable
fingerprint of a prior's family and parameters used by the plan layer to
validate at run time that a request's prior still matches the one the plan
was compiled against.  It is deliberately *exact* (``==`` on floats,
``array_equal`` on arrays) — unlike :meth:`Distribution.__eq__`, which is
tolerance-based — because a plan's precompiled geometry is only bit-identical
to the dynamic derivation when the parameters match bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.distributions.categorical import Categorical
from repro.distributions.distribution import Distribution
from repro.distributions.normal import Normal
from repro.distributions.truncated_normal import TruncatedNormal
from repro.distributions.uniform import Uniform

__all__ = [
    "MIN_PROPOSAL_SCALE",
    "PriorGeometry",
    "prior_bounds",
    "prior_geometry",
    "prior_signature",
]

#: Floor on proposal component scales (and on the geometry's rescale factor):
#: keeps densities finite when the NN emits a tiny scale or a prior is
#: (near-)degenerate.
MIN_PROPOSAL_SCALE = 1e-3


def prior_bounds(prior: Distribution):
    """Return ``(low, high, loc, scale)`` describing the prior's geometry.

    ``low``/``high`` are ``None`` for unbounded priors.  This is the one
    definition of how a prior family maps to proposal-rescaling geometry;
    every deriver (emission, packing, plan compilation) routes through it.
    """
    if isinstance(prior, Uniform):
        return prior.low, prior.high, 0.5 * (prior.low + prior.high), (prior.high - prior.low)
    if isinstance(prior, TruncatedNormal):
        return prior.low, prior.high, prior.loc, prior.scale
    loc = float(np.mean(np.atleast_1d(prior.mean)))
    scale = float(np.sqrt(np.mean(np.atleast_1d(prior.variance))))
    if not np.isfinite(scale) or scale <= 0:
        scale = 1.0
    return None, None, loc, scale


@dataclass(frozen=True, eq=False)
class PriorGeometry:
    """Per-row prior geometry of a same-address group, as ``(B,)`` arrays.

    Everything the mixture proposal layer needs to know about the B priors
    at one address: support bounds (``-inf``/``+inf`` on unbounded rows), the
    location/scale used to rescale the NN's normalised outputs, and the
    bounded flags.  Extracting it is the only per-prior Python loop in the
    continuous training loss, so the packed-minibatch pipeline precomputes it
    once per (dataset, step) and reuses it every iteration — and the plan
    layer precompiles it once per (trace type, bucket).

    The derived columns/flags the differentiable density consumes are cached
    **lazily**: the inference emission path also routes through a geometry
    (via ``_transformed_parameters``) but never reads them, and it must not
    pay training-only allocations per proposal step.  A pack's geometry
    builds each once and keeps it for every epoch.
    """

    lows: np.ndarray
    highs: np.ndarray
    locs: np.ndarray
    scales: np.ndarray
    bounded: np.ndarray

    def _cached(self, name: str, build):
        if name not in self.__dict__:
            object.__setattr__(self, name, build())
        return self.__dict__[name]

    @property
    def batch_size(self) -> int:
        return int(self.lows.shape[0])

    @property
    def locs_column(self) -> np.ndarray:
        return self._cached("_locs_column", lambda: self.locs.reshape(-1, 1))

    @property
    def scales_column(self) -> np.ndarray:
        return self._cached("_scales_column", lambda: self.scales.reshape(-1, 1))

    @property
    def finite_lows_column(self) -> np.ndarray:
        return self._cached(
            "_finite_lows_column",
            lambda: np.where(np.isfinite(self.lows), self.lows, 0.0).reshape(-1, 1),
        )

    @property
    def finite_highs_column(self) -> np.ndarray:
        return self._cached(
            "_finite_highs_column",
            lambda: np.where(np.isfinite(self.highs), self.highs, 0.0).reshape(-1, 1),
        )

    @property
    def bounded_mask_column(self) -> np.ndarray:
        return self._cached(
            "_bounded_mask_column", lambda: self.bounded.astype(float).reshape(-1, 1)
        )

    @property
    def any_bounded(self) -> bool:
        return self._cached("_any_bounded", lambda: bool(np.any(self.bounded)))

    @property
    def all_bounded(self) -> bool:
        return self._cached("_all_bounded", lambda: bool(np.all(self.bounded)))

    def prefix(self, batch: int) -> "PriorGeometry":
        """A view of the first ``batch`` rows (shared storage, fresh caches).

        The plan layer compiles one geometry at the bucket size and serves
        smaller cohorts from row prefixes; for geometries whose rows are
        replicas of one prior this is value-identical to deriving at the
        smaller size directly.
        """
        if batch == self.batch_size:
            return self
        return PriorGeometry(
            lows=self.lows[:batch],
            highs=self.highs[:batch],
            locs=self.locs[:batch],
            scales=self.scales[:batch],
            bounded=self.bounded[:batch],
        )


def prior_geometry(priors: Sequence[Distribution]) -> PriorGeometry:
    """Extract :class:`PriorGeometry` arrays from per-trace prior objects."""
    batch = len(priors)
    lows = np.empty(batch)
    highs = np.empty(batch)
    locs = np.empty(batch)
    scales = np.empty(batch)
    bounded = np.zeros(batch, dtype=bool)
    for i, prior in enumerate(priors):
        low, high, loc, scale = prior_bounds(prior)
        bounded[i] = low is not None
        lows[i] = low if low is not None else -np.inf
        highs[i] = high if high is not None else np.inf
        locs[i] = loc
        scales[i] = max(scale, MIN_PROPOSAL_SCALE)
    return PriorGeometry(lows=lows, highs=highs, locs=locs, scales=scales, bounded=bounded)


def prior_signature(prior: Distribution) -> Optional[Tuple]:
    """Exact, hashable fingerprint of a prior's family and parameters.

    ``None`` means the family is not signatureable (vector parameters, exotic
    families) — callers must then treat the prior as dynamic and re-derive
    geometry per request.  Two priors with equal signatures produce
    bit-identical :func:`prior_geometry` rows, which is the property the plan
    layer's precompiled geometry relies on.
    """
    kind = type(prior)
    if kind is Uniform:
        return ("Uniform", float(prior.low), float(prior.high))
    if kind is TruncatedNormal:
        return (
            "TruncatedNormal",
            float(prior.loc),
            float(prior.scale),
            float(prior.low),
            float(prior.high),
        )
    if kind is Normal and np.ndim(prior.loc) == 0 and np.ndim(prior.scale) == 0:
        return ("Normal", float(prior.loc), float(prior.scale))
    if kind is Categorical:
        return ("Categorical", prior.probs.tobytes(), prior.probs.shape[0])
    return None
