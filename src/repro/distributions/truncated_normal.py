"""Truncated normal distribution.

The paper's continuous proposal layers output a *mixture of ten truncated
normal* distributions for latent variables with uniform continuous priors
(Section 4.3, citing Bishop's mixture density networks).  The truncation keeps
proposals inside the prior support so that importance weights stay finite.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np
from scipy.special import log_ndtr, ndtr, ndtri

from repro.common.rng import RandomState
from repro.distributions.distribution import Distribution, register_distribution

__all__ = ["TruncatedNormal", "stable_truncation_z"]

_LOG_SQRT_2PI = 0.5 * math.log(2.0 * math.pi)


def stable_truncation_z(alphas, betas):
    """``Z = Phi(beta) - Phi(alpha)`` with tail-side evaluation, vectorised.

    When the whole interval sits in one tail, the naive difference of two CDF
    values close to 1 loses precision catastrophically, so Z is evaluated in
    whichever tail keeps both values small.  Returns ``(zs, degenerate)``
    where ``degenerate`` marks elements whose Z underflowed to <= 0 and was
    floored at 1e-300 (moment formulas must not divide by the floor).

    This is THE single definition of the truncation normalisation used by
    :class:`TruncatedNormal` (scalar and :meth:`TruncatedNormal.batch_build`)
    and by the array-parameterised
    :class:`repro.distributions.batched.BatchedMixtureOfTruncatedNormals` —
    the lockstep engine's bit-identity guarantee between per-object and
    batched proposals rests on all three sharing it.
    """
    alphas = np.asarray(alphas, dtype=float)
    betas = np.asarray(betas, dtype=float)
    right_tail = alphas >= 0
    zs = np.where(
        right_tail,
        ndtr(-alphas) - ndtr(-betas),
        ndtr(betas) - ndtr(alphas),
    )
    degenerate = zs <= 0
    zs = np.where(degenerate, 1e-300, zs)
    return zs, degenerate


@register_distribution
class TruncatedNormal(Distribution):
    """Normal(loc, scale) truncated to the interval [low, high]."""

    def __init__(self, loc: float, scale: float, low: float, high: float) -> None:
        self.loc = float(loc)
        self.scale = float(scale)
        self.low = float(low)
        self.high = float(high)
        if self.scale <= 0:
            raise ValueError("scale must be positive")
        if not self.high > self.low:
            raise ValueError("high must be greater than low")
        self._alpha = (self.low - self.loc) / self.scale
        self._beta = (self.high - self.loc) / self.scale
        z, degenerate = stable_truncation_z(self._alpha, self._beta)
        self._z = float(z)
        self._degenerate = bool(degenerate)
        self._log_z = float(np.log(self._z))
        # log_prob runs once per latent draw per execution; cache the constant.
        self._log_scale = math.log(self.scale)

    @classmethod
    def batch_build(cls, locs, scales, lows, highs) -> list:
        """Vectorized construction of many truncated normals at once.

        The proposal layers build B·K components per batched inference step;
        constructing them one by one pays two scipy CDF evaluations per
        object.  This computes every normalisation constant in two vectorized
        ``ndtr`` calls and fills the instances directly.  Equivalent to
        ``[TruncatedNormal(l, s, lo, hi) for ...]`` including the stable
        tail-side evaluation of Z.
        """
        locs = np.asarray(locs, dtype=float).reshape(-1)
        scales = np.asarray(scales, dtype=float).reshape(-1)
        lows = np.broadcast_to(np.asarray(lows, dtype=float), locs.shape)
        highs = np.broadcast_to(np.asarray(highs, dtype=float), locs.shape)
        if np.any(scales <= 0):
            raise ValueError("scale must be positive")
        if not np.all(highs > lows):
            raise ValueError("high must be greater than low")
        alphas = (lows - locs) / scales
        betas = (highs - locs) / scales
        zs, degenerate = stable_truncation_z(alphas, betas)
        log_zs = np.log(zs)
        log_scales = np.log(scales)
        out = []
        for i in range(locs.shape[0]):
            instance = cls.__new__(cls)
            instance.loc = float(locs[i])
            instance.scale = float(scales[i])
            instance.low = float(lows[i])
            instance.high = float(highs[i])
            instance._alpha = float(alphas[i])
            instance._beta = float(betas[i])
            instance._z = float(zs[i])
            instance._degenerate = bool(degenerate[i])
            instance._log_z = float(log_zs[i])
            instance._log_scale = float(log_scales[i])
            out.append(instance)
        return out

    def sample(self, rng: Optional[RandomState] = None, size=None):
        # Inverse-CDF sampling keeps samples exactly inside [low, high]; the
        # quantile is evaluated in the tail where the CDF values are small so
        # far-tail truncations still sample correctly.
        generator = self._rng(rng)
        u = generator.uniform(0.0, 1.0, size=size)
        if self._alpha >= 0:
            sf_low = ndtr(-self._alpha)
            value = self.loc - self.scale * ndtri(np.clip(sf_low - u * self._z, 1e-300, 1.0))
        else:
            cdf_low = ndtr(self._alpha)
            value = self.loc + self.scale * ndtri(np.clip(cdf_low + u * self._z, 1e-300, 1.0))
        return np.clip(value, self.low, self.high)

    def log_prob(self, value) -> np.ndarray:
        value = np.asarray(value, dtype=float)
        z = (value - self.loc) / self.scale
        log_pdf = -0.5 * z * z - self._log_scale - _LOG_SQRT_2PI - self._log_z
        inside = (value >= self.low) & (value <= self.high)
        return np.where(inside, log_pdf, -np.inf)

    @property
    def mean(self):
        if self._degenerate:
            # Z underflowed: the whole interval is so deep in one tail that
            # essentially all truncated mass sits at the endpoint nearest the
            # untruncated mode.  Dividing by the 1e-300 placeholder instead
            # would report astronomically wrong moments.
            return self.low if self._alpha >= 0 else self.high
        phi_a = math.exp(-0.5 * self._alpha**2) / math.sqrt(2 * math.pi)
        phi_b = math.exp(-0.5 * self._beta**2) / math.sqrt(2 * math.pi)
        value = self.loc + self.scale * (phi_a - phi_b) / self._z
        # Near-degenerate truncations (Z tiny through catastrophic
        # cancellation rather than a clean underflow) can push the formula
        # outside the support; any valid mean lies in [low, high].
        return float(min(max(value, self.low), self.high))

    @property
    def variance(self):
        if self._degenerate:
            # Endpoint limit (see mean): the distribution collapses onto the
            # near boundary, so the spread vanishes.
            return 0.0
        phi_a = math.exp(-0.5 * self._alpha**2) / math.sqrt(2 * math.pi)
        phi_b = math.exp(-0.5 * self._beta**2) / math.sqrt(2 * math.pi)
        a_term = self._alpha * phi_a if math.isfinite(self._alpha) else 0.0
        b_term = self._beta * phi_b if math.isfinite(self._beta) else 0.0
        correction = (a_term - b_term) / self._z - ((phi_a - phi_b) / self._z) ** 2
        value = self.scale**2 * (1.0 + correction)
        # No distribution supported on [low, high] has variance above the
        # two-point-mass bound ((high - low) / 2)^2, and none below 0; the
        # near-degenerate formula can violate both.
        upper = (0.5 * (self.high - self.low)) ** 2
        return float(min(max(value, 0.0), upper))

    def to_dict(self):
        return {
            "type": "TruncatedNormal",
            "loc": self.loc,
            "scale": self.scale,
            "low": self.low,
            "high": self.high,
        }
