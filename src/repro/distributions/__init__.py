"""Probability distributions shared by the simulators, PPX and the PPL."""

from repro.distributions.distribution import (
    Distribution,
    distribution_from_dict,
    register_distribution,
)
from repro.distributions.normal import Normal
from repro.distributions.uniform import Uniform
from repro.distributions.categorical import Categorical
from repro.distributions.truncated_normal import TruncatedNormal
from repro.distributions.mixture import Mixture
from repro.distributions.multivariate_normal import MultivariateNormal
from repro.distributions.scalars import Bernoulli, Beta, Exponential, Gamma, Poisson
from repro.distributions.batched import (
    BatchedCategorical,
    BatchedDistribution,
    BatchedDistributionList,
    BatchedMixtureOfTruncatedNormals,
    BatchedNormal,
    BatchedRowView,
)

__all__ = [
    "Distribution",
    "distribution_from_dict",
    "register_distribution",
    "Normal",
    "Uniform",
    "Categorical",
    "TruncatedNormal",
    "Mixture",
    "MultivariateNormal",
    "Beta",
    "Gamma",
    "Exponential",
    "Poisson",
    "Bernoulli",
    "BatchedDistribution",
    "BatchedRowView",
    "BatchedNormal",
    "BatchedCategorical",
    "BatchedMixtureOfTruncatedNormals",
    "BatchedDistributionList",
]
