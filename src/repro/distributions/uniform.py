"""Continuous uniform distribution."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.common.rng import RandomState
from repro.distributions.distribution import Distribution, register_distribution

__all__ = ["Uniform"]


@register_distribution
class Uniform(Distribution):
    """Uniform(low, high) on the interval [low, high)."""

    def __init__(self, low: float = 0.0, high: float = 1.0) -> None:
        self.low = float(low)
        self.high = float(high)
        if not self.high > self.low:
            raise ValueError("high must be greater than low")
        # log_prob runs once per latent draw per execution; cache the constant.
        self._log_density = -np.log(self.high - self.low)

    def sample(self, rng: Optional[RandomState] = None, size=None):
        return self._rng(rng).uniform(self.low, self.high, size=size)

    def log_prob(self, value) -> np.ndarray:
        value = np.asarray(value, dtype=float)
        inside = (value >= self.low) & (value <= self.high)
        return np.where(inside, self._log_density, -np.inf)

    @property
    def mean(self):
        return 0.5 * (self.low + self.high)

    @property
    def variance(self):
        return (self.high - self.low) ** 2 / 12.0

    def to_dict(self):
        return {"type": "Uniform", "low": self.low, "high": self.high}
