"""Multivariate normal distribution, with the paper's 3D scalar fast path.

Section 4.2 describes an optimisation in the particle-detector simulator: the
general-case multivariate-normal PDF (implemented with the xtensor library)
was exclusively called on 3D data, and replacing it with a scalar-based
implementation limited to the 3D case produced a 13x speed-up of the PDF and
a 1.5x speed-up of the whole simulation pipeline.  This module implements
both code paths:

* :meth:`MultivariateNormal.log_prob` — the general Cholesky-based path.
* :meth:`MultivariateNormal.log_prob_3d_scalar` — a hand-unrolled scalar
  implementation valid only for 3-dimensional events (diagonal or full
  covariance), used by the detector likelihood and by the
  ``benchmarks/test_ablation_mvn_pdf.py`` ablation.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Union

import numpy as np

from repro.common.rng import RandomState
from repro.distributions.distribution import Distribution, register_distribution

__all__ = ["MultivariateNormal"]

_LOG_2PI = math.log(2.0 * math.pi)


@register_distribution
class MultivariateNormal(Distribution):
    """Multivariate normal with mean vector ``loc`` and covariance ``cov``.

    ``cov`` may be given as a full ``(d, d)`` matrix or a length-``d`` vector
    of variances (interpreted as a diagonal covariance).
    """

    event_dim = 1

    def __init__(self, loc: Sequence[float], cov: Union[Sequence[float], Sequence[Sequence[float]]]) -> None:
        self.loc = np.atleast_1d(np.asarray(loc, dtype=float))
        cov_arr = np.asarray(cov, dtype=float)
        self.dim = self.loc.shape[0]
        if cov_arr.ndim == 1:
            if cov_arr.shape[0] != self.dim:
                raise ValueError("diagonal covariance length must match loc")
            if np.any(cov_arr <= 0):
                raise ValueError("variances must be positive")
            self.cov = np.diag(cov_arr)
            self._diagonal = cov_arr.copy()
        elif cov_arr.ndim == 2:
            if cov_arr.shape != (self.dim, self.dim):
                raise ValueError("covariance must be (d, d)")
            self.cov = 0.5 * (cov_arr + cov_arr.T)
            diag = np.diag(self.cov)
            self._diagonal = diag.copy() if np.allclose(self.cov, np.diag(diag)) else None
        else:
            raise ValueError("covariance must be a vector or a matrix")
        try:
            self._chol = np.linalg.cholesky(self.cov)
        except np.linalg.LinAlgError as exc:  # pragma: no cover - defensive
            raise ValueError("covariance matrix must be positive definite") from exc
        self._log_det = 2.0 * float(np.sum(np.log(np.diag(self._chol))))

    # ------------------------------------------------------------------ basic
    def sample(self, rng: Optional[RandomState] = None, size=None):
        generator = self._rng(rng)
        if size is None:
            z = generator.standard_normal(self.dim)
            return self.loc + self._chol @ z
        count = int(np.prod(size)) if not np.isscalar(size) else int(size)
        z = generator.standard_normal((count, self.dim))
        draws = self.loc + z @ self._chol.T
        if np.isscalar(size):
            return draws
        return draws.reshape(tuple(np.atleast_1d(size)) + (self.dim,))

    def log_prob(self, value) -> np.ndarray:
        """General-case log density via Cholesky solve (the 'xtensor' path)."""
        value = np.asarray(value, dtype=float)
        delta = np.atleast_2d(value) - self.loc
        y = np.linalg.solve(self._chol, delta.T)
        maha = np.sum(y * y, axis=0)
        out = -0.5 * (self.dim * _LOG_2PI + self._log_det + maha)
        if value.ndim == 1:
            return out[0]
        return out.reshape(value.shape[:-1])

    def log_prob_3d_scalar(self, value) -> np.ndarray:
        """Scalar-unrolled log density valid only for 3D events.

        This mirrors the paper's replacement of the general xtensor-based PDF
        with a scalar implementation limited to the 3D case (13x faster).
        For diagonal covariance the Mahalanobis term is three scalar
        multiply-adds; for a full 3x3 covariance the inverse is computed once
        in closed form (adjugate / determinant) and unrolled.
        """
        if self.dim != 3:
            raise ValueError("log_prob_3d_scalar is only valid for 3-dimensional events")
        value = np.asarray(value, dtype=float)
        d0 = value[..., 0] - self.loc[0]
        d1 = value[..., 1] - self.loc[1]
        d2 = value[..., 2] - self.loc[2]
        if self._diagonal is not None:
            v0, v1, v2 = self._diagonal
            maha = d0 * d0 / v0 + d1 * d1 / v1 + d2 * d2 / v2
            log_det = math.log(v0) + math.log(v1) + math.log(v2)
        else:
            c = self.cov
            det = (
                c[0, 0] * (c[1, 1] * c[2, 2] - c[1, 2] * c[2, 1])
                - c[0, 1] * (c[1, 0] * c[2, 2] - c[1, 2] * c[2, 0])
                + c[0, 2] * (c[1, 0] * c[2, 1] - c[1, 1] * c[2, 0])
            )
            inv00 = (c[1, 1] * c[2, 2] - c[1, 2] * c[2, 1]) / det
            inv01 = (c[0, 2] * c[2, 1] - c[0, 1] * c[2, 2]) / det
            inv02 = (c[0, 1] * c[1, 2] - c[0, 2] * c[1, 1]) / det
            inv11 = (c[0, 0] * c[2, 2] - c[0, 2] * c[2, 0]) / det
            inv12 = (c[0, 2] * c[1, 0] - c[0, 0] * c[1, 2]) / det
            inv22 = (c[0, 0] * c[1, 1] - c[0, 1] * c[1, 0]) / det
            maha = (
                inv00 * d0 * d0
                + inv11 * d1 * d1
                + inv22 * d2 * d2
                + 2.0 * (inv01 * d0 * d1 + inv02 * d0 * d2 + inv12 * d1 * d2)
            )
            log_det = math.log(det)
        return -0.5 * (3.0 * _LOG_2PI + log_det + maha)

    # ---------------------------------------------------------------- moments
    @property
    def mean(self):
        return self.loc

    @property
    def variance(self):
        return np.diag(self.cov)

    def to_dict(self):
        return {"type": "MultivariateNormal", "loc": self.loc.tolist(), "cov": self.cov.tolist()}
