"""Array-parameterised batched distributions for lockstep proposal steps.

One batched proposal step of the lockstep engine used to materialise B
:class:`~repro.distributions.mixture.Mixture` objects (plus B·K truncated
normal component objects) only to draw a single sample and score a single
log-density per trace.  Profiling after the serving subsystem landed showed
that this per-trace distribution-object churn — not NN compute — was the
engine's per-trace cost floor.

The classes here make the same move pyprob and vectorised PPLs (NumPyro et
al.) make: hold the whole address group's parameters as ``(B, ...)``-shaped
arrays in **one** object, keep ``sample``/``log_prob`` on array math, and hand
each worker slot a cheap :class:`BatchedRowView` into its row instead of a
freshly built per-trace object.

Three contracts matter:

* **Row equivalence** — ``row(i).sample(rng)`` consumes ``rng`` exactly as
  the per-object distribution the row replaces would (component choice, then
  one uniform/normal draw), and ``row(i).log_prob(v)`` evaluates the same
  floating-point expression, so swapping the lockstep engine onto batched
  objects leaves seeded posteriors bit-identical to the per-object path.
* **O(1) objects per step** — constructing a batched distribution allocates a
  fixed number of arrays, never per-row component objects; ``row(i)`` is a
  two-field view.
* **Vectorised bulk paths** — :meth:`sample_rows` / :meth:`log_prob_rows`
  evaluate all B rows in array math (per-row generators are still consumed
  row by row so the draws match ``row(i).sample(rngs[i])``).
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Union

import numpy as np
from scipy.special import logsumexp, ndtr, ndtri

from repro.common.rng import RandomState, get_rng
from repro.distributions.categorical import Categorical
from repro.distributions.distribution import Distribution
from repro.distributions.mixture import Mixture
from repro.distributions.normal import Normal
from repro.distributions.truncated_normal import TruncatedNormal, stable_truncation_z

__all__ = [
    "BatchedDistribution",
    "BatchedRowView",
    "BatchedNormal",
    "BatchedCategorical",
    "BatchedMixtureOfTruncatedNormals",
    "BatchedDistributionList",
    "CategoricalScratch",
    "MixtureScratch",
    "DEFAULT_CHOICE_KERNEL",
]

_LOG_SQRT_2PI = 0.5 * math.log(2.0 * math.pi)

#: Default component/category selection kernel: ``"inverse_cdf"`` draws one
#: uniform per row and inverts a precomputed CDF; ``"percall"`` calls
#: ``generator.choice(p=...)`` per draw (the reference path).  The two are
#: **bit-identical** — ``Generator.choice`` with probabilities is itself
#: inverse-CDF sampling on one ``random()`` draw, so both kernels consume the
#: stream identically and pick the same index — but ``choice`` re-validates
#: and re-accumulates the probability vector on every call, which profiling
#: showed dominates the distribution side of a lockstep round (ROADMAP).
DEFAULT_CHOICE_KERNEL = "inverse_cdf"


def _validated_choice_kernel(choice_kernel: Optional[str]) -> str:
    kernel = DEFAULT_CHOICE_KERNEL if choice_kernel is None else choice_kernel
    if kernel not in ("inverse_cdf", "percall"):
        raise ValueError(
            f"choice_kernel must be 'inverse_cdf' or 'percall', got {choice_kernel!r}"
        )
    return kernel


def _choice_cdfs(probs: np.ndarray) -> np.ndarray:
    """Per-row CDFs built exactly as ``Generator.choice`` builds them.

    Same operation order (row cumsum, then division by the final column) so
    the inverse-CDF kernel's comparisons see bit-for-bit the values numpy's
    own sampler would compute from the same probability rows.
    """
    cdfs = np.cumsum(probs, axis=-1)
    return cdfs / cdfs[:, -1:]


class CategoricalScratch:
    """Pre-allocated ``(B_max, K)`` buffers for :meth:`BatchedCategorical.build_into`.

    One scratch hosts one live batched distribution at a time — the plan
    layer leases a scratch per cohort, so the buffers of consecutive proposal
    steps at the same plan step are reused instead of reallocated.
    """

    __slots__ = ("batch_max", "num_categories", "probs", "log_probs", "cdfs", "norm")

    def __init__(self, batch_max: int, num_categories: int) -> None:
        self.batch_max = int(batch_max)
        self.num_categories = int(num_categories)
        shape = (self.batch_max, self.num_categories)
        self.probs = np.empty(shape)
        self.log_probs = np.empty(shape)
        self.cdfs = np.empty(shape)
        self.norm = np.empty((self.batch_max, 1))


class MixtureScratch:
    """Pre-allocated ``(B_max, K)`` buffers for
    :meth:`BatchedMixtureOfTruncatedNormals.build_into` (see
    :class:`CategoricalScratch` for the single-live-instance contract)."""

    __slots__ = (
        "batch_max",
        "num_components",
        "weights",
        "log_weights",
        "weight_cdfs",
        "alphas",
        "betas",
        "log_zs",
        "log_scales",
        "neg_alphas",
        "sf_lows",
        "cdf_lows",
        "norm",
    )

    def __init__(self, batch_max: int, num_components: int) -> None:
        self.batch_max = int(batch_max)
        self.num_components = int(num_components)
        shape = (self.batch_max, self.num_components)
        for name in (
            "weights",
            "log_weights",
            "weight_cdfs",
            "alphas",
            "betas",
            "log_zs",
            "log_scales",
            "neg_alphas",
            "sf_lows",
            "cdf_lows",
        ):
            setattr(self, name, np.empty(shape))
        self.norm = np.empty((self.batch_max, 1))


class BatchedRowView(Distribution):
    """A lightweight view of one row of a :class:`BatchedDistribution`.

    Quacks like the per-trace distribution object the row replaces — the
    execution-state controllers (:class:`repro.ppl.state.ProposalController`)
    only ever call ``sample(rng)`` and ``log_prob(value)`` on a proposal, and
    both delegate straight into the parent's row arrays.  Anything heavier
    (moments, serialisation) goes through :meth:`materialize`, which builds
    the equivalent stand-alone distribution; that path is for debugging and
    wire formats, never the inference hot loop.
    """

    __slots__ = ("parent", "index")

    def __init__(self, parent: "BatchedDistribution", index: int) -> None:
        self.parent = parent
        self.index = int(index)

    # ------------------------------------------------------------- hot path
    def sample(self, rng: Optional[RandomState] = None, size=None):
        if size is not None:
            return self.materialize().sample(rng, size=size)
        return self.parent._sample_row(self.index, self._rng(rng))

    def log_prob(self, value) -> np.ndarray:
        return self.parent._log_prob_row(self.index, value)

    # ------------------------------------------------------------ cold path
    def materialize(self) -> Distribution:
        """The equivalent stand-alone distribution for this row."""
        return self.parent.row_distribution(self.index)

    @property
    def discrete(self) -> bool:  # type: ignore[override]
        return self.parent.discrete

    @property
    def mean(self):
        return self.materialize().mean

    @property
    def variance(self):
        return self.materialize().variance

    def to_dict(self):
        return self.materialize().to_dict()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BatchedRowView({type(self.parent).__name__}, index={self.index})"


class BatchedDistribution:
    """Common interface of array-parameterised batched distributions.

    Not itself a :class:`Distribution`: it represents B independent
    distributions whose parameters live in shared ``(B, ...)`` arrays.  The
    per-row API (:meth:`row`) serves the lockstep engine's worker slots; the
    bulk API (:meth:`sample_rows` / :meth:`log_prob_rows`) serves vectorised
    callers.
    """

    batch_size: int
    discrete: bool = False

    def row(self, index: int) -> BatchedRowView:
        """A cheap per-slot view of row ``index`` (no parameter copies)."""
        if not 0 <= index < self.batch_size:
            raise IndexError(f"row {index} out of range for batch of {self.batch_size}")
        return BatchedRowView(self, index)

    def rows(self) -> List[BatchedRowView]:
        return [BatchedRowView(self, index) for index in range(self.batch_size)]

    def sample_rows(self, rngs: Union[RandomState, Sequence[RandomState], None] = None) -> np.ndarray:
        """One draw per row: ``out[i]`` is distributed as row ``i``.

        ``rngs`` may be one shared :class:`RandomState` or a sequence of B
        per-row states; with per-row states the draws are identical to
        ``[self.row(i).sample(rngs[i]) for i in range(B)]``.
        """
        raise NotImplementedError

    def log_prob_rows(self, values) -> np.ndarray:
        """``out[i] = log p_i(values[i])``, evaluated in one array pass."""
        raise NotImplementedError

    def row_distribution(self, index: int) -> Distribution:
        """Materialise row ``index`` as a stand-alone distribution object."""
        raise NotImplementedError

    # --------------------------------------------------------------- helpers
    def _per_row_generators(self, rngs) -> List[np.random.Generator]:
        if rngs is None:
            rngs = get_rng()
        if isinstance(rngs, RandomState):
            generator = rngs.generator
            return [generator] * self.batch_size
        if len(rngs) != self.batch_size:
            raise ValueError(
                f"sample_rows needs one rng per row ({self.batch_size}), got {len(rngs)}"
            )
        return [rng.generator for rng in rngs]

    def _sample_row(self, index: int, generator: np.random.Generator):
        raise NotImplementedError

    def _log_prob_row(self, index: int, value) -> np.ndarray:
        raise NotImplementedError


class BatchedNormal(BatchedDistribution):
    """B independent scalar normals held as ``(B,)`` parameter arrays."""

    @classmethod
    def from_distributions(cls, distributions: Sequence[Normal]) -> "BatchedNormal":
        """Pack B per-trace :class:`Normal` objects into one batched object.

        The inverse of :meth:`row_distribution`: ``row(i)`` of the result is
        sample- and density-equivalent to ``distributions[i]``.  Used by the
        minibatch packing layer to turn a same-address group's per-trace
        priors into ``(B,)`` parameter arrays once, instead of touching B
        objects per training iteration.
        """
        for d in distributions:
            if not isinstance(d, Normal) or np.ndim(d.loc) != 0 or np.ndim(d.scale) != 0:
                raise ValueError("from_distributions needs scalar Normal objects")
        return cls(
            np.array([float(d.loc) for d in distributions]),
            np.array([float(d.scale) for d in distributions]),
        )

    def __init__(self, locs, scales) -> None:
        self.locs = np.asarray(locs, dtype=float).reshape(-1)
        self.scales = np.broadcast_to(
            np.asarray(scales, dtype=float), self.locs.shape
        ).astype(float)
        if np.any(self.scales <= 0):
            raise ValueError("scale must be positive")
        self.batch_size = int(self.locs.shape[0])
        self._log_scales = np.log(self.scales)

    def _sample_row(self, index: int, generator: np.random.Generator):
        return generator.normal(self.locs[index], self.scales[index])

    def _log_prob_row(self, index: int, value) -> np.ndarray:
        value = np.asarray(value, dtype=float)
        z = (value - self.locs[index]) / self.scales[index]
        return -0.5 * z * z - self._log_scales[index] - _LOG_SQRT_2PI

    def sample_rows(self, rngs=None) -> np.ndarray:
        generators = self._per_row_generators(rngs)
        return np.array(
            [generators[i].normal(self.locs[i], self.scales[i]) for i in range(self.batch_size)]
        )

    def log_prob_rows(self, values) -> np.ndarray:
        values = np.asarray(values, dtype=float).reshape(-1)
        z = (values - self.locs) / self.scales
        return -0.5 * z * z - self._log_scales - _LOG_SQRT_2PI

    def row_distribution(self, index: int) -> Normal:
        return Normal(self.locs[index], self.scales[index])


class BatchedCategorical(BatchedDistribution):
    """B independent categoricals over ``0..K-1`` held as a ``(B, K)`` array.

    ``choice_kernel`` selects how a category index is drawn (see
    :data:`DEFAULT_CHOICE_KERNEL`); both kernels are bit-identical in output
    and stream consumption, the inverse-CDF one just skips ``choice``'s
    per-call validation/accumulation overhead.
    """

    discrete = True

    @classmethod
    def from_distributions(
        cls, distributions: Sequence[Categorical], choice_kernel: Optional[str] = None
    ) -> "BatchedCategorical":
        """Pack B per-trace :class:`Categorical` objects into a ``(B, K)`` batch.

        All inputs must share the same number of categories (the same-address
        contract of a sub-minibatch group).  ``row(i)`` of the result is
        equivalent to ``distributions[i]``.
        """
        for d in distributions:
            if not isinstance(d, Categorical):
                raise ValueError("from_distributions needs Categorical objects")
        categories = {d.num_categories for d in distributions}
        if len(categories) > 1:
            raise ValueError(
                f"categoricals in one batch must share a category count, got {sorted(categories)}"
            )
        return cls(np.stack([d.probs for d in distributions], axis=0), choice_kernel=choice_kernel)

    def __init__(self, probs, choice_kernel: Optional[str] = None) -> None:
        probs_arr = np.asarray(probs, dtype=float)
        if probs_arr.ndim != 2:
            raise ValueError("probs must be a (batch, categories) matrix")
        if np.any(probs_arr < 0):
            raise ValueError("probabilities must be non-negative")
        totals = probs_arr.sum(axis=-1, keepdims=True)
        if np.any(totals <= 0):
            raise ValueError("probabilities must sum to a positive value")
        self.probs = probs_arr / totals
        self.batch_size = int(self.probs.shape[0])
        self.num_categories = int(self.probs.shape[1])
        self._log_probs = np.log(np.clip(self.probs, 1e-300, None))
        self.choice_kernel = _validated_choice_kernel(choice_kernel)
        self._cdfs = _choice_cdfs(self.probs) if self.choice_kernel == "inverse_cdf" else None

    @classmethod
    def build_into(cls, scratch: CategoricalScratch, probs: np.ndarray) -> "BatchedCategorical":
        """Construct into pre-allocated scratch (the planned-path constructor).

        ``probs`` is a ``(B, K)`` strictly-positive matrix — typically
        ``scratch.probs[:B]`` itself, filled by the caller — with ``B`` at most
        ``scratch.batch_max``.  Evaluates exactly the expressions ``__init__``
        evaluates (normalise, clipped log, ``_choice_cdfs``) but with ``out=``
        targets in the scratch buffers, so a planned proposal step allocates no
        ``(B, K)`` arrays.  Validation is skipped: callers guarantee
        positivity (softmax output mixed with a positive prior).  The result
        aliases the scratch — at most one instance per scratch may be live.
        """
        batch = probs.shape[0]
        self = cls.__new__(cls)
        totals = scratch.norm[:batch]
        np.sum(probs, axis=-1, keepdims=True, out=totals)
        self.probs = np.divide(probs, totals, out=probs)
        self.batch_size = int(batch)
        self.num_categories = int(probs.shape[1])
        log_probs = scratch.log_probs[:batch]
        np.clip(self.probs, 1e-300, None, out=log_probs)
        self._log_probs = np.log(log_probs, out=log_probs)
        self.choice_kernel = DEFAULT_CHOICE_KERNEL
        cdfs = scratch.cdfs[:batch]
        # Same operation order as _choice_cdfs: row cumsum, then division by
        # the final column (copied out first — the quotient overwrites it).
        np.cumsum(self.probs, axis=-1, out=cdfs)
        np.copyto(totals, cdfs[:, -1:])
        self._cdfs = np.divide(cdfs, totals, out=cdfs)
        return self

    def _choose(self, index: int, generator: np.random.Generator) -> int:
        if self._cdfs is not None:
            return int(np.searchsorted(self._cdfs[index], generator.random(), side="right"))
        return int(generator.choice(self.num_categories, size=None, p=self.probs[index]))

    def _sample_row(self, index: int, generator: np.random.Generator):
        return self._choose(index, generator)

    def _log_prob_row(self, index: int, value) -> np.ndarray:
        idx = np.asarray(value, dtype=np.int64)
        valid = (idx >= 0) & (idx < self.num_categories)
        if not np.all(valid):
            safe = np.where(valid, idx, 0)
            return np.where(valid, self._log_probs[index][safe], -np.inf)
        return self._log_probs[index][idx]

    def sample_rows(self, rngs=None) -> np.ndarray:
        generators = self._per_row_generators(rngs)
        if self._cdfs is not None:
            # One uniform per row (consumed row-by-row so each stream matches
            # its row(i).sample), then one vectorised CDF inversion for the
            # whole batch: (cdf[j] <= u) counts are exactly
            # searchsorted(cdf, u, side="right").
            uniforms = np.array([generators[i].random() for i in range(self.batch_size)])
            return (self._cdfs <= uniforms[:, None]).sum(axis=1)
        return np.array(
            [
                int(generators[i].choice(self.num_categories, size=None, p=self.probs[i]))
                for i in range(self.batch_size)
            ]
        )

    def log_prob_rows(self, values) -> np.ndarray:
        idx = np.asarray(values, dtype=np.int64).reshape(-1)
        valid = (idx >= 0) & (idx < self.num_categories)
        safe = np.where(valid, idx, 0)
        picked = np.take_along_axis(self._log_probs, safe[:, None], axis=-1)[:, 0]
        return np.where(valid, picked, -np.inf)

    def row_distribution(self, index: int) -> Categorical:
        return Categorical(self.probs[index])


class BatchedMixtureOfTruncatedNormals(BatchedDistribution):
    """B mixtures of K (truncated) normals held as ``(B, K)`` parameter arrays.

    The shape every continuous proposal layer emits: per row, K component
    means/scales/weights plus a shared truncation interval.  Rows whose prior
    is unbounded (``bounded[i]`` false) behave as plain normal mixtures — same
    density and, crucially, the same rng consumption as the per-object
    :class:`Mixture` of :class:`Normal` they stand in for (one ``normal``
    draw), while bounded rows reproduce :class:`TruncatedNormal`'s tail-side
    inverse-CDF sampling (one ``uniform`` draw).

    All normalisation constants are computed vectorised at construction —
    two ``ndtr`` calls for the whole batch instead of two per component
    object — and no per-component objects are ever allocated.
    """

    @classmethod
    def from_distributions(
        cls, distributions: Sequence[Distribution], choice_kernel: Optional[str] = None
    ) -> "BatchedMixtureOfTruncatedNormals":
        """Pack B per-trace mixtures into ``(B, K)`` parameter arrays.

        Accepts the shapes the proposal layers emit: :class:`Mixture` objects
        whose components are all scalar :class:`Normal` (unbounded row) or all
        :class:`TruncatedNormal` sharing one truncation interval (bounded
        row), plus bare :class:`Normal` / :class:`TruncatedNormal` objects as
        K=1 mixtures.  Every row must have the same component count.  The
        inverse of :meth:`row_distribution`: ``row(i)`` samples and scores
        bit-identically to ``distributions[i]``.
        """
        locs, scales, weights, lows, highs, bounded = [], [], [], [], [], []
        for d in distributions:
            if isinstance(d, Mixture):
                components, row_weights = d.components, d.weights
            elif isinstance(d, (Normal, TruncatedNormal)):
                components, row_weights = [d], np.ones(1)
            else:
                raise ValueError(
                    f"cannot pack {type(d).__name__} into a batched truncated-normal mixture"
                )
            kinds = {type(c) for c in components}
            if kinds == {TruncatedNormal}:
                row_lows = {c.low for c in components}
                row_highs = {c.high for c in components}
                if len(row_lows) > 1 or len(row_highs) > 1:
                    raise ValueError("truncated components of one row must share their interval")
                lows.append(row_lows.pop())
                highs.append(row_highs.pop())
                bounded.append(True)
            elif kinds == {Normal}:
                if any(np.ndim(c.loc) != 0 or np.ndim(c.scale) != 0 for c in components):
                    raise ValueError("from_distributions needs scalar components")
                lows.append(-np.inf)
                highs.append(np.inf)
                bounded.append(False)
            else:
                raise ValueError("mixture components must be all Normal or all TruncatedNormal")
            locs.append([float(c.loc) for c in components])
            scales.append([float(c.scale) for c in components])
            weights.append(row_weights)
        component_counts = {len(row) for row in locs}
        if len(component_counts) > 1:
            raise ValueError(
                f"mixtures in one batch must share a component count, got {sorted(component_counts)}"
            )
        return cls(
            np.asarray(locs, dtype=float),
            np.asarray(scales, dtype=float),
            np.stack([np.asarray(w, dtype=float) for w in weights], axis=0),
            np.asarray(lows, dtype=float),
            np.asarray(highs, dtype=float),
            bounded=np.asarray(bounded, dtype=bool),
            choice_kernel=choice_kernel,
        )

    def __init__(
        self, locs, scales, weights, lows=None, highs=None, bounded=None,
        choice_kernel: Optional[str] = None,
    ) -> None:
        self.locs = np.asarray(locs, dtype=float)
        if self.locs.ndim != 2:
            raise ValueError("locs must be a (batch, components) matrix")
        batch, components = self.locs.shape
        self.scales = np.broadcast_to(np.asarray(scales, dtype=float), self.locs.shape).astype(float)
        if np.any(self.scales <= 0):
            raise ValueError("scale must be positive")
        weights_arr = np.asarray(weights, dtype=float)
        weights_arr = np.broadcast_to(weights_arr, self.locs.shape).astype(float)
        if np.any(weights_arr < 0):
            raise ValueError("mixture weights must be non-negative")
        totals = weights_arr.sum(axis=-1, keepdims=True)
        if np.any(totals <= 0):
            raise ValueError("mixture weights must sum to a positive value")
        self.weights = weights_arr / totals
        self._log_weights = np.log(np.clip(self.weights, 1e-300, None))
        self.batch_size = int(batch)
        self.num_components = int(components)
        self.choice_kernel = _validated_choice_kernel(choice_kernel)
        self._weight_cdfs = (
            _choice_cdfs(self.weights) if self.choice_kernel == "inverse_cdf" else None
        )

        lows_arr = np.full(batch, -np.inf) if lows is None else np.asarray(lows, dtype=float).reshape(-1)
        highs_arr = np.full(batch, np.inf) if highs is None else np.asarray(highs, dtype=float).reshape(-1)
        if lows_arr.shape != (batch,) or highs_arr.shape != (batch,):
            raise ValueError("lows/highs must supply one bound per row")
        if bounded is None:
            bounded_arr = np.isfinite(lows_arr) | np.isfinite(highs_arr)
        else:
            bounded_arr = np.asarray(bounded, dtype=bool).reshape(-1)
            if bounded_arr.shape != (batch,):
                raise ValueError("bounded must supply one flag per row")
        self.lows = np.where(bounded_arr, lows_arr, -np.inf)
        self.highs = np.where(bounded_arr, highs_arr, np.inf)
        self.bounded = bounded_arr
        if np.any(bounded_arr & ~(self.highs > self.lows)):
            raise ValueError("high must be greater than low")

        # Truncation geometry for every (row, component) at once.  Unbounded
        # rows get alpha=-inf / beta=+inf, for which Z = 1 and log Z = 0, so
        # the density math below is uniform across rows and bit-identical to
        # the untruncated normal expression on unbounded ones.
        with np.errstate(invalid="ignore"):
            self._alphas = (self.lows[:, None] - self.locs) / self.scales
            self._betas = (self.highs[:, None] - self.locs) / self.scales
        # The one shared stable-Z definition (see stable_truncation_z): using
        # anything else here would break bit-identity with the per-object
        # TruncatedNormal components.
        zs, self._degenerate = stable_truncation_z(self._alphas, self._betas)
        self._zs = zs
        self._log_zs = np.log(zs)
        self._log_scales = np.log(self.scales)
        self._sf_lows = ndtr(-self._alphas)
        self._cdf_lows = ndtr(self._alphas)

    @classmethod
    def build_into(
        cls,
        scratch: MixtureScratch,
        locs: np.ndarray,
        scales: np.ndarray,
        weights: np.ndarray,
        lows: np.ndarray,
        highs: np.ndarray,
        bounded: np.ndarray,
    ) -> "BatchedMixtureOfTruncatedNormals":
        """Construct into pre-allocated scratch (the planned-path constructor).

        Same floating-point expressions as ``__init__``, with every derived
        ``(B, K)`` array written into the scratch buffers instead of freshly
        allocated.  Caller guarantees what ``__init__`` validates: ``locs`` is
        ``(B, K)``, ``scales`` positive (softplus + floor), ``weights``
        positive (exp of log-softmax, typically ``scratch.weights[:B]``
        itself), and ``lows``/``highs`` already carry ``∓inf`` on unbounded
        rows — exactly what :func:`repro.distributions.geometry.prior_geometry`
        produces, making ``__init__``'s ``np.where(bounded, ...)`` a no-op.
        ``locs``/``scales``/``lows``/``highs``/``bounded`` are referenced, not
        copied, and must not be mutated while the instance is live; at most
        one instance per scratch may be live.
        """
        batch = locs.shape[0]
        self = cls.__new__(cls)
        self.locs = locs
        self.scales = scales
        totals = scratch.norm[:batch]
        np.sum(weights, axis=-1, keepdims=True, out=totals)
        self.weights = np.divide(weights, totals, out=weights)
        log_weights = scratch.log_weights[:batch]
        np.clip(self.weights, 1e-300, None, out=log_weights)
        self._log_weights = np.log(log_weights, out=log_weights)
        self.batch_size = int(batch)
        self.num_components = int(locs.shape[1])
        self.choice_kernel = DEFAULT_CHOICE_KERNEL
        cdfs = scratch.weight_cdfs[:batch]
        # _choice_cdfs' operation order with the final column copied out
        # before the in-place division overwrites it.
        np.cumsum(self.weights, axis=-1, out=cdfs)
        np.copyto(totals, cdfs[:, -1:])
        self._weight_cdfs = np.divide(cdfs, totals, out=cdfs)
        self.lows = lows
        self.highs = highs
        self.bounded = bounded
        alphas = scratch.alphas[:batch]
        betas = scratch.betas[:batch]
        with np.errstate(invalid="ignore"):
            np.subtract(lows[:, None], locs, out=alphas)
            np.divide(alphas, scales, out=alphas)
            np.subtract(highs[:, None], locs, out=betas)
            np.divide(betas, scales, out=betas)
        self._alphas = alphas
        self._betas = betas
        zs, self._degenerate = stable_truncation_z(alphas, betas)
        self._zs = zs
        self._log_zs = np.log(zs, out=scratch.log_zs[:batch])
        self._log_scales = np.log(scales, out=scratch.log_scales[:batch])
        neg_alphas = np.negative(alphas, out=scratch.neg_alphas[:batch])
        self._sf_lows = ndtr(neg_alphas, out=scratch.sf_lows[:batch])
        self._cdf_lows = ndtr(alphas, out=scratch.cdf_lows[:batch])
        return self

    # --------------------------------------------------------------- sampling
    def _sample_component(self, index: int, component: int, generator: np.random.Generator):
        loc = self.locs[index, component]
        scale = self.scales[index, component]
        if not self.bounded[index]:
            return generator.normal(loc, scale)
        u = generator.uniform(0.0, 1.0)
        z = self._zs[index, component]
        if self._alphas[index, component] >= 0:
            value = loc - scale * ndtri(np.clip(self._sf_lows[index, component] - u * z, 1e-300, 1.0))
        else:
            value = loc + scale * ndtri(np.clip(self._cdf_lows[index, component] + u * z, 1e-300, 1.0))
        return np.clip(value, self.lows[index], self.highs[index])

    def _choose_component(self, index: int, generator: np.random.Generator) -> int:
        if self._weight_cdfs is not None:
            return int(
                np.searchsorted(self._weight_cdfs[index], generator.random(), side="right")
            )
        return int(generator.choice(self.num_components, p=self.weights[index]))

    def _sample_row(self, index: int, generator: np.random.Generator):
        component = self._choose_component(index, generator)
        return self._sample_component(index, component, generator)

    def sample_rows(self, rngs=None) -> np.ndarray:
        generators = self._per_row_generators(rngs)
        # The generator draws stay per row (each row owns its stream and must
        # consume it exactly as row(i).sample would); the inverse-CDF math
        # over the chosen components is then evaluated in one array pass.
        components = np.empty(self.batch_size, dtype=np.int64)
        # Scratch may stay uninitialised where unused: the gathers below read
        # uniforms only at bounded rows and normals only at unbounded ones.
        uniforms = np.empty(self.batch_size)
        normals = np.empty(self.batch_size)
        for i in range(self.batch_size):
            components[i] = self._choose_component(i, generators[i])
            if self.bounded[i]:
                uniforms[i] = generators[i].uniform(0.0, 1.0)
            else:
                normals[i] = generators[i].normal(
                    self.locs[i, components[i]], self.scales[i, components[i]]
                )
        out = np.empty(self.batch_size)
        free = ~self.bounded
        if np.any(free):
            out[free] = normals[free]
        # Truncated rows: gather the chosen component's parameters for the
        # bounded rows only, then invert all of them through ONE clipped
        # ndtri call.  Row-gathering (instead of evaluating the whole batch
        # and masking) keeps the expensive inverse-CDF off unbounded rows
        # while evaluating bit-for-bit the same per-row expression as
        # _sample_component / the per-object TruncatedNormal kernel.
        trunc = np.flatnonzero(self.bounded)
        if trunc.size:
            chosen = components[trunc]
            zs = self._zs[trunc, chosen]
            right = self._alphas[trunc, chosen] >= 0
            quantile = np.where(
                right,
                self._sf_lows[trunc, chosen] - uniforms[trunc] * zs,
                self._cdf_lows[trunc, chosen] + uniforms[trunc] * zs,
            )
            values = np.where(right, -1.0, 1.0) * ndtri(np.clip(quantile, 1e-300, 1.0))
            out[trunc] = np.clip(
                self.locs[trunc, chosen] + self.scales[trunc, chosen] * values,
                self.lows[trunc],
                self.highs[trunc],
            )
        return out

    # ---------------------------------------------------------------- density
    def _log_prob_row(self, index: int, value) -> np.ndarray:
        value = np.asarray(value, dtype=float)
        expanded = value[..., None]
        z = (expanded - self.locs[index]) / self.scales[index]
        log_pdf = -0.5 * z * z - self._log_scales[index] - _LOG_SQRT_2PI - self._log_zs[index]
        inside = (expanded >= self.lows[index]) & (expanded <= self.highs[index])
        log_pdf = np.where(inside, log_pdf, -np.inf)
        return logsumexp(self._log_weights[index] + log_pdf, axis=-1)

    def log_prob_rows(self, values) -> np.ndarray:
        values = np.asarray(values, dtype=float).reshape(-1, 1)
        z = (values - self.locs) / self.scales
        log_pdf = -0.5 * z * z - self._log_scales - _LOG_SQRT_2PI - self._log_zs
        inside = (values >= self.lows[:, None]) & (values <= self.highs[:, None])
        log_pdf = np.where(inside, log_pdf, -np.inf)
        return logsumexp(self._log_weights + log_pdf, axis=-1)

    # ------------------------------------------------------------ cold paths
    def row_distribution(self, index: int) -> Mixture:
        if self.bounded[index]:
            components: List[Distribution] = TruncatedNormal.batch_build(
                self.locs[index],
                self.scales[index],
                np.full(self.num_components, self.lows[index]),
                np.full(self.num_components, self.highs[index]),
            )
        else:
            components = [
                Normal(self.locs[index, k], self.scales[index, k])
                for k in range(self.num_components)
            ]
        return Mixture(components, self.weights[index])


class BatchedDistributionList(BatchedDistribution):
    """Adapter presenting a list of per-row distributions as a batch.

    The compatibility fallback for custom proposal layers that only implement
    the per-object ``proposal_distributions``: ``row(i)`` hands back the i-th
    object itself, so downstream code can rely on the batched interface
    without every layer implementing an array-parameterised path.
    """

    def __init__(self, distributions: Sequence[Distribution]) -> None:
        if len(distributions) == 0:
            raise ValueError("need at least one distribution")
        self.distributions = list(distributions)
        self.batch_size = len(self.distributions)
        self.discrete = all(d.discrete for d in self.distributions)

    def row(self, index: int):  # type: ignore[override]
        if not 0 <= index < self.batch_size:
            raise IndexError(f"row {index} out of range for batch of {self.batch_size}")
        return self.distributions[index]

    def sample_rows(self, rngs=None) -> np.ndarray:
        generators = self._per_row_generators(rngs)
        del generators  # validation only; per-object sampling consumes RandomStates
        if rngs is None or isinstance(rngs, RandomState):
            rngs = [rngs] * self.batch_size
        return np.array(
            [np.asarray(d.sample(rng)) for d, rng in zip(self.distributions, rngs)]
        )

    def log_prob_rows(self, values) -> np.ndarray:
        # No flattening: wrapped distributions may be vector-valued, so
        # values[i] is row i's (possibly non-scalar) value as given.
        if len(values) != self.batch_size:
            raise ValueError(
                f"log_prob_rows needs one value per row ({self.batch_size}), got {len(values)}"
            )
        return np.array(
            [float(np.sum(d.log_prob(v))) for d, v in zip(self.distributions, values)]
        )

    def row_distribution(self, index: int) -> Distribution:
        return self.distributions[index]
