"""Finite mixture distributions.

The IC proposal for a continuous latent variable is a mixture of truncated
normals; :class:`Mixture` provides the generic numpy-side machinery (sampling,
stable log-density via logsumexp, moments).  The differentiable counterpart
used during NN training lives in :mod:`repro.ppl.nn.proposals`.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np
from scipy.special import logsumexp

from repro.common.rng import RandomState
from repro.distributions.distribution import (
    Distribution,
    distribution_from_dict,
    register_distribution,
)

__all__ = ["Mixture"]


@register_distribution
class Mixture(Distribution):
    """Mixture of component distributions with given weights."""

    def __init__(self, components: Sequence[Distribution], weights: Sequence[float]) -> None:
        if len(components) == 0:
            raise ValueError("a mixture needs at least one component")
        if len(components) != len(weights):
            raise ValueError("components and weights must have the same length")
        weights_arr = np.asarray(weights, dtype=float)
        if np.any(weights_arr < 0):
            raise ValueError("mixture weights must be non-negative")
        total = weights_arr.sum()
        if total <= 0:
            raise ValueError("mixture weights must sum to a positive value")
        self.components = list(components)
        self.weights = weights_arr / total
        self._log_weights = np.log(np.clip(self.weights, 1e-300, None))
        self.discrete = all(c.discrete for c in self.components)

    def sample(self, rng: Optional[RandomState] = None, size=None):
        generator = self._rng(rng)
        if size is None:
            index = int(generator.choice(len(self.components), p=self.weights))
            return self.components[index].sample(rng)
        size_int = int(np.prod(size)) if not np.isscalar(size) else int(size)
        indices = generator.choice(len(self.components), size=size_int, p=self.weights)
        draws = np.array([self.components[i].sample(rng) for i in indices], dtype=float)
        return draws.reshape(size)

    def log_prob(self, value) -> np.ndarray:
        value = np.asarray(value, dtype=float)
        log_terms = np.stack(
            [lw + np.asarray(c.log_prob(value), dtype=float) for lw, c in zip(self._log_weights, self.components)],
            axis=0,
        )
        return logsumexp(log_terms, axis=0)

    @property
    def mean(self):
        return float(np.sum([w * np.asarray(c.mean) for w, c in zip(self.weights, self.components)]))

    @property
    def variance(self):
        mean = self.mean
        second_moment = np.sum(
            [w * (np.asarray(c.variance) + np.asarray(c.mean) ** 2) for w, c in zip(self.weights, self.components)]
        )
        return float(second_moment - mean**2)

    def to_dict(self):
        return {
            "type": "Mixture",
            "weights": self.weights.tolist(),
            "components": [c.to_dict() for c in self.components],
        }

    @classmethod
    def from_params(cls, **params) -> "Mixture":
        components = [distribution_from_dict(c) for c in params["components"]]
        return cls(components, params["weights"])
