"""Finite mixture distributions.

The IC proposal for a continuous latent variable is a mixture of truncated
normals; :class:`Mixture` provides the generic numpy-side machinery (sampling,
stable log-density via logsumexp, moments).  The differentiable counterpart
used during NN training lives in :mod:`repro.ppl.nn.proposals`.

Because a fresh proposal mixture is scored for *every* latent draw of every
guided execution, ``log_prob`` is on the inference hot path.  Homogeneous
mixtures of scalar :class:`Normal` / :class:`TruncatedNormal` components (the
shape every continuous proposal layer emits) therefore stack their component
parameters at construction time and evaluate the whole mixture density in one
vectorized pass instead of looping over component objects; ``sample(size=...)``
similarly groups draws by chosen component.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Optional, Sequence

import numpy as np
from scipy.special import logsumexp

from repro.common.rng import RandomState
from repro.distributions.distribution import (
    Distribution,
    distribution_from_dict,
    register_distribution,
)
from repro.distributions.normal import Normal
from repro.distributions.truncated_normal import TruncatedNormal

__all__ = ["Mixture"]

_LOG_SQRT_2PI = 0.5 * math.log(2.0 * math.pi)


@register_distribution
class Mixture(Distribution):
    """Mixture of component distributions with given weights."""

    def __init__(self, components: Sequence[Distribution], weights: Sequence[float]) -> None:
        if len(components) == 0:
            raise ValueError("a mixture needs at least one component")
        if len(components) != len(weights):
            raise ValueError("components and weights must have the same length")
        weights_arr = np.asarray(weights, dtype=float)
        if np.any(weights_arr < 0):
            raise ValueError("mixture weights must be non-negative")
        total = weights_arr.sum()
        if total <= 0:
            raise ValueError("mixture weights must sum to a positive value")
        self.components = list(components)
        self.weights = weights_arr / total
        self._log_weights = np.log(np.clip(self.weights, 1e-300, None))
        self.discrete = all(c.discrete for c in self.components)
        self._fast_params = self._stack_normal_family_parameters()

    def _stack_normal_family_parameters(self) -> Optional[Dict[str, Any]]:
        """Stacked component parameters for the vectorized density fast path.

        Applies to homogeneous mixtures of scalar Normal or TruncatedNormal
        components — the shape produced by every continuous proposal layer.
        Returns ``None`` for heterogeneous/vector mixtures, which fall back to
        the generic per-component loop.
        """
        kinds = {type(c) for c in self.components}
        if kinds == {TruncatedNormal}:
            scales = np.array([c.scale for c in self.components])
            return {
                "locs": np.array([c.loc for c in self.components]),
                "scales": scales,
                "log_scales": np.log(scales),
                "log_zs": np.array([c._log_z for c in self.components]),
                "lows": np.array([c.low for c in self.components]),
                "highs": np.array([c.high for c in self.components]),
                "truncated": True,
            }
        if kinds == {Normal} and all(c.loc.ndim == 0 and c.scale.ndim == 0 for c in self.components):
            scales = np.array([float(c.scale) for c in self.components])
            return {
                "locs": np.array([float(c.loc) for c in self.components]),
                "scales": scales,
                "log_scales": np.log(scales),
                "truncated": False,
            }
        return None

    def sample(self, rng: Optional[RandomState] = None, size=None):
        generator = self._rng(rng)
        if size is None:
            index = int(generator.choice(len(self.components), p=self.weights))
            return self.components[index].sample(rng)
        size_int = int(np.prod(size)) if not np.isscalar(size) else int(size)
        indices = generator.choice(len(self.components), size=size_int, p=self.weights)
        # Group draws by chosen component so each component samples once,
        # vectorized, instead of once per draw.
        draws = np.empty(size_int, dtype=float)
        for index in np.unique(indices):
            chosen = indices == index
            draws[chosen] = np.asarray(
                self.components[int(index)].sample(rng, size=int(chosen.sum())), dtype=float
            ).reshape(-1)
        return draws.reshape(size)

    def log_prob(self, value) -> np.ndarray:
        value = np.asarray(value, dtype=float)
        fast = self._fast_params
        if fast is not None:
            expanded = value[..., None]
            z = (expanded - fast["locs"]) / fast["scales"]
            log_pdf = -0.5 * z * z - fast["log_scales"] - _LOG_SQRT_2PI
            if fast["truncated"]:
                log_pdf = log_pdf - fast["log_zs"]
                inside = (expanded >= fast["lows"]) & (expanded <= fast["highs"])
                log_pdf = np.where(inside, log_pdf, -np.inf)
            return logsumexp(self._log_weights + log_pdf, axis=-1)
        log_terms = np.stack(
            [lw + np.asarray(c.log_prob(value), dtype=float) for lw, c in zip(self._log_weights, self.components)],
            axis=0,
        )
        return logsumexp(log_terms, axis=0)

    @property
    def mean(self):
        # Weighted sum per coordinate: forcing float(np.sum(...)) here used to
        # collapse vector-valued component means into one scalar (summing
        # across coordinates), silently corrupting summaries of vector
        # mixtures.  Scalar mixtures still return a plain float.
        total = sum(w * np.asarray(c.mean, dtype=float) for w, c in zip(self.weights, self.components))
        total = np.asarray(total)
        return float(total) if total.ndim == 0 else total

    @property
    def variance(self):
        mean = np.asarray(self.mean)
        second_moment = sum(
            w * (np.asarray(c.variance, dtype=float) + np.asarray(c.mean, dtype=float) ** 2)
            for w, c in zip(self.weights, self.components)
        )
        result = np.asarray(second_moment - mean**2)
        return float(result) if result.ndim == 0 else result

    def to_dict(self):
        return {
            "type": "Mixture",
            "weights": self.weights.tolist(),
            "components": [c.to_dict() for c in self.components],
        }

    @classmethod
    def from_params(cls, **params) -> "Mixture":
        components = [distribution_from_dict(c) for c in params["components"]]
        return cls(components, params["weights"])
