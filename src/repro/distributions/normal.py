"""Univariate normal distribution."""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.common.rng import RandomState
from repro.distributions.distribution import Distribution, register_distribution

__all__ = ["Normal"]

_LOG_SQRT_2PI = 0.5 * math.log(2.0 * math.pi)


@register_distribution
class Normal(Distribution):
    """Normal(loc, scale) with support on the real line."""

    def __init__(self, loc: float = 0.0, scale: float = 1.0) -> None:
        self.loc = np.asarray(loc, dtype=float)
        self.scale = np.asarray(scale, dtype=float)
        if np.any(self.scale <= 0):
            raise ValueError("scale must be positive")
        # log_prob runs once per latent draw per execution; cache the constant.
        self._log_scale = np.log(self.scale)

    def sample(self, rng: Optional[RandomState] = None, size=None):
        return self._rng(rng).normal(self.loc, self.scale, size=size)

    def log_prob(self, value) -> np.ndarray:
        value = np.asarray(value, dtype=float)
        z = (value - self.loc) / self.scale
        return -0.5 * z * z - self._log_scale - _LOG_SQRT_2PI

    def cdf(self, value) -> np.ndarray:
        value = np.asarray(value, dtype=float)
        from scipy.special import ndtr

        return ndtr((value - self.loc) / self.scale)

    def icdf(self, quantile) -> np.ndarray:
        from scipy.special import ndtri

        return self.loc + self.scale * ndtri(np.asarray(quantile, dtype=float))

    @property
    def mean(self):
        return self.loc

    @property
    def variance(self):
        return self.scale**2

    def to_dict(self):
        # loc/scale may be scalars (latent priors) or arrays (e.g. the detector
        # likelihood over a whole voxel grid); both must serialise.
        loc = self.loc.tolist() if np.ndim(self.loc) else float(self.loc)
        scale = self.scale.tolist() if np.ndim(self.scale) else float(self.scale)
        return {"type": "Normal", "loc": loc, "scale": scale}
