"""Additional scalar distributions: Beta, Gamma, Exponential, Poisson, Bernoulli.

The mini-Sherpa simulator and the spectroscopy example use these for energy
fractions, particle multiplicities and detector noise.  They complete the set
of "common probability distributions" that the PPX protocol defines
language-agnostic descriptions for (Section 4.1).
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np
from scipy import special

from repro.common.rng import RandomState
from repro.distributions.distribution import Distribution, register_distribution

__all__ = ["Beta", "Gamma", "Exponential", "Poisson", "Bernoulli"]


@register_distribution
class Beta(Distribution):
    """Beta(alpha, beta) on the unit interval."""

    def __init__(self, alpha: float, beta: float) -> None:
        self.alpha = float(alpha)
        self.beta = float(beta)
        if self.alpha <= 0 or self.beta <= 0:
            raise ValueError("alpha and beta must be positive")

    def sample(self, rng: Optional[RandomState] = None, size=None):
        return self._rng(rng).beta(self.alpha, self.beta, size=size)

    def log_prob(self, value) -> np.ndarray:
        value = np.asarray(value, dtype=float)
        inside = (value > 0) & (value < 1)
        safe = np.where(inside, value, 0.5)
        log_pdf = (
            (self.alpha - 1.0) * np.log(safe)
            + (self.beta - 1.0) * np.log1p(-safe)
            - special.betaln(self.alpha, self.beta)
        )
        return np.where(inside, log_pdf, -np.inf)

    @property
    def mean(self):
        return self.alpha / (self.alpha + self.beta)

    @property
    def variance(self):
        total = self.alpha + self.beta
        return self.alpha * self.beta / (total**2 * (total + 1.0))

    def to_dict(self):
        return {"type": "Beta", "alpha": self.alpha, "beta": self.beta}


@register_distribution
class Gamma(Distribution):
    """Gamma(shape, scale) on the positive reals."""

    def __init__(self, shape: float, scale: float = 1.0) -> None:
        self.shape = float(shape)
        self.scale = float(scale)
        if self.shape <= 0 or self.scale <= 0:
            raise ValueError("shape and scale must be positive")

    def sample(self, rng: Optional[RandomState] = None, size=None):
        return self._rng(rng).gamma(self.shape, self.scale, size=size)

    def log_prob(self, value) -> np.ndarray:
        value = np.asarray(value, dtype=float)
        inside = value > 0
        safe = np.where(inside, value, 1.0)
        log_pdf = (
            (self.shape - 1.0) * np.log(safe)
            - safe / self.scale
            - special.gammaln(self.shape)
            - self.shape * math.log(self.scale)
        )
        return np.where(inside, log_pdf, -np.inf)

    @property
    def mean(self):
        return self.shape * self.scale

    @property
    def variance(self):
        return self.shape * self.scale**2

    def to_dict(self):
        return {"type": "Gamma", "shape": self.shape, "scale": self.scale}


@register_distribution
class Exponential(Distribution):
    """Exponential(rate) on the positive reals."""

    def __init__(self, rate: float) -> None:
        self.rate = float(rate)
        if self.rate <= 0:
            raise ValueError("rate must be positive")

    def sample(self, rng: Optional[RandomState] = None, size=None):
        return self._rng(rng).exponential(1.0 / self.rate, size=size)

    def log_prob(self, value) -> np.ndarray:
        value = np.asarray(value, dtype=float)
        inside = value >= 0
        log_pdf = math.log(self.rate) - self.rate * np.where(inside, value, 0.0)
        return np.where(inside, log_pdf, -np.inf)

    @property
    def mean(self):
        return 1.0 / self.rate

    @property
    def variance(self):
        return 1.0 / self.rate**2

    def to_dict(self):
        return {"type": "Exponential", "rate": self.rate}


@register_distribution
class Poisson(Distribution):
    """Poisson(rate) over the non-negative integers."""

    discrete = True

    def __init__(self, rate: float) -> None:
        self.rate = float(rate)
        if self.rate <= 0:
            raise ValueError("rate must be positive")

    def sample(self, rng: Optional[RandomState] = None, size=None):
        out = self._rng(rng).poisson(self.rate, size=size)
        if size is None:
            return int(out)
        return out

    def log_prob(self, value) -> np.ndarray:
        value = np.asarray(value, dtype=float)
        non_negative_int = (value >= 0) & (np.floor(value) == value)
        safe = np.where(non_negative_int, value, 0.0)
        log_pmf = safe * math.log(self.rate) - self.rate - special.gammaln(safe + 1.0)
        return np.where(non_negative_int, log_pmf, -np.inf)

    @property
    def mean(self):
        return self.rate

    @property
    def variance(self):
        return self.rate

    def to_dict(self):
        return {"type": "Poisson", "rate": self.rate}


@register_distribution
class Bernoulli(Distribution):
    """Bernoulli(p) over {0, 1}."""

    discrete = True

    def __init__(self, prob: float) -> None:
        self.prob = float(prob)
        if not 0.0 <= self.prob <= 1.0:
            raise ValueError("prob must be in [0, 1]")

    def sample(self, rng: Optional[RandomState] = None, size=None):
        out = (self._rng(rng).random(size) < self.prob).astype(np.int64)
        if size is None:
            return int(out)
        return out

    def log_prob(self, value) -> np.ndarray:
        value = np.asarray(value, dtype=float)
        valid = (value == 0) | (value == 1)
        p = np.clip(self.prob, 1e-300, 1.0 - 1e-16)
        log_pmf = value * math.log(p) + (1.0 - value) * math.log1p(-p)
        return np.where(valid, log_pmf, -np.inf)

    @property
    def mean(self):
        return self.prob

    @property
    def variance(self):
        return self.prob * (1.0 - self.prob)

    def to_dict(self):
        return {"type": "Bernoulli", "prob": self.prob}
