"""Communicator abstraction: the torch.distributed / MPI stand-in.

The paper trains with PyTorch's MPI backend (``torch.distributed``) on up to
1,024 nodes.  MPI is not available in this environment, so the reproduction
defines a small :class:`Communicator` interface with the collective
operations the training stack needs (allreduce, broadcast, barrier, gather)
and two implementations:

* :class:`SingleProcessCommunicator` — size-1 trivial communicator,
* :class:`ThreadGroup` / :class:`ThreadCommunicator` — a real multi-worker
  communicator backed by threads and a barrier, which performs genuine
  synchronous allreduce semantics inside one process (used by tests to verify
  the collective algebra; the trainer's large-scale behaviour is modelled by
  :mod:`repro.distributed.performance_model`).
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

__all__ = ["Communicator", "SingleProcessCommunicator", "ThreadGroup", "ThreadCommunicator"]


class Communicator:
    """Interface of the collective operations used by the trainer."""

    @property
    def rank(self) -> int:
        raise NotImplementedError

    @property
    def size(self) -> int:
        raise NotImplementedError

    def allreduce(self, array: np.ndarray, op: str = "sum") -> np.ndarray:
        raise NotImplementedError

    def broadcast(self, array: np.ndarray, root: int = 0) -> np.ndarray:
        raise NotImplementedError

    def gather(self, value, root: int = 0) -> Optional[List]:
        raise NotImplementedError

    def barrier(self) -> None:
        raise NotImplementedError


class SingleProcessCommunicator(Communicator):
    """The trivial size-1 communicator (single-rank training)."""

    @property
    def rank(self) -> int:
        return 0

    @property
    def size(self) -> int:
        return 1

    def allreduce(self, array: np.ndarray, op: str = "sum") -> np.ndarray:
        return np.array(array, copy=True)

    def broadcast(self, array: np.ndarray, root: int = 0) -> np.ndarray:
        return np.array(array, copy=True)

    def gather(self, value, root: int = 0) -> Optional[List]:
        return [value]

    def barrier(self) -> None:
        pass


class ThreadGroup:
    """Shared state for a group of :class:`ThreadCommunicator` instances."""

    def __init__(self, size: int) -> None:
        if size < 1:
            raise ValueError("group size must be >= 1")
        self.size = size
        self._barrier = threading.Barrier(size)
        self._lock = threading.Lock()
        self._contributions: Dict[int, Dict[int, np.ndarray]] = {}
        self._results: Dict[int, np.ndarray] = {}
        self._gathers: Dict[int, Dict[int, object]] = {}
        self._broadcasts: Dict[int, np.ndarray] = {}
        self._op_counter = 0

    def communicator(self, rank: int) -> "ThreadCommunicator":
        return ThreadCommunicator(self, rank)

    def communicators(self) -> List["ThreadCommunicator"]:
        return [self.communicator(rank) for rank in range(self.size)]

    def run(self, fn: Callable[["ThreadCommunicator"], object]) -> List[object]:
        """Run ``fn(comm)`` on every rank in its own thread; return per-rank results."""
        results: List[object] = [None] * self.size
        errors: List[Optional[BaseException]] = [None] * self.size

        def worker(rank: int) -> None:
            try:
                results[rank] = fn(self.communicator(rank))
            except BaseException as exc:  # noqa: BLE001 - propagate to caller
                errors[rank] = exc
                try:
                    self._barrier.abort()
                except Exception:
                    pass

        threads = [threading.Thread(target=worker, args=(rank,)) for rank in range(self.size)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for error in errors:
            if error is not None:
                raise error
        return results


class ThreadCommunicator(Communicator):
    """Rank-local handle onto a :class:`ThreadGroup`."""

    def __init__(self, group: ThreadGroup, rank: int) -> None:
        if not 0 <= rank < group.size:
            raise ValueError("rank out of range")
        self._group = group
        self._rank = rank
        self._op_id = 0

    @property
    def rank(self) -> int:
        return self._rank

    @property
    def size(self) -> int:
        return self._group.size

    def _next_op(self) -> int:
        self._op_id += 1
        return self._op_id

    def allreduce(self, array: np.ndarray, op: str = "sum") -> np.ndarray:
        if op not in ("sum", "mean", "max"):
            raise ValueError("op must be 'sum', 'mean' or 'max'")
        group = self._group
        op_id = self._next_op()
        array = np.asarray(array, dtype=float)
        with group._lock:
            group._contributions.setdefault(op_id, {})[self._rank] = array
        group._barrier.wait()
        with group._lock:
            if op_id not in group._results:
                stacked = np.stack([group._contributions[op_id][r] for r in range(group.size)])
                if op == "sum":
                    reduced = stacked.sum(axis=0)
                elif op == "mean":
                    reduced = stacked.mean(axis=0)
                else:
                    reduced = stacked.max(axis=0)
                group._results[op_id] = reduced
        group._barrier.wait()
        result = np.array(group._results[op_id], copy=True)
        group._barrier.wait()
        with group._lock:
            group._contributions.pop(op_id, None)
            group._results.pop(op_id, None)
        return result

    def broadcast(self, array: np.ndarray, root: int = 0) -> np.ndarray:
        group = self._group
        op_id = self._next_op()
        if self._rank == root:
            with group._lock:
                group._broadcasts[op_id] = np.asarray(array, dtype=float).copy()
        group._barrier.wait()
        result = np.array(group._broadcasts[op_id], copy=True)
        group._barrier.wait()
        if self._rank == root:
            with group._lock:
                group._broadcasts.pop(op_id, None)
        return result

    def gather(self, value, root: int = 0) -> Optional[List]:
        group = self._group
        op_id = self._next_op()
        with group._lock:
            group._gathers.setdefault(op_id, {})[self._rank] = value
        group._barrier.wait()
        result = None
        if self._rank == root:
            with group._lock:
                collected = group._gathers[op_id]
                result = [collected[r] for r in range(group.size)]
        group._barrier.wait()
        if self._rank == root:
            with group._lock:
                group._gathers.pop(op_id, None)
        return result

    def barrier(self) -> None:
        self._group._barrier.wait()
