"""Analytic performance model of the HPC platforms (Tables 1-2, Figures 4 and 6).

The paper's throughput and scaling numbers come from Cori (Cray XC40, HSW
nodes), Edison (Cray XC30, IVB nodes) and Intel's Diamond cluster (BDW, SKL,
CSL nodes).  None of that hardware is available here, so the scaling-shaped
results are regenerated with a calibrated analytic model:

* **Platform registry** (Table 1 + Section 5): per-socket core counts, clock
  rates and peak single-precision flop rates.
* **Single-node model** (Table 2): the *measured* traces/s of this
  reproduction's trainer on the local CPU is projected onto each platform by
  the ratio of achievable flop rates (peak x efficiency observed in the
  paper), reproducing the ordering IVB < HSW ~ BDW < SKL ~ CSL and the
  1-socket -> 2-socket scaling.
* **Cluster model** (Figures 4 and 6): per-iteration time = max over ranks of
  (read + forward + backward + optimizer) + allreduce(latency, bandwidth,
  message size), where per-rank compute time varies with the trace lengths in
  its minibatch (the load imbalance that dominates at scale).  Weak scaling
  throughput follows.

The model's constants are calibrated so that the published numbers are
recovered to within a few percent when the paper's measured single-socket
rates are used as input; with this reproduction's own measured rate the
absolute numbers differ but every qualitative shape survives (that is what the
benchmarks assert).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.common.rng import RandomState, get_rng

__all__ = [
    "CpuPlatform",
    "PLATFORMS",
    "Interconnect",
    "ClusterSpec",
    "CORI",
    "EDISON",
    "SingleNodeModel",
    "ClusterPerformanceModel",
    "WeakScalingPoint",
]


@dataclass(frozen=True)
class CpuPlatform:
    """One row of Table 1 plus the peak flop rates quoted in Sections 5-6."""

    code: str
    model: str
    cores_per_socket: int
    clock_ghz: float
    peak_sp_gflops_per_socket: float
    #: fraction of peak the paper's training achieved on this platform (Table 2)
    observed_efficiency: float

    @property
    def achievable_gflops(self) -> float:
        return self.peak_sp_gflops_per_socket * self.observed_efficiency


#: Table 1 platforms.  Peak SP flop rates: IVB/HSW from Section 5 (460.8 / 1200
#: Gflop/s per socket), BDW quoted as 1331 in Section 6.1; SKL and CSL derived
#: from the paper's measured Gflop/s and % of peak (704/0.20, 720/0.22).
PLATFORMS: Dict[str, CpuPlatform] = {
    "IVB": CpuPlatform("IVB", "E5-2695 v2 @ 2.40GHz", 12, 2.40, 460.8, 0.43),
    "HSW": CpuPlatform("HSW", "E5-2698 v3 @ 2.30GHz", 16, 2.30, 1200.0, 0.38),
    "BDW": CpuPlatform("BDW", "E5-2697A v4 @ 2.60GHz", 16, 2.60, 1331.0, 0.32),
    "SKL": CpuPlatform("SKL", "Platinum 8170 @ 2.10GHz", 26, 2.10, 3520.0, 0.20),
    "CSL": CpuPlatform("CSL", "Gold 6252 @ 2.10GHz", 24, 2.10, 3270.0, 0.22),
}

#: Table 2 measured throughputs (traces/s) used to validate the model's shape.
PAPER_TABLE2 = {
    "IVB": {"1socket": 13.9, "2socket": 25.6, "gflops": 196.0},
    "HSW": {"1socket": 32.1, "2socket": 56.5, "gflops": 453.0},
    "BDW": {"1socket": 30.5, "2socket": 57.8, "gflops": 430.0},
    "SKL": {"1socket": 49.9, "2socket": 82.7, "gflops": 704.0},
    "CSL": {"1socket": 51.1, "2socket": 93.1, "gflops": 720.0},
}


@dataclass(frozen=True)
class Interconnect:
    """Latency/bandwidth description of the cluster network."""

    name: str
    latency_s: float
    bandwidth_bytes_per_s: float


@dataclass(frozen=True)
class ClusterSpec:
    """A Cori/Edison-like cluster: node platform + interconnect + size."""

    name: str
    platform: CpuPlatform
    interconnect: Interconnect
    max_nodes: int
    sockets_per_node: int = 2
    #: multi-socket scaling efficiency within a node (memory-bandwidth effects)
    two_socket_efficiency: float = 0.88


ARIES = Interconnect("Cray Aries (dragonfly)", latency_s=1.3e-6, bandwidth_bytes_per_s=10e9)
ARIES_XC30 = Interconnect("Cray Aries (XC30)", latency_s=1.6e-6, bandwidth_bytes_per_s=8e9)

CORI = ClusterSpec("Cori", PLATFORMS["HSW"], ARIES, max_nodes=2388)
EDISON = ClusterSpec("Edison", PLATFORMS["IVB"], ARIES_XC30, max_nodes=5586)


# --------------------------------------------------------------------------- single node
class SingleNodeModel:
    """Project a measured single-socket throughput onto the Table 1/2 platforms."""

    def __init__(
        self,
        reference_platform: str = "HSW",
        measured_traces_per_s: Optional[float] = None,
        flops_per_trace: Optional[float] = None,
    ) -> None:
        if reference_platform not in PLATFORMS:
            raise KeyError(f"unknown platform {reference_platform!r}")
        self.reference_platform = reference_platform
        # Default calibration: the paper's HSW single-socket rate.
        self.measured_traces_per_s = (
            measured_traces_per_s
            if measured_traces_per_s is not None
            else PAPER_TABLE2[reference_platform]["1socket"]
        )
        reference = PLATFORMS[reference_platform]
        # Work per trace implied by the calibration point (flop / trace).
        self.flops_per_trace = (
            flops_per_trace
            if flops_per_trace is not None
            else reference.achievable_gflops * 1e9 / self.measured_traces_per_s
        )

    def throughput(self, platform_code: str, sockets: int = 1, two_socket_efficiency: float = 0.88) -> float:
        """Predicted traces/s on ``sockets`` sockets of a platform."""
        platform = PLATFORMS[platform_code]
        single = platform.achievable_gflops * 1e9 / self.flops_per_trace
        if sockets == 1:
            return single
        return single * sockets * two_socket_efficiency

    def flop_rate(self, platform_code: str) -> float:
        """Predicted sustained Gflop/s on a single socket."""
        return PLATFORMS[platform_code].achievable_gflops

    def table2(self) -> Dict[str, Dict[str, float]]:
        """The full Table 2: per-platform 1-/2-socket traces/s and Gflop/s (% peak)."""
        out: Dict[str, Dict[str, float]] = {}
        for code, platform in PLATFORMS.items():
            out[code] = {
                "1socket_traces_per_s": self.throughput(code, 1),
                "2socket_traces_per_s": self.throughput(code, 2),
                "1socket_gflops": self.flop_rate(code),
                "percent_peak": 100.0 * platform.observed_efficiency,
            }
        return out


# --------------------------------------------------------------------------- cluster
@dataclass
class WeakScalingPoint:
    """One point of the Figure 6 weak-scaling curves."""

    nodes: int
    ranks: int
    average_traces_per_s: float
    peak_traces_per_s: float
    ideal_traces_per_s: float
    efficiency: float
    sync_fraction: float


@dataclass
class PhaseBreakdown:
    """Per-socket-count phase times of Figure 4 (normalised ms/trace)."""

    sockets: int
    actual: Dict[str, float]
    best: Dict[str, float]

    @property
    def imbalance_percent(self) -> float:
        actual_total = sum(self.actual.values())
        best_total = sum(self.best.values())
        if best_total == 0:
            return 0.0
        return 100.0 * (actual_total - best_total) / best_total


class ClusterPerformanceModel:
    """Weak scaling, phase breakdown and load-imbalance model for a cluster."""

    def __init__(
        self,
        cluster: ClusterSpec,
        single_node_model: Optional[SingleNodeModel] = None,
        trace_length_distribution: Optional[Sequence[int]] = None,
        local_minibatch_size: int = 64,
        ranks_per_node: int = 2,
        gradient_elements: float = 171_732_688,
        io_fraction: float = 0.05,
        rng: Optional[RandomState] = None,
    ) -> None:
        self.cluster = cluster
        self.single_node_model = single_node_model or SingleNodeModel(
            reference_platform=cluster.platform.code
            if cluster.platform.code in PLATFORMS
            else "HSW"
        )
        self.local_minibatch_size = local_minibatch_size
        self.ranks_per_node = ranks_per_node
        self.gradient_elements = float(gradient_elements)
        self.io_fraction = io_fraction
        self.rng = rng or get_rng()
        if trace_length_distribution is None:
            # Default: a heavy-tailed mixture of short and long traces similar
            # to the rejection-sampling-induced length distribution.
            generator = self.rng.generator
            short = generator.poisson(8, size=4000) + 4
            long = generator.poisson(40, size=1000) + 10
            trace_length_distribution = np.concatenate([short, long])
        self.trace_lengths = np.asarray(trace_length_distribution, dtype=float)
        self._mean_length = float(self.trace_lengths.mean())

    # ----------------------------------------------------------------- helpers
    def socket_traces_per_s(self) -> float:
        """Per-socket (per-rank) average throughput on this cluster's platform."""
        return self.single_node_model.throughput(self.cluster.platform.code, sockets=1)

    def _rank_compute_time(self, lengths: np.ndarray) -> float:
        """Compute time of one rank's minibatch: proportional to total tokens."""
        per_trace = 1.0 / self.socket_traces_per_s()
        # Normalise so that a minibatch of mean-length traces costs B * per_trace.
        return float(per_trace * lengths.sum() / self._mean_length)

    def _sample_rank_lengths(self, num_ranks: int) -> List[np.ndarray]:
        generator = self.rng.generator
        return [
            generator.choice(self.trace_lengths, size=self.local_minibatch_size)
            for _ in range(num_ranks)
        ]

    def _allreduce_time(self, num_ranks: int) -> float:
        """Ring-allreduce style cost: 2(N-1)/N * bytes / bandwidth + log2(N) latency."""
        if num_ranks <= 1:
            return 0.0
        interconnect = self.cluster.interconnect
        bytes_moved = self.gradient_elements * 4 * 2 * (num_ranks - 1) / num_ranks
        return float(
            bytes_moved / interconnect.bandwidth_bytes_per_s
            + np.log2(num_ranks) * interconnect.latency_s * 200.0
        )

    # ------------------------------------------------------------ weak scaling
    def weak_scaling(self, node_counts: Sequence[int], iterations: int = 20) -> List[WeakScalingPoint]:
        """Figure 6: average / peak / ideal traces per second vs node count."""
        points: List[WeakScalingPoint] = []
        single_rank_rate = self.socket_traces_per_s()
        for nodes in node_counts:
            ranks = nodes * self.ranks_per_node
            ideal = single_rank_rate * ranks
            iteration_rates = []
            sync_times = []
            for _ in range(iterations):
                lengths = self._sample_rank_lengths(ranks)
                compute_times = np.array([self._rank_compute_time(l) for l in lengths])
                io_time = compute_times.mean() * self.io_fraction
                sync = self._allreduce_time(ranks)
                iteration_time = compute_times.max() + io_time + sync
                traces_done = ranks * self.local_minibatch_size
                iteration_rates.append(traces_done / iteration_time)
                sync_times.append(sync / iteration_time)
            iteration_rates_arr = np.asarray(iteration_rates)
            points.append(
                WeakScalingPoint(
                    nodes=nodes,
                    ranks=ranks,
                    average_traces_per_s=float(iteration_rates_arr.mean()),
                    peak_traces_per_s=float(iteration_rates_arr.max()),
                    ideal_traces_per_s=float(ideal),
                    efficiency=float(iteration_rates_arr.mean() / ideal),
                    sync_fraction=float(np.mean(sync_times)),
                )
            )
        return points

    # --------------------------------------------------------- phase breakdown
    def phase_breakdown(
        self,
        socket_counts: Sequence[int] = (1, 2, 64),
        phase_fractions: Optional[Dict[str, float]] = None,
        iterations: int = 50,
    ) -> List[PhaseBreakdown]:
        """Figure 4: actual vs best (no-imbalance) time per trace, split by phase.

        ``phase_fractions`` splits the single-socket compute time into the
        forward/backward/optimizer/batch_read phases; the defaults follow the
        measured single-socket BDW breakdown in Figure 4.
        """
        fractions = phase_fractions or {
            "batch_read": 0.13,
            "forward": 0.28,
            "backward": 0.47,
            "optimizer": 0.12,
        }
        per_trace_s = 1.0 / self.socket_traces_per_s()
        results: List[PhaseBreakdown] = []
        generator = self.rng.generator
        for sockets in socket_counts:
            actual_totals = {name: 0.0 for name in fractions}
            best_totals = {name: 0.0 for name in fractions}
            actual_sync = 0.0
            best_sync = 0.0
            for _ in range(iterations):
                lengths = self._sample_rank_lengths(max(sockets, 1))
                compute = np.array([l.sum() / self._mean_length for l in lengths]) * per_trace_s
                slowest = int(np.argmax(compute))
                sync = self._allreduce_time(sockets)
                for name, fraction in fractions.items():
                    actual_totals[name] += compute[slowest] * fraction
                    best_totals[name] += compute.mean() * fraction
                actual_sync += sync
                best_sync += sync
            scale = 1000.0 / (iterations * self.local_minibatch_size)  # ms per trace
            actual = {name: value * scale for name, value in actual_totals.items()}
            best = {name: value * scale for name, value in best_totals.items()}
            if sockets > 1:
                actual["sync"] = actual_sync * scale
                best["sync"] = best_sync * scale
            results.append(PhaseBreakdown(sockets=sockets, actual=actual, best=best))
        return results
