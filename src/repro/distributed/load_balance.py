"""Load-balancing schemes and their evaluation (Sections 6.2 and 7.2).

Per-rank compute time depends on the execution-trace lengths and trace types
in the minibatch each rank happens to draw, which makes load imbalance the
dominant scaling limiter once the allreduce is optimised.  The paper explores
(and this module implements) three mitigation schemes on top of the plain
sorted-chunk sampler:

* **multi-bucketing** — chunks are grouped into length buckets and every
  global minibatch is drawn from a single bucket, which both balances ranks
  and raises the effective minibatch size (30-60% throughput gain at 128-256
  nodes), at the cost of convergence when combined with same-type batching;
* **dynamic (token) batching** — each rank receives a fixed token budget
  instead of a fixed trace count (helps the LSTM, hurts the 3DCNN whose cost
  scales with trace count);
* **none** — the configuration the paper ultimately ships, with sorting and
  same-type chunking only.

:func:`evaluate_scheme` quantifies a scheme on a dataset without running the
NN: it reports the per-rank token imbalance and the effective minibatch size,
the two quantities that translate into throughput.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.data.batching import dynamic_token_batches, effective_minibatch_size
from repro.data.sampler import DistributedTraceSampler
from repro.data.sorting import sorted_indices_by_trace_type

__all__ = ["SchemeEvaluation", "evaluate_scheme", "compare_schemes"]


@dataclass
class SchemeEvaluation:
    """Summary statistics of one load-balancing scheme on one dataset."""

    scheme: str
    mean_effective_minibatch: float
    mean_imbalance_percent: float
    iterations: int

    @property
    def throughput_proxy(self) -> float:
        """Higher is better: effective minibatch scaled down by load imbalance.

        Effective minibatch size is proportional to forward-pass vectorisation
        (fewer sub-minibatches), and imbalance inflates the per-iteration time
        by its percentage; the proxy combines both exactly as the wall-clock
        model in the performance model does.
        """
        return self.mean_effective_minibatch / (1.0 + self.mean_imbalance_percent / 100.0)


def _imbalance_percent(per_rank_tokens: Sequence[float]) -> float:
    arr = np.asarray(per_rank_tokens, dtype=float)
    if arr.size == 0 or arr.mean() == 0:
        return 0.0
    return 100.0 * (arr.max() - arr.mean()) / arr.mean()


def evaluate_scheme(
    dataset,
    scheme: str = "sorted",
    num_ranks: int = 4,
    local_minibatch_size: int = 16,
    num_buckets: int = 10,
    tokens_per_rank: Optional[int] = None,
    max_iterations: int = 50,
    seed: int = 0,
) -> SchemeEvaluation:
    """Evaluate a load-balancing scheme without running the network.

    Schemes: ``"unsorted"``, ``"sorted"``, ``"bucketing"``, ``"dynamic"``.
    """
    lengths = [dataset.trace_length_of(i) for i in range(len(dataset))]
    types = [dataset.trace_type_of(i) for i in range(len(dataset))]

    if scheme == "unsorted":
        order = list(range(len(dataset)))
        buckets = 1
    elif scheme == "sorted":
        order = sorted_indices_by_trace_type(dataset)
        buckets = 1
    elif scheme == "bucketing":
        order = sorted_indices_by_trace_type(dataset)
        buckets = num_buckets
    elif scheme == "dynamic":
        return _evaluate_dynamic(dataset, lengths, types, num_ranks, local_minibatch_size, tokens_per_rank, max_iterations)
    else:
        raise ValueError(f"unknown scheme {scheme!r}")

    samplers = [
        DistributedTraceSampler(
            order,
            minibatch_size=local_minibatch_size,
            num_ranks=num_ranks,
            rank=rank,
            num_buckets=buckets,
            lengths=lengths,
            shuffle=True,
            seed=seed,
        )
        for rank in range(num_ranks)
    ]
    iterators = [iter(s) for s in samplers]
    effective_sizes: List[float] = []
    imbalances: List[float] = []
    iterations = min(max_iterations, min(len(s) for s in samplers))
    for _ in range(iterations):
        per_rank_tokens = []
        iteration_types: List[str] = []
        for rank in range(num_ranks):
            indices = next(iterators[rank])
            per_rank_tokens.append(sum(lengths[i] for i in indices))
            iteration_types.extend(types[i] for i in indices)
        effective_sizes.append(effective_minibatch_size(iteration_types))
        imbalances.append(_imbalance_percent(per_rank_tokens))
    return SchemeEvaluation(
        scheme=scheme,
        mean_effective_minibatch=float(np.mean(effective_sizes)) if effective_sizes else 0.0,
        mean_imbalance_percent=float(np.mean(imbalances)) if imbalances else 0.0,
        iterations=iterations,
    )


def _evaluate_dynamic(
    dataset,
    lengths: Sequence[int],
    types: Sequence[str],
    num_ranks: int,
    local_minibatch_size: int,
    tokens_per_rank: Optional[int],
    max_iterations: int,
) -> SchemeEvaluation:
    """Token-budget batching: every rank gets ~equal tokens per iteration."""
    order = sorted_indices_by_trace_type(dataset)
    if tokens_per_rank is None:
        tokens_per_rank = int(np.mean(lengths) * local_minibatch_size)
    batches = dynamic_token_batches(lengths, tokens_per_rank, indices=order)
    effective_sizes: List[float] = []
    imbalances: List[float] = []
    iterations = 0
    for start in range(0, len(batches) - num_ranks + 1, num_ranks):
        if iterations >= max_iterations:
            break
        group = batches[start : start + num_ranks]
        per_rank_tokens = [sum(lengths[i] for i in batch) for batch in group]
        iteration_types = [types[i] for batch in group for i in batch]
        effective_sizes.append(effective_minibatch_size(iteration_types))
        imbalances.append(_imbalance_percent(per_rank_tokens))
        iterations += 1
    return SchemeEvaluation(
        scheme="dynamic",
        mean_effective_minibatch=float(np.mean(effective_sizes)) if effective_sizes else 0.0,
        mean_imbalance_percent=float(np.mean(imbalances)) if imbalances else 0.0,
        iterations=iterations,
    )


def compare_schemes(
    dataset,
    schemes: Sequence[str] = ("unsorted", "sorted", "bucketing", "dynamic"),
    **kwargs,
) -> Dict[str, SchemeEvaluation]:
    """Evaluate several schemes on the same dataset (Section 7.2's comparison)."""
    return {scheme: evaluate_scheme(dataset, scheme=scheme, **kwargs) for scheme in schemes}
