"""Distributed training and inference: communicators, allreduce, trainer,
performance model, and the per-rank batched importance-sampling driver."""

from repro.distributed.backend import (
    Communicator,
    SingleProcessCommunicator,
    ThreadCommunicator,
    ThreadGroup,
)
from repro.distributed.allreduce import (
    CommunicationStats,
    average_gradients,
    dense_allreduce,
    fused_sparse_allreduce,
    sparse_allreduce,
)
from repro.distributed.performance_model import (
    CORI,
    EDISON,
    PAPER_TABLE2,
    PLATFORMS,
    ClusterPerformanceModel,
    ClusterSpec,
    CpuPlatform,
    Interconnect,
    SingleNodeModel,
    WeakScalingPoint,
)
from repro.distributed.trainer import DistributedTrainer, TrainingReport
from repro.distributed.load_balance import SchemeEvaluation, compare_schemes, evaluate_scheme
from repro.distributed.inference import distributed_importance_sampling, partition_traces, shard_jobs

__all__ = [
    "Communicator",
    "SingleProcessCommunicator",
    "ThreadCommunicator",
    "ThreadGroup",
    "CommunicationStats",
    "average_gradients",
    "dense_allreduce",
    "sparse_allreduce",
    "fused_sparse_allreduce",
    "CORI",
    "EDISON",
    "PAPER_TABLE2",
    "PLATFORMS",
    "ClusterPerformanceModel",
    "ClusterSpec",
    "CpuPlatform",
    "Interconnect",
    "SingleNodeModel",
    "WeakScalingPoint",
    "DistributedTrainer",
    "TrainingReport",
    "SchemeEvaluation",
    "compare_schemes",
    "evaluate_scheme",
    "distributed_importance_sampling",
    "partition_traces",
    "shard_jobs",
]
