"""Gradient allreduce strategies (Section 4.4.4).

In Etalumis the set of non-null gradient tensors differs per rank (each rank's
minibatch touches a different subset of the address-specific layers), so a
naive allreduce over every parameter is wasteful.  The paper's strategy, which
this module implements and quantifies, is:

1. allreduce a small **presence map** so every rank knows the union of tensors
   that have gradients anywhere,
2. reduce only tensors in that union, filling local nulls with zeros
   (the reported 4x improvement in allreduce time), and
3. **fuse** small tensors into a contiguous buffer so that one collective call
   is issued per bucket instead of one per tensor, eliminating per-call
   latency and making the communication bandwidth-bound.

All three strategies return numerically identical averaged gradients; they
differ in the :class:`CommunicationStats` they produce (number of collective
calls, bytes moved, and modelled wall-clock time under a latency/bandwidth
model), which is what the ablation benchmark compares.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

__all__ = ["CommunicationStats", "dense_allreduce", "sparse_allreduce", "fused_sparse_allreduce", "average_gradients"]

#: bytes per element (single precision on the wire, as in the paper's training)
_BYTES_PER_ELEMENT = 4


@dataclass
class CommunicationStats:
    """Accounting of one gradient-synchronisation step."""

    num_calls: int = 0
    elements: int = 0
    latency_s: float = 50e-6           # per-call latency of the interconnect
    bandwidth_bytes_per_s: float = 8e9  # effective allreduce bandwidth

    @property
    def bytes(self) -> int:
        return self.elements * _BYTES_PER_ELEMENT

    @property
    def modeled_time(self) -> float:
        """Latency + bandwidth model of the allreduce wall-clock time."""
        return self.num_calls * self.latency_s + self.bytes / self.bandwidth_bytes_per_s

    def add_call(self, elements: int) -> None:
        self.num_calls += 1
        self.elements += int(elements)


def _union_of_names(per_rank_gradients: Sequence[Dict[str, np.ndarray]]) -> List[str]:
    names: List[str] = []
    seen = set()
    for gradients in per_rank_gradients:
        for name in gradients:
            if name not in seen:
                seen.add(name)
                names.append(name)
    return sorted(names)


def _shapes(per_rank_gradients: Sequence[Dict[str, np.ndarray]], names: Sequence[str]) -> Dict[str, tuple]:
    shapes: Dict[str, tuple] = {}
    for name in names:
        for gradients in per_rank_gradients:
            if name in gradients:
                shapes[name] = np.asarray(gradients[name]).shape
                break
    return shapes


def dense_allreduce(
    per_rank_gradients: Sequence[Dict[str, np.ndarray]],
    all_parameter_names: Sequence[str],
    parameter_shapes: Dict[str, tuple],
    stats: Optional[CommunicationStats] = None,
) -> Dict[str, np.ndarray]:
    """Baseline: one allreduce per parameter over the *full* parameter set.

    Every rank contributes every tensor (zeros where it has no gradient), and
    one collective call is issued per tensor — the list-comprehension-over-
    ``all_reduce`` pattern the paper starts from.
    """
    stats = stats if stats is not None else CommunicationStats()
    num_ranks = len(per_rank_gradients)
    averaged: Dict[str, np.ndarray] = {}
    for name in all_parameter_names:
        shape = parameter_shapes[name]
        total = np.zeros(shape, dtype=float)
        for gradients in per_rank_gradients:
            grad = gradients.get(name)
            if grad is not None:
                total += grad
        stats.add_call(int(np.prod(shape)))
        averaged[name] = total / num_ranks
    return averaged


def sparse_allreduce(
    per_rank_gradients: Sequence[Dict[str, np.ndarray]],
    all_parameter_names: Sequence[str],
    parameter_shapes: Dict[str, tuple],
    stats: Optional[CommunicationStats] = None,
) -> Dict[str, np.ndarray]:
    """Reduce only the union of non-null gradients (the paper's 4x improvement).

    A presence-map allreduce (one element per parameter) establishes the union
    of tensors present on any rank; only those are then reduced, one call per
    tensor.
    """
    stats = stats if stats is not None else CommunicationStats()
    num_ranks = len(per_rank_gradients)
    # Presence map: one flag per parameter, reduced across ranks.
    stats.add_call(len(all_parameter_names))
    present = _union_of_names(per_rank_gradients)
    averaged: Dict[str, np.ndarray] = {}
    for name in present:
        shape = parameter_shapes.get(name, np.asarray(next(g[name] for g in per_rank_gradients if name in g)).shape)
        total = np.zeros(shape, dtype=float)
        for gradients in per_rank_gradients:
            grad = gradients.get(name)
            if grad is not None:
                total += grad
        stats.add_call(int(np.prod(shape)))
        averaged[name] = total / num_ranks
    return averaged


def fused_sparse_allreduce(
    per_rank_gradients: Sequence[Dict[str, np.ndarray]],
    all_parameter_names: Sequence[str],
    parameter_shapes: Dict[str, tuple],
    bucket_elements: int = 1_000_000,
    stats: Optional[CommunicationStats] = None,
) -> Dict[str, np.ndarray]:
    """Sparse reduction with tensor fusion: concatenate small tensors into buffers.

    Tensors in the union are packed into contiguous buckets of at most
    ``bucket_elements`` elements; one collective call is issued per bucket and
    the reduced buffer is scattered back into the named gradients.
    """
    stats = stats if stats is not None else CommunicationStats()
    num_ranks = len(per_rank_gradients)
    stats.add_call(len(all_parameter_names))  # presence map
    present = _union_of_names(per_rank_gradients)
    shapes = {name: parameter_shapes.get(name) for name in present}
    for name in present:
        if shapes[name] is None:
            shapes[name] = np.asarray(next(g[name] for g in per_rank_gradients if name in g)).shape

    # Build buckets of names.
    buckets: List[List[str]] = []
    current: List[str] = []
    current_elements = 0
    for name in present:
        elements = int(np.prod(shapes[name]))
        if current and current_elements + elements > bucket_elements:
            buckets.append(current)
            current = []
            current_elements = 0
        current.append(name)
        current_elements += elements
    if current:
        buckets.append(current)

    averaged: Dict[str, np.ndarray] = {}
    for bucket in buckets:
        sizes = [int(np.prod(shapes[name])) for name in bucket]
        buffer_total = np.zeros(sum(sizes), dtype=float)
        for gradients in per_rank_gradients:
            offset = 0
            for name, size in zip(bucket, sizes):
                grad = gradients.get(name)
                if grad is not None:
                    buffer_total[offset : offset + size] += np.asarray(grad, dtype=float).reshape(-1)
                offset += size
        stats.add_call(sum(sizes))
        buffer_total /= num_ranks
        offset = 0
        for name, size in zip(bucket, sizes):
            averaged[name] = buffer_total[offset : offset + size].reshape(shapes[name]).copy()
            offset += size
    return averaged


def average_gradients(
    per_rank_gradients: Sequence[Dict[str, np.ndarray]],
    all_parameter_names: Sequence[str],
    parameter_shapes: Dict[str, tuple],
    strategy: str = "fused_sparse",
    stats: Optional[CommunicationStats] = None,
) -> Dict[str, np.ndarray]:
    """Dispatch to the requested allreduce strategy."""
    if strategy == "dense":
        return dense_allreduce(per_rank_gradients, all_parameter_names, parameter_shapes, stats)
    if strategy == "sparse":
        return sparse_allreduce(per_rank_gradients, all_parameter_names, parameter_shapes, stats)
    if strategy == "fused_sparse":
        return fused_sparse_allreduce(per_rank_gradients, all_parameter_names, parameter_shapes, stats=stats)
    raise ValueError(f"unknown allreduce strategy {strategy!r}")
