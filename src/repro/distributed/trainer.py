"""Synchronous data-parallel training of the IC network (Algorithm 2).

This is the reproduction of the paper's distributed trainer: N ranks each draw
a local minibatch from the (sorted, sharded) offline dataset through the
distributed sampler, compute the Algorithm 1 loss and its gradients on an
identical copy of the inference network, allreduce the gradients (sparse +
fused, Section 4.4.4) and take one optimizer step — Adam or Adam-LARC with an
optional polynomial learning-rate decay (Section 6.3).

Because every rank starts from identical parameters and the allreduce is an
exact average, executing the ranks sequentially inside one process is
numerically identical to running them concurrently under MPI; the wall-clock
behaviour at scale (load imbalance, sync cost) is captured separately by the
instrumentation here plus :mod:`repro.distributed.performance_model`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.common.rng import RandomState, get_rng
from repro.common.timing import PhaseTimer
from repro.data.batching import effective_minibatch_size
from repro.data.sampler import DistributedTraceSampler
from repro.data.sorting import sorted_indices_by_trace_type
from repro.distributed.allreduce import CommunicationStats, average_gradients
from repro.ppl.nn.inference_network import InferenceNetwork
from repro.ppl.nn.preprocessing import pregenerate_layers
from repro.tensor import optim

__all__ = ["TrainingReport", "DistributedTrainer"]


@dataclass
class TrainingReport:
    """Everything the scaling and convergence figures need from a training run."""

    train_losses: List[float] = field(default_factory=list)
    validation_losses: List[float] = field(default_factory=list)
    validation_iterations: List[int] = field(default_factory=list)
    learning_rates: List[float] = field(default_factory=list)
    iteration_times: List[float] = field(default_factory=list)
    best_iteration_times: List[float] = field(default_factory=list)
    traces_per_iteration: int = 0
    effective_minibatch_sizes: List[float] = field(default_factory=list)
    communication: List[CommunicationStats] = field(default_factory=list)
    phase_means: Dict[str, float] = field(default_factory=dict)
    num_parameters: int = 0

    @property
    def mean_throughput(self) -> float:
        """Average traces/s over the run (actual, including load imbalance)."""
        total_time = sum(self.iteration_times)
        if total_time <= 0:
            return 0.0
        return self.traces_per_iteration * len(self.iteration_times) / total_time

    @property
    def best_throughput(self) -> float:
        """Throughput assuming perfect load balance (the Figure 4 'best' columns)."""
        total_time = sum(self.best_iteration_times)
        if total_time <= 0:
            return 0.0
        return self.traces_per_iteration * len(self.best_iteration_times) / total_time

    @property
    def load_imbalance_percent(self) -> float:
        actual = sum(self.iteration_times)
        best = sum(self.best_iteration_times)
        if best <= 0:
            return 0.0
        return 100.0 * (actual - best) / best

    @property
    def final_train_loss(self) -> float:
        return self.train_losses[-1] if self.train_losses else float("nan")


class DistributedTrainer:
    """Algorithm 2: synchronous data-parallel SGD over simulated MPI ranks."""

    def __init__(
        self,
        network: InferenceNetwork,
        dataset,
        num_ranks: int = 2,
        local_minibatch_size: int = 8,
        optimizer: str = "adam",
        learning_rate: float = 1e-3,
        larc: bool = False,
        lr_schedule: Optional[str] = None,
        end_learning_rate: float = 1e-5,
        total_iterations_hint: Optional[int] = None,
        allreduce_strategy: str = "fused_sparse",
        num_buckets: int = 1,
        sort_dataset: bool = True,
        validation_fraction: float = 0.1,
        seed: int = 0,
        rng: Optional[RandomState] = None,
    ) -> None:
        if num_ranks < 1:
            raise ValueError("num_ranks must be >= 1")
        self.network = network
        self.dataset = dataset
        self.num_ranks = num_ranks
        self.local_minibatch_size = local_minibatch_size
        self.allreduce_strategy = allreduce_strategy
        self.rng = rng or get_rng()
        self.seed = seed

        # Offline mode: pre-generate every address-specific layer and freeze.
        pregenerate_layers(self.network, dataset, freeze=True)

        # Train / validation split over dataset indices (validation from the tail).
        total = len(dataset)
        num_validation = int(total * validation_fraction)
        all_indices = list(range(total))
        self.validation_indices = all_indices[total - num_validation :] if num_validation > 0 else []
        train_indices = all_indices[: total - num_validation]

        if sort_dataset:
            keys = [(dataset.trace_type_of(i), dataset.trace_length_of(i), i) for i in train_indices]
            keys.sort()
            ordered = [k[2] for k in keys]
        else:
            ordered = list(train_indices)
        lengths = [dataset.trace_length_of(i) for i in range(total)]
        self.samplers = [
            DistributedTraceSampler(
                ordered,
                minibatch_size=local_minibatch_size,
                num_ranks=num_ranks,
                rank=rank,
                num_buckets=num_buckets,
                lengths=lengths,
                shuffle=True,
                seed=seed,
            )
            for rank in range(num_ranks)
        ]

        # Optimizer over named parameters (names used by the sparse allreduce).
        named = list(self.network.named_parameters())
        if optimizer == "adam":
            base = optim.Adam(named, lr=learning_rate)
        elif optimizer == "sgd":
            base = optim.SGD(named, lr=learning_rate)
        else:
            raise ValueError(f"unknown optimizer {optimizer!r}")
        self.optimizer = optim.LARC(base) if larc else base
        self._parameter_names = [name for name, _ in named]
        self._parameters = {name: param for name, param in named}
        self._parameter_shapes = {name: param.data.shape for name, param in named}

        self.scheduler = None
        if lr_schedule in ("poly1", "poly2"):
            total_steps = total_iterations_hint or max(1, len(self.samplers[0]))
            self.scheduler = optim.PolynomialDecayLR(
                self.optimizer,
                total_steps=total_steps,
                end_lr=end_learning_rate,
                power=1.0 if lr_schedule == "poly1" else 2.0,
            )
        elif lr_schedule not in (None, "none"):
            raise ValueError(f"unknown lr_schedule {lr_schedule!r}")

        self.phase_timer = PhaseTimer()
        self.report = TrainingReport(
            traces_per_iteration=num_ranks * local_minibatch_size,
            num_parameters=self.network.num_parameters(),
        )

    # --------------------------------------------------------------------- run
    def _rank_gradients(self, traces) -> Dict[str, np.ndarray]:
        """Compute one rank's loss and return its named (non-null) gradients."""
        self.network.zero_grad()
        loss = self.network.loss(traces)
        loss.backward()
        gradients = {
            name: param.grad.copy()
            for name, param in self._parameters.items()
            if param.grad is not None
        }
        self._last_rank_loss = float(loss.item())
        return gradients

    def train(
        self,
        num_iterations: int,
        validate_every: Optional[int] = None,
        validation_minibatch: int = 64,
        callback=None,
    ) -> TrainingReport:
        """Run ``num_iterations`` synchronous update steps."""
        iterators = [iter(sampler) for sampler in self.samplers]
        epoch = 0
        for iteration in range(num_iterations):
            iteration_start = time.perf_counter()
            per_rank_gradients: List[Dict[str, np.ndarray]] = []
            rank_losses: List[float] = []
            rank_compute_times: List[float] = []
            read_times: List[float] = []
            minibatch_types: List[str] = []

            for rank in range(self.num_ranks):
                # --- batch read -------------------------------------------------
                read_start = time.perf_counter()
                try:
                    indices = next(iterators[rank])
                except StopIteration:
                    epoch += 1
                    for sampler in self.samplers:
                        sampler.set_epoch(epoch)
                    iterators = [iter(sampler) for sampler in self.samplers]
                    indices = next(iterators[rank])
                traces = self.dataset.get_batch(indices)
                read_times.append(time.perf_counter() - read_start)
                minibatch_types.extend(t.trace_type for t in traces)

                # --- forward + backward ------------------------------------------
                compute_start = time.perf_counter()
                gradients = self._rank_gradients(traces)
                rank_compute_times.append(time.perf_counter() - compute_start)
                per_rank_gradients.append(gradients)
                rank_losses.append(self._last_rank_loss)

            # --- gradient allreduce ----------------------------------------------
            sync_start = time.perf_counter()
            stats = CommunicationStats()
            averaged = average_gradients(
                per_rank_gradients,
                self._parameter_names,
                self._parameter_shapes,
                strategy=self.allreduce_strategy,
                stats=stats,
            )
            sync_time = time.perf_counter() - sync_start

            # --- optimizer step ----------------------------------------------------
            optimizer_start = time.perf_counter()
            for name, param in self._parameters.items():
                param.grad = averaged.get(name)
            self.optimizer.step()
            if self.scheduler is not None:
                self.scheduler.step()
            optimizer_time = time.perf_counter() - optimizer_start

            # --- bookkeeping --------------------------------------------------------
            compute_arr = np.asarray(rank_compute_times)
            read_arr = np.asarray(read_times)
            # Actual iteration time: slowest rank (synchronisation barrier) +
            # shared sync/optimizer work.  Best: perfectly balanced ranks.
            actual_time = float(compute_arr.max() + read_arr.max() + sync_time + optimizer_time)
            best_time = float(compute_arr.mean() + read_arr.mean() + sync_time + optimizer_time)
            self.phase_timer.add("batch_read", float(read_arr.max()))
            self.phase_timer.add("forward_backward", float(compute_arr.max()))
            self.phase_timer.add("sync", sync_time)
            self.phase_timer.add("optimizer", optimizer_time)
            self.phase_timer.end_iteration()

            self.report.train_losses.append(float(np.mean(rank_losses)))
            self.report.learning_rates.append(self.optimizer.lr)
            self.report.iteration_times.append(actual_time)
            self.report.best_iteration_times.append(best_time)
            self.report.effective_minibatch_sizes.append(effective_minibatch_size(minibatch_types))
            self.report.communication.append(stats)

            if validate_every and (iteration + 1) % validate_every == 0 and self.validation_indices:
                self.report.validation_losses.append(self.validate(validation_minibatch))
                self.report.validation_iterations.append(iteration + 1)
            if callback is not None:
                callback(iteration, self.report.train_losses[-1])
            _ = time.perf_counter() - iteration_start
        self.report.phase_means = self.phase_timer.mean_by_phase()
        return self.report

    # -------------------------------------------------------------- validation
    def validate(self, max_traces: int = 64) -> float:
        """Mean Algorithm-1 loss over (a subset of) the held-out validation split."""
        if not self.validation_indices:
            raise RuntimeError("trainer was constructed without a validation split")
        indices = self.validation_indices[:max_traces]
        traces = self.dataset.get_batch(indices)
        from repro.tensor import no_grad

        with no_grad():
            loss = self.network.loss(traces)
        return float(loss.item())
