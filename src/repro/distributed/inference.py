"""Distributed amortized inference: per-rank batched IS, merged at the end.

IC inference is embarrassingly parallel (Section 6.4: the paper's 2M-trace
posterior ran on 24 nodes in 30 minutes): every rank runs an independent
importance-sampling stream against the same trained network and observation,
and the per-rank weighted empiricals are concatenated — importance weights
need no renormalisation across ranks because they share the same target and
proposal densities.

Each rank here drives the batched lockstep engine
(:func:`repro.ppl.inference.batched.batched_importance_sampling`), so the
per-rank hot path is one batched NN step per address per cohort.  Ranks can
execute sequentially (deterministic, the default) or on threads; results are
identical either way because every rank derives its own child random stream
from the master seed.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Tuple

from repro.common.rng import RandomState, get_rng
from repro.ppl.empirical import Empirical
from repro.ppl.inference.batched import batched_importance_sampling_seeded, per_trace_rngs
from repro.ppl.model import RemoteModel

__all__ = ["distributed_importance_sampling", "partition_traces", "shard_jobs"]


def partition_traces(num_traces: int, num_ranks: int) -> List[int]:
    """Split ``num_traces`` across ranks as evenly as possible.

    The first ``num_traces % num_ranks`` ranks receive one extra trace, so
    per-rank sizes may be unequal — :meth:`Empirical.combine` handles that.
    """
    if num_traces <= 0:
        raise ValueError("num_traces must be positive")
    if num_ranks < 1:
        raise ValueError("num_ranks must be >= 1")
    base, extra = divmod(num_traces, num_ranks)
    return [base + (1 if rank < extra else 0) for rank in range(num_ranks)]


def shard_jobs(jobs: List, num_shards: int, min_shard_size: int = 1) -> List[List]:
    """Split a flat job list into contiguous, evenly sized shards.

    The rank-partitioning rule of :func:`partition_traces` applied to an
    explicit work list: used by the serving layer's worker pool to spread one
    flushed micro-batch over idle workers (each shard becomes its own lockstep
    cohort, which is safe because every job carries an independent random
    stream).  ``min_shard_size`` caps the shard count so that tiny batches are
    not splintered below a useful NN batch size.
    """
    if min_shard_size < 1:
        raise ValueError("min_shard_size must be >= 1")
    if not jobs:
        return []
    num_shards = max(1, min(num_shards, len(jobs) // min_shard_size))
    sizes = partition_traces(len(jobs), num_shards)
    shards: List[List] = []
    start = 0
    for size in sizes:
        if size:
            shards.append(jobs[start : start + size])
        start += size
    return shards


def distributed_importance_sampling(
    model,
    observation: Dict[str, Any],
    num_traces: int = 1000,
    num_ranks: int = 1,
    network=None,
    batch_size: int = 64,
    observe_key: Optional[str] = None,
    rng: Optional[RandomState] = None,
    parallel: bool = False,
    backend: Optional[str] = None,
    num_workers: Optional[int] = None,
) -> Empirical:
    """Run batched IS on every rank and merge the per-rank posteriors.

    Parameters
    ----------
    num_ranks:
        Number of independent IS streams; rank r draws its randomness from a
        child stream mixed from ``(base, r)`` via
        :func:`repro.ppl.inference.batched.per_trace_rngs`, so the merged
        result is reproducible and independent of the execution backend.
    parallel:
        Back-compat alias: ``parallel=True`` selects ``backend="thread"``.
    backend:
        ``"sequential"`` (default), ``"thread"`` (ranks on threads — useful
        when the simulator releases the GIL), or ``"process"`` (rank cohorts
        on persistent worker processes via
        :class:`repro.serving.procpool.ProcessCohortPool` — sidesteps the GIL
        entirely for CPU-bound Python simulators, the MPI-sharding shape of
        the source paper).  All three produce the same seeded posterior.
    num_workers:
        Process-backend pool width (default ``num_ranks``).

    Returns
    -------
    Empirical
        The concatenation of all per-rank weighted posteriors, with
        ``engine_stats`` aggregated across ranks.
    """
    if backend is None:
        backend = "thread" if parallel else "sequential"
    if backend not in ("sequential", "thread", "process"):
        raise ValueError(
            f"backend must be 'sequential', 'thread' or 'process', got {backend!r}"
        )
    # A remote simulator multiplexes one PPX transport; concurrent ranks
    # would interleave its request/reply protocol (and the transport cannot
    # cross a process boundary), so serialize them — the per-rank streams
    # make the result identical either way.
    if isinstance(model, RemoteModel):
        backend = "sequential"
    rng = rng or get_rng()
    sizes = partition_traces(num_traces, num_ranks)
    rank_rngs = per_trace_rngs(rng, num_ranks)
    if backend == "process":
        return _process_backend_run(
            model, observation, sizes, rank_rngs, network, batch_size, observe_key, num_workers
        )
    results: List[Optional[Empirical]] = [None] * num_ranks
    errors: List[Optional[BaseException]] = [None] * num_ranks

    def run_rank(rank: int) -> None:
        try:
            if sizes[rank] == 0:
                return
            # The seeded core, not the defaulting entry point: a rank body
            # must consume the stream the parent derived for it, never
            # default one of its own.
            results[rank] = batched_importance_sampling_seeded(
                model,
                observation,
                num_traces=sizes[rank],
                batch_size=batch_size,
                network=network,
                observe_key=observe_key,
                rng=rank_rngs[rank],
            )
        except BaseException as exc:  # noqa: BLE001 - re-raised below
            errors[rank] = exc

    if backend == "thread" and num_ranks > 1:
        threads = [
            threading.Thread(target=run_rank, args=(rank,), name=f"is-rank-{rank}")
            for rank in range(num_ranks)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    else:
        for rank in range(num_ranks):
            run_rank(rank)

    for error in errors:
        if error is not None:
            raise error
    per_rank = [result for result in results if result is not None]
    merged = Empirical.combine(per_rank, name="distributed_importance_sampling_posterior")
    merged.engine_stats = {
        key: sum(result.engine_stats.get(key, 0) for result in per_rank)
        for key in (per_rank[0].engine_stats if per_rank else {})
    }
    merged.per_rank_sizes = [len(result) for result in per_rank]
    return merged


def _process_backend_run(
    model,
    observation: Dict[str, Any],
    sizes: List[int],
    rank_rngs: List[RandomState],
    network,
    batch_size: int,
    observe_key: Optional[str],
    num_workers: Optional[int],
) -> Empirical:
    """Execute every rank's cohorts on a pool of worker processes.

    The randomness is derived rank-by-rank in the parent exactly as the
    sequential path's per-rank :func:`batched_importance_sampling` calls
    derive it (one ``per_trace_rngs`` consumption per rank), so the merged
    posterior is seed-identical to the sequential and thread backends; only
    *where* each cohort executes changes.
    """
    # Imported lazily: repro.serving imports this module (shard_jobs), so a
    # top-level import of the pool would be circular.
    from repro.ppl.inference.batched import (
        TraceJob,
        form_log_weights,
        new_engine_stats,
        resolve_observation_array,
    )
    from repro.serving.procpool import ProcessCohortPool

    num_ranks = len(sizes)
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    observation_array = resolve_observation_array(network, observation, observe_key)
    shards: List[Tuple[int, int, List[TraceJob]]] = []  # (rank, start, jobs)
    for rank in range(num_ranks):
        if sizes[rank] == 0:
            continue
        jobs = [
            TraceJob(rank, observation, observation_array, trace_rng)
            for trace_rng in per_trace_rngs(rank_rngs[rank], sizes[rank])
        ]
        for start in range(0, len(jobs), batch_size):
            shards.append((rank, start, jobs[start : start + batch_size]))

    # Per-rank engine counters, exactly as the sequential/thread backends
    # attribute them (each rank's batched_importance_sampling owns its stats).
    rank_stats: List[Dict[str, int]] = [new_engine_stats() for _ in range(num_ranks)]
    stats_lock = threading.Lock()

    def make_stats_callback(rank: int):
        def merge_stats(shard_stats, _elapsed) -> None:
            with stats_lock:
                for key, value in shard_stats.items():
                    rank_stats[rank][key] = rank_stats[rank].get(key, 0) + value

        return merge_stats

    rank_traces: Dict[int, Dict[int, List]] = {rank: {} for rank in range(num_ranks)}
    errors: List[BaseException] = []
    remaining = threading.Semaphore(0)

    def make_callback(rank: int, start: int):
        def on_done(_entries, traces, error) -> None:
            with stats_lock:
                if error is not None:
                    errors.append(error)
                else:
                    rank_traces[rank][start] = traces
            remaining.release()

        return on_done

    pool = ProcessCohortPool(
        model,
        network,
        num_workers=num_workers if num_workers is not None else max(1, num_ranks),
    )
    pool.start()
    try:
        for rank, start, jobs in shards:
            pool.submit(jobs, make_callback(rank, start), stats_callback=make_stats_callback(rank))
        for _ in shards:
            remaining.acquire()
    finally:
        pool.stop(drain=True)
    if errors:
        raise errors[0]

    per_rank: List[Empirical] = []
    for rank in range(num_ranks):
        if sizes[rank] == 0:
            continue
        traces = [
            trace for start in sorted(rank_traces[rank]) for trace in rank_traces[rank][start]
        ]
        result = Empirical(
            traces,
            form_log_weights(traces, network),
            name="batched_importance_sampling_posterior",
        )
        result.engine_stats = rank_stats[rank]
        per_rank.append(result)
    merged = Empirical.combine(per_rank, name="distributed_importance_sampling_posterior")
    merged.engine_stats = {
        key: sum(result.engine_stats.get(key, 0) for result in per_rank)
        for key in (per_rank[0].engine_stats if per_rank else {})
    }
    merged.per_rank_sizes = [len(result) for result in per_rank]
    return merged
