"""Trace pruning and address dictionaries (Section 4.4.3).

Training data consists of execution traces with a complex hierarchy (variable
sequences of sample objects containing tensors, strings, ...).  The paper
reports two storage optimisations which this module reproduces:

* a **pruning** function that shrinks traces by removing structures that are
  not needed for training (distribution objects are re-derivable from the
  model; only address, value and name survive), and
* an **address dictionary** that replaces the fairly long address strings by
  shorthand integer ids used in serialisation, giving a ~40% memory reduction
  and large disk-space savings.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.trace.sample import Sample
from repro.trace.trace import Trace

__all__ = ["AddressDictionary", "prune_trace", "restore_trace", "pruned_size_bytes"]


class AddressDictionary:
    """Bidirectional mapping between address strings and shorthand ids."""

    def __init__(self) -> None:
        self._to_id: Dict[str, int] = {}
        self._to_address: List[str] = []

    def id_for(self, address: str) -> int:
        if address not in self._to_id:
            self._to_id[address] = len(self._to_address)
            self._to_address.append(address)
        return self._to_id[address]

    def address_for(self, shorthand: int) -> str:
        return self._to_address[shorthand]

    def __len__(self) -> int:
        return len(self._to_address)

    def __contains__(self, address: str) -> bool:
        return address in self._to_id

    def to_dict(self) -> Dict[str, Any]:
        return {"addresses": list(self._to_address)}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "AddressDictionary":
        obj = cls()
        for address in payload["addresses"]:
            obj.id_for(address)
        return obj


def prune_trace(
    trace: Trace,
    address_dictionary: Optional[AddressDictionary] = None,
    keep_observation: bool = True,
) -> Dict[str, Any]:
    """Shrink a trace to the minimal record needed for IC training.

    The pruned record keeps, per latent sample: (shorthand address, value,
    name, controlled flag) plus the prior-distribution summary needed to build
    proposal layers, and the observation tensor.  Log-probs, the simulator
    result and observe distributions are dropped (they are not inputs to the
    NN loss).
    """
    samples: List[Dict[str, Any]] = []
    for sample in trace.samples:
        record: Dict[str, Any] = {
            "value": np.asarray(sample.value).tolist()
            if isinstance(sample.value, np.ndarray)
            else sample.value,
            "name": sample.name,
            "controlled": sample.controlled,
        }
        if address_dictionary is not None:
            record["address_id"] = address_dictionary.id_for(sample.address)
        else:
            record["address"] = sample.address
        if sample.distribution is not None:
            record["distribution"] = sample.distribution.to_dict()
        samples.append(record)

    observation = trace.observation
    if isinstance(observation, np.ndarray):
        observation = observation.tolist()
    pruned: Dict[str, Any] = {"samples": samples}
    if keep_observation:
        pruned["observation"] = observation
    return pruned


def restore_trace(
    pruned: Dict[str, Any], address_dictionary: Optional[AddressDictionary] = None
) -> Trace:
    """Rebuild a :class:`Trace` from its pruned record (inverse of :func:`prune_trace`)."""
    from repro.distributions import distribution_from_dict

    trace = Trace()
    for record in pruned["samples"]:
        if "address_id" in record:
            if address_dictionary is None:
                raise ValueError("pruned record uses an address dictionary; pass it to restore_trace")
            address = address_dictionary.address_for(record["address_id"])
        else:
            address = record["address"]
        value = record["value"]
        if isinstance(value, list):
            value = np.asarray(value)
        distribution = (
            distribution_from_dict(record["distribution"]) if "distribution" in record else None
        )
        log_prob = 0.0
        if distribution is not None:
            try:
                log_prob = float(np.sum(distribution.log_prob(value)))
            except Exception:
                log_prob = 0.0
        trace.add_sample(
            Sample(
                address=address,
                distribution=distribution,
                value=value,
                observed=False,
                log_prob=log_prob,
                controlled=bool(record.get("controlled", True)),
                name=record.get("name"),
            )
        )
    observation = pruned.get("observation")
    if isinstance(observation, list):
        observation = np.asarray(observation)
    trace.observation = observation
    return trace


def pruned_size_bytes(payload: Any) -> int:
    """Rough in-memory size of a pruned record (for the 40%-reduction ablation)."""
    import pickle

    return len(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))
