"""Sample records: one random-number draw (or conditioning point) in a trace."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

import numpy as np

from repro.distributions import Distribution, distribution_from_dict

__all__ = ["Sample"]


@dataclass
class Sample:
    """A single sample or observe statement executed by the simulator.

    Attributes
    ----------
    address:
        The unique label identifying this random-number draw site (Section 1:
        an execution trace is a sequence of addresses, prior distributions and
        sampled values).  Built from the simulator call stack by
        :mod:`repro.ppx.addresses`.
    distribution:
        The prior distribution (for latent samples) or likelihood (for
        observes) attached to this draw.
    value:
        The realised value.
    observed:
        True for ``observe`` statements (conditioning), False for ``sample``.
    log_prob:
        Log density/mass of ``value`` under ``distribution``; cached because
        inference engines score traces repeatedly.
    controlled:
        Whether an inference engine is allowed to replace this value (latent
        samples are controlled; observed values never are).
    name:
        Optional human-readable name (e.g. ``"px"``, ``"decay_channel"``)
        used by posterior summaries and Figure 8-style plots.
    instance:
        Occurrence counter of this address within the trace: rejection-
        sampling loops re-visit the same static address many times, and the
        (address, instance) pair is what uniquely keys a draw.
    """

    address: str
    distribution: Optional[Distribution]
    value: Any
    observed: bool = False
    log_prob: float = 0.0
    controlled: bool = True
    name: Optional[str] = None
    instance: int = 0

    @property
    def address_with_instance(self) -> str:
        """Fully-qualified address including the occurrence counter."""
        return f"{self.address}#{self.instance}"

    def scalar_value(self) -> float:
        """Return the value as a float (for 1-element values)."""
        arr = np.asarray(self.value, dtype=float)
        return float(arr.reshape(-1)[0])

    def to_dict(self, include_distribution: bool = True) -> Dict[str, Any]:
        """Serialise for PPX transfer / on-disk storage."""
        value = self.value
        if isinstance(value, np.ndarray):
            value = value.tolist()
        payload: Dict[str, Any] = {
            "address": self.address,
            "value": value,
            "observed": self.observed,
            "log_prob": float(self.log_prob),
            "controlled": self.controlled,
            "name": self.name,
            "instance": self.instance,
        }
        if include_distribution and self.distribution is not None:
            payload["distribution"] = self.distribution.to_dict()
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Sample":
        dist = payload.get("distribution")
        distribution = distribution_from_dict(dist) if dist is not None else None
        value = payload["value"]
        if isinstance(value, list):
            value = np.asarray(value)
        return cls(
            address=payload["address"],
            distribution=distribution,
            value=value,
            observed=bool(payload.get("observed", False)),
            log_prob=float(payload.get("log_prob", 0.0)),
            controlled=bool(payload.get("controlled", True)),
            name=payload.get("name"),
            instance=int(payload.get("instance", 0)),
        )
