"""Trace types: stable identifiers for address sequences.

Execution traces from the simulator come in many different *trace types* (a
unique sequence of addresses, Section 4.4.1); some types occur thousands of
times in a dataset while others are seen only once.  Training efficiency
depends on grouping traces of the same type into sub-minibatches, and the I/O
pipeline pre-sorts the offline dataset by trace type.  This module provides
the hashing and a registry assigning small integer ids.
"""

from __future__ import annotations

import hashlib
from collections import Counter
from typing import Dict, Iterable, List, Sequence, Tuple

__all__ = ["trace_type_id", "TraceTypeRegistry"]


def trace_type_id(addresses: Sequence[str]) -> str:
    """Return a short stable hash of an address sequence."""
    hasher = hashlib.sha1()
    for address in addresses:
        hasher.update(address.encode("utf-8"))
        hasher.update(b"\x00")
    return hasher.hexdigest()[:16]


class TraceTypeRegistry:
    """Assigns compact integer ids to trace types and tracks their frequency."""

    def __init__(self) -> None:
        self._ids: Dict[str, int] = {}
        self._addresses: Dict[str, Tuple[str, ...]] = {}
        self.counts: Counter = Counter()

    def register(self, addresses: Sequence[str]) -> int:
        """Register (or look up) a trace type; returns its integer id."""
        key = trace_type_id(addresses)
        if key not in self._ids:
            self._ids[key] = len(self._ids)
            self._addresses[key] = tuple(addresses)
        self.counts[key] += 1
        return self._ids[key]

    def id_of(self, addresses: Sequence[str]) -> int:
        key = trace_type_id(addresses)
        return self._ids[key]

    def addresses_of(self, key: str) -> Tuple[str, ...]:
        return self._addresses[key]

    @property
    def num_types(self) -> int:
        return len(self._ids)

    def frequencies(self) -> List[Tuple[str, int]]:
        """Trace types sorted by decreasing frequency."""
        return self.counts.most_common()

    def __contains__(self, addresses: Sequence[str]) -> bool:
        return trace_type_id(addresses) in self._ids

    def __len__(self) -> int:
        return self.num_types
