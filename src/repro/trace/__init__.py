"""Execution-trace infrastructure: samples, traces, trace types and pruning."""

from repro.trace.sample import Sample
from repro.trace.trace import Trace
from repro.trace.trace_type import TraceTypeRegistry, trace_type_id
from repro.trace.pruning import AddressDictionary, prune_trace, pruned_size_bytes, restore_trace

__all__ = [
    "Sample",
    "Trace",
    "TraceTypeRegistry",
    "trace_type_id",
    "AddressDictionary",
    "prune_trace",
    "restore_trace",
    "pruned_size_bytes",
]
