"""Execution traces.

A single sample from an Etalumis inference engine corresponds to a full run of
the simulator (Section 4.2).  :class:`Trace` records that run: the ordered
latent samples, the observed (conditioning) statements, the simulator's return
value, and the log-probability decomposition used by every inference engine.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.trace.sample import Sample

__all__ = ["Trace"]


class Trace:
    """An execution trace of a probabilistic program / simulator."""

    def __init__(self) -> None:
        self.samples: List[Sample] = []          # latent (controlled) draws, in order
        self.observes: List[Sample] = []          # conditioning statements, in order
        self.result: Any = None                   # simulator return value
        self.observation: Any = None              # the y fed to inference (e.g. 3D voxels)
        self._address_counts: Dict[str, int] = {}
        self._trace_type: Optional[str] = None

    # ------------------------------------------------------------------ build
    def add_sample(self, sample: Sample) -> None:
        if sample.observed:
            self.observes.append(sample)
        else:
            count = self._address_counts.get(sample.address, 0)
            sample.instance = count
            self._address_counts[sample.address] = count + 1
            self.samples.append(sample)
            self._trace_type = None

    def freeze(self, result: Any = None, observation: Any = None) -> "Trace":
        self.result = result
        if observation is not None:
            self.observation = observation
        return self

    # ------------------------------------------------------------- properties
    @property
    def length(self) -> int:
        """Number of latent draws (the probabilistic trace length)."""
        return len(self.samples)

    @property
    def addresses(self) -> Tuple[str, ...]:
        return tuple(s.address for s in self.samples)

    @property
    def addresses_with_instances(self) -> Tuple[str, ...]:
        return tuple(s.address_with_instance for s in self.samples)

    @property
    def trace_type(self) -> str:
        """A stable identifier of the address sequence (the 'trace type').

        Traces of the same type share the same sequence of addresses and
        therefore the same dynamic NN structure; minibatches are subdivided
        into same-type sub-minibatches before the forward pass (Algorithm 1).

        The id is hashed once and cached: training touches it for every trace
        of every minibatch (grouping, sorted scheduling, polymorph fast-path),
        and the address sequence is immutable once the trace is built.
        """
        # getattr: traces unpickled from older payloads predate the cache slot
        if getattr(self, "_trace_type", None) is None:
            from repro.trace.trace_type import trace_type_id

            self._trace_type = trace_type_id(self.addresses)
        return self._trace_type

    @property
    def log_prior(self) -> float:
        return float(sum(s.log_prob for s in self.samples))

    @property
    def log_likelihood(self) -> float:
        return float(sum(s.log_prob for s in self.observes))

    @property
    def log_joint(self) -> float:
        return self.log_prior + self.log_likelihood

    # ------------------------------------------------------------ name access
    def named_values(self) -> Dict[str, Any]:
        """Map of sample name -> value for all named latent draws.

        When a rejection loop revisits a named draw, the accepted (last)
        occurrence wins, which is the value the rest of the simulator actually
        used.
        """
        out: Dict[str, Any] = {}
        for sample in self.samples:
            if sample.name is not None:
                out[sample.name] = sample.value
        return out

    def __getitem__(self, name: str) -> Any:
        values = self.named_values()
        if name in values:
            return values[name]
        raise KeyError(f"no named sample {name!r} in trace")

    def get(self, name: str, default: Any = None) -> Any:
        try:
            return self[name]
        except KeyError:
            return default

    def samples_at(self, address: str) -> List[Sample]:
        return [s for s in self.samples if s.address == address]

    # ----------------------------------------------------------- serialisation
    def to_dict(self, include_distributions: bool = True) -> Dict[str, Any]:
        observation = self.observation
        if isinstance(observation, np.ndarray):
            observation = observation.tolist()
        result = self.result
        if isinstance(result, np.ndarray):
            result = result.tolist()
        return {
            "samples": [s.to_dict(include_distributions) for s in self.samples],
            "observes": [s.to_dict(include_distributions) for s in self.observes],
            "result": result,
            "observation": observation,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Trace":
        trace = cls()
        for sample_payload in payload.get("samples", []):
            sample = Sample.from_dict(sample_payload)
            sample.observed = False
            trace.add_sample(sample)
        for observe_payload in payload.get("observes", []):
            sample = Sample.from_dict(observe_payload)
            sample.observed = True
            trace.add_sample(sample)
        observation = payload.get("observation")
        if isinstance(observation, list):
            observation = np.asarray(observation)
        result = payload.get("result")
        if isinstance(result, list):
            result = np.asarray(result)
        trace.result = result
        trace.observation = observation
        return trace

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Trace(length={self.length}, observes={len(self.observes)}, "
            f"log_joint={self.log_joint:.3f})"
        )
