"""Structured timing utilities.

Section 6 of the paper instruments each training phase (minibatch read,
forward, backward, optimize, sync) with timers, records them per rank and per
minibatch, and post-processes them into the "actual vs best" load-imbalance
breakdown of Figure 4.  :class:`PhaseTimer` reproduces that instrumentation.
"""

from __future__ import annotations

import time
from collections import defaultdict
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List

__all__ = ["Timer", "PhaseTimer", "TimingRecord"]


class Timer:
    """A simple cumulative wall-clock timer usable as a context manager."""

    def __init__(self) -> None:
        self.total = 0.0
        self.count = 0
        self._start = None

    def start(self) -> None:
        self._start = time.perf_counter()

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError("Timer.stop() called before start()")
        elapsed = time.perf_counter() - self._start
        self.total += elapsed
        self.count += 1
        self._start = None
        return elapsed

    def __enter__(self) -> "Timer":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def reset(self) -> None:
        self.total = 0.0
        self.count = 0
        self._start = None


@dataclass
class TimingRecord:
    """Per-iteration timing of every named phase, in seconds."""

    phases: Dict[str, float] = field(default_factory=dict)

    def total(self) -> float:
        return float(sum(self.phases.values()))

    def __getitem__(self, key: str) -> float:
        return self.phases[key]


class PhaseTimer:
    """Record named phases across iterations.

    Usage::

        timer = PhaseTimer()
        with timer.phase("forward"):
            ...
        timer.end_iteration()

    After N iterations, :meth:`records` holds N :class:`TimingRecord` objects
    and :meth:`mean_by_phase` aggregates them — exactly the data needed to
    build the Figure 4 stacked bars.
    """

    def __init__(self) -> None:
        self._current: Dict[str, float] = defaultdict(float)
        self.records: List[TimingRecord] = []

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            self._current[name] += time.perf_counter() - start

    def add(self, name: str, seconds: float) -> None:
        """Directly add a measured (or modelled) duration to a phase."""
        self._current[name] += seconds

    def record_event(self, name: str, seconds: float) -> TimingRecord:
        """Record a single measured duration as its own one-phase iteration.

        For event-shaped instrumentation (one timed unit per record — e.g.
        the serving layer's per-cohort execution times) rather than the
        trainer's phase-per-iteration shape.  Unlike :meth:`phase`/:meth:`add`
        it does not touch the accumulating current iteration.
        """
        record = TimingRecord({name: float(seconds)})
        self.records.append(record)
        return record

    def end_iteration(self) -> TimingRecord:
        record = TimingRecord(dict(self._current))
        self.records.append(record)
        self._current = defaultdict(float)
        return record

    def mean_by_phase(self) -> Dict[str, float]:
        out: Dict[str, float] = defaultdict(float)
        if not self.records:
            return dict(out)
        for record in self.records:
            for name, value in record.phases.items():
                out[name] += value
        return {name: value / len(self.records) for name, value in out.items()}

    def total_by_phase(self) -> Dict[str, float]:
        out: Dict[str, float] = defaultdict(float)
        for record in self.records:
            for name, value in record.phases.items():
                out[name] += value
        return dict(out)

    def reset(self) -> None:
        self._current = defaultdict(float)
        self.records = []
