"""Common utilities shared across the Etalumis reproduction.

This package hosts infrastructure that every other subsystem relies on:
deterministic random-number management (:mod:`repro.common.rng`), global
configuration (:mod:`repro.common.config`), lightweight structured timing used
by the training-phase instrumentation (:mod:`repro.common.timing`), and small
generic helpers (:mod:`repro.common.utils`).
"""

from repro.common.rng import RandomState, get_rng, seed_all, temporary_seed
from repro.common.config import Config, get_config, set_config
from repro.common.timing import Timer, PhaseTimer, TimingRecord
from repro.common.utils import (
    ensure_list,
    flatten_dict,
    format_bytes,
    format_seconds,
    prod,
    weighted_quantile,
)

__all__ = [
    "RandomState",
    "get_rng",
    "seed_all",
    "temporary_seed",
    "Config",
    "get_config",
    "set_config",
    "Timer",
    "PhaseTimer",
    "TimingRecord",
    "ensure_list",
    "flatten_dict",
    "format_bytes",
    "format_seconds",
    "prod",
    "weighted_quantile",
]
