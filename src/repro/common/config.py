"""Global configuration for the Etalumis reproduction.

The original system exposes a number of knobs (observation voxel shape, NN
hyperparameters, dataset locations, distributed-training parameters).  This
module centralises defaults in a single dataclass so that examples, tests and
benchmarks can be scaled down or up consistently.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

__all__ = ["Config", "get_config", "set_config"]


@dataclasses.dataclass
class Config:
    """Runtime configuration.

    Attributes
    ----------
    observation_shape:
        Shape ``(D, H, W)`` of the detector voxel observation.  The paper
        uses ``(20, 35, 35)``; the default here is a scaled-down grid that
        preserves 3-dimensionality while keeping CPU training tractable.
    lstm_hidden:
        Hidden size of the LSTM core of the inference network (paper: 512).
    lstm_stacks:
        Number of stacked LSTM layers (paper search: 1-4, chosen 1).
    proposal_mixture_components:
        Number of truncated-normal mixture components per continuous proposal
        (paper search: {5, 10, 25, 50}, chosen 10).
    observation_embedding_dim:
        Output dimension of the 3D-CNN observation embedding (paper: 256).
    address_embedding_dim:
        Learned per-address embedding size (paper: 64).
    sample_embedding_dim:
        Previous-sample embedding size (paper: 4).
    default_dtype:
        Floating-point dtype used by the tensor library.
    """

    observation_shape: Tuple[int, int, int] = (8, 11, 11)
    lstm_hidden: int = 64
    lstm_stacks: int = 1
    proposal_mixture_components: int = 5
    observation_embedding_dim: int = 32
    address_embedding_dim: int = 16
    sample_embedding_dim: int = 4
    default_dtype: str = "float64"
    seed: int = 0
    verbose: bool = False

    def scaled_to_paper(self) -> "Config":
        """Return a copy using the paper's full-size hyperparameters."""
        return dataclasses.replace(
            self,
            observation_shape=(20, 35, 35),
            lstm_hidden=512,
            lstm_stacks=1,
            proposal_mixture_components=10,
            observation_embedding_dim=256,
            address_embedding_dim=64,
            sample_embedding_dim=4,
        )

    def replace(self, **kwargs) -> "Config":
        """Return a copy with the given fields replaced."""
        return dataclasses.replace(self, **kwargs)


_config = Config()


def get_config() -> Config:
    """Return the process-global configuration."""
    return _config


def set_config(config: Optional[Config] = None, **kwargs) -> Config:
    """Replace (or update fields of) the process-global configuration."""
    global _config
    if config is not None:
        _config = config
    if kwargs:
        _config = dataclasses.replace(_config, **kwargs)
    return _config
