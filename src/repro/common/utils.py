"""Small generic helpers used across the code base."""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence

import numpy as np

__all__ = [
    "ensure_list",
    "flatten_dict",
    "format_bytes",
    "format_seconds",
    "prod",
    "weighted_quantile",
]


def prod(values: Iterable[int]) -> int:
    """Integer product of an iterable (empty product is 1)."""
    out = 1
    for v in values:
        out *= int(v)
    return out


def ensure_list(value) -> List:
    """Wrap scalars in a list, pass lists/tuples through as a list."""
    if isinstance(value, (list, tuple)):
        return list(value)
    return [value]


def flatten_dict(d: Dict, prefix: str = "", sep: str = ".") -> Dict[str, object]:
    """Flatten a nested dict into dotted keys (used for config/metric logging)."""
    out: Dict[str, object] = {}
    for key, value in d.items():
        full = f"{prefix}{sep}{key}" if prefix else str(key)
        if isinstance(value, dict):
            out.update(flatten_dict(value, prefix=full, sep=sep))
        else:
            out[full] = value
    return out


def format_bytes(num_bytes: float) -> str:
    """Human-readable byte count (e.g. ``1.7 TB`` for the paper's dataset)."""
    num = float(num_bytes)
    for unit in ("B", "KB", "MB", "GB", "TB", "PB"):
        if abs(num) < 1024.0 or unit == "PB":
            return f"{num:.1f} {unit}"
        num /= 1024.0
    return f"{num:.1f} PB"


def format_seconds(seconds: float) -> str:
    """Human-readable duration."""
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f} ms"
    if seconds < 60:
        return f"{seconds:.2f} s"
    if seconds < 3600:
        return f"{seconds / 60:.1f} min"
    return f"{seconds / 3600:.2f} h"


def weighted_quantile(values: Sequence[float], quantiles, weights=None) -> np.ndarray:
    """Weighted quantiles of a 1-D sample.

    Used by :class:`repro.ppl.empirical.Empirical` to summarise weighted
    posterior samples (importance-sampling / IC output).
    """
    values = np.asarray(values, dtype=float)
    quantiles = np.atleast_1d(np.asarray(quantiles, dtype=float))
    if np.any((quantiles < 0) | (quantiles > 1)):
        raise ValueError("quantiles must be in [0, 1]")
    if weights is None:
        weights = np.ones_like(values)
    weights = np.asarray(weights, dtype=float)
    if values.shape != weights.shape:
        raise ValueError("values and weights must have the same shape")
    if values.size == 0:
        raise ValueError("cannot compute quantiles of an empty sample")
    sorter = np.argsort(values)
    values = values[sorter]
    weights = weights[sorter]
    cum_weights = np.cumsum(weights) - 0.5 * weights
    total = np.sum(weights)
    if total <= 0 or not math.isfinite(total):
        raise ValueError("weights must sum to a positive finite value")
    cum_weights /= total
    return np.interp(quantiles, cum_weights, values)
