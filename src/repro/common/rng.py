"""Deterministic random-number management.

Every stochastic component in the reproduction (simulators, inference engines,
neural-network initialisation, the distributed trainer) draws its randomness
through this module so that experiments are reproducible end to end.  The
paper's workflow depends on reproducibility for comparing trained networks
without ambiguity (synchronous updates were chosen partly for this reason), so
we mirror that discipline here.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Iterator, Optional, Tuple, Union

import numpy as np

__all__ = ["RandomState", "get_rng", "seed_all", "temporary_seed"]


class RandomState:
    """A named wrapper around :class:`numpy.random.Generator`.

    The wrapper exists so that callers can hold a stable handle while the
    underlying generator is re-seeded (e.g. by :func:`seed_all` at the start
    of an experiment, or per-rank in the distributed trainer).
    """

    def __init__(self, seed: Optional[int] = None, name: str = "default") -> None:
        self.name = name
        self._seed = seed
        self._gen = np.random.default_rng(seed)

    @property
    def seed(self) -> Optional[int]:
        """The last seed this state was (re-)initialised with."""
        return self._seed

    @property
    def generator(self) -> np.random.Generator:
        """The underlying numpy generator."""
        return self._gen

    def reseed(self, seed: Optional[int]) -> None:
        """Re-initialise the underlying generator with ``seed``."""
        self._seed = seed
        self._gen = np.random.default_rng(seed)

    def spawn(self, key: Union[int, Tuple[int, ...]]) -> "RandomState":
        """Derive an independent child stream keyed by ``key``.

        Used to give every simulated MPI rank / every worker its own stream
        that is a pure function of (parent seed, key).  The derivation uses a
        :class:`numpy.random.SeedSequence` so that different keys give
        statistically independent streams.

        ``key`` may also be a tuple of ints: each element becomes its own
        SeedSequence entropy word, so composite keys such as ``(base, index)``
        are *mixed* rather than summed — ``(b, i)`` and ``(b + 1, i - 1)``
        yield unrelated streams, which is what
        :func:`repro.ppl.inference.batched.per_trace_rngs` relies on to keep
        concurrent requests' trace streams collision-free.
        """
        base = self._seed if isinstance(self._seed, int) else hash(self._seed) & 0xFFFFFFFF
        if base is None:
            base = 0
        keys: Tuple[int, ...] = key if isinstance(key, tuple) else (key,)
        entropy = [int(base) & 0xFFFFFFFF] + [int(k) & 0xFFFFFFFF for k in keys]
        seq = np.random.SeedSequence(entropy=entropy)
        label = "/".join(str(k) for k in keys)
        child = RandomState(seed=None, name=f"{self.name}/{label}")
        child._seed = (base,) + keys
        child._gen = np.random.default_rng(seq)
        return child

    def snapshot(self) -> dict:
        """Portable snapshot of this stream: the seed identity plus generator state.

        Both halves matter for exact restoration: the bit-generator state
        replays the draw sequence, and ``seed`` is the entropy base
        :meth:`spawn` mixes into child streams — restoring state alone would
        reproduce draws but derive different children.  The snapshot is plain
        ints/strings/tuples, so it JSON-serialises (the capture/replay file
        format relies on this).
        """
        return {"seed": self._seed, "state": self._gen.bit_generator.state}

    @classmethod
    def restore(cls, snapshot: dict, name: str = "restored") -> "RandomState":
        """Rebuild a stream from a :meth:`snapshot` (bit-identical draws).

        The one sanctioned way to resurrect a serialized stream — callers
        (capture replay, retry rewind) must not construct generators
        themselves.  Tolerates JSON round-trips: a list-form seed is a tuple
        seed that went through JSON.
        """
        seed = snapshot["seed"]
        if isinstance(seed, list):
            seed = tuple(seed)
        state = cls(seed=None, name=name)
        state._seed = seed
        state._gen.bit_generator.state = snapshot["state"]
        return state

    # Convenience passthroughs --------------------------------------------------
    def uniform(self, low=0.0, high=1.0, size=None):
        return self._gen.uniform(low, high, size)

    def normal(self, loc=0.0, scale=1.0, size=None):
        return self._gen.normal(loc, scale, size)

    def integers(self, low, high=None, size=None):
        return self._gen.integers(low, high, size)

    def choice(self, a, size=None, replace=True, p=None):
        return self._gen.choice(a, size=size, replace=replace, p=p)

    def permutation(self, x):
        return self._gen.permutation(x)

    def random(self, size=None):
        return self._gen.random(size)

    def standard_normal(self, size=None):
        return self._gen.standard_normal(size)

    def gamma(self, shape, scale=1.0, size=None):
        return self._gen.gamma(shape, scale, size)

    def beta(self, a, b, size=None):
        return self._gen.beta(a, b, size)

    def poisson(self, lam, size=None):
        return self._gen.poisson(lam, size)

    def exponential(self, scale=1.0, size=None):
        return self._gen.exponential(scale, size)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RandomState(name={self.name!r}, seed={self._seed!r})"


_lock = threading.Lock()
_global_state = RandomState(seed=0, name="global")


def get_rng() -> RandomState:
    """Return the process-global random state."""
    return _global_state


def seed_all(seed: int) -> None:
    """Seed the process-global random state (and numpy's legacy global RNG)."""
    with _lock:
        _global_state.reseed(seed)
        np.random.seed(seed % (2**32))


@contextlib.contextmanager
def temporary_seed(seed: int) -> Iterator[RandomState]:
    """Context manager that runs a block under a temporary global seed.

    The previous generator is restored on exit, so test isolation is
    preserved even when library code uses :func:`get_rng` internally.
    """
    with _lock:
        prev_gen = _global_state._gen
        prev_seed = _global_state._seed
        _global_state.reseed(seed)
    try:
        yield _global_state
    finally:
        with _lock:
            _global_state._gen = prev_gen
            _global_state._seed = prev_seed
