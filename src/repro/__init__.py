"""Etalumis reproduction: probabilistic programming for scientific simulators.

Top-level convenience re-exports.  The subpackages are:

* :mod:`repro.common` -- RNG, config, timing utilities.
* :mod:`repro.tensor` -- numpy autograd + NN + optimizers (PyTorch substitute).
* :mod:`repro.distributions` -- probability distributions.
* :mod:`repro.ppx` -- the probabilistic execution protocol (PPX).
* :mod:`repro.trace` -- execution traces, addresses, trace types.
* :mod:`repro.ppl` -- the pyprob-like PPL: models, inference engines, IC network.
* :mod:`repro.data` -- offline trace datasets, sorting, batching, samplers.
* :mod:`repro.distributed` -- simulated-MPI communicator, trainer, performance model.
* :mod:`repro.serving` -- async micro-batching posterior inference service.
* :mod:`repro.simulators` -- mini-Sherpa tau decay, 3D detector, spectroscopy.
"""

__version__ = "1.0.0"

from repro.common import get_config, set_config, seed_all

__all__ = ["__version__", "get_config", "set_config", "seed_all"]
