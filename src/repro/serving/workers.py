"""Cohort worker pool: execute flushed cohorts on parallel workers.

Cohorts are independent importance-sampling streams (every trace job carries
its own derived random stream), so they parallelise exactly like the ranks of
:func:`repro.distributed.inference.distributed_importance_sampling`: no
synchronisation is needed between cohorts, and results are identical to
sequential execution no matter which worker ran what.  The pool is the
serving counterpart of that driver — a fixed set of worker threads pulling
cohorts from a bounded queue, whose fullness is the backpressure signal that
stalls the scheduler (and, transitively, admission control).
"""

from __future__ import annotations

import queue
import threading
from typing import Any, Callable, List, Optional, Sequence

__all__ = ["CohortWorkerPool"]

_SENTINEL = object()


class CohortWorkerPool:
    """Runs ``run_cohort(jobs)`` calls on ``num_workers`` threads.

    ``submit(entries, callback)`` blocks while the dispatch queue is full —
    that is deliberate: the scheduler thread is the only submitter, and its
    blocking pauses cohort building until a worker frees up.  ``callback``
    runs on the worker thread with ``(entries, traces, error)``; exactly one
    of ``traces``/``error`` is set.
    """

    def __init__(
        self,
        run_cohort: Callable[[Sequence[Any]], List[Any]],
        num_workers: int = 2,
        queue_capacity: Optional[int] = None,
    ) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self._run_cohort = run_cohort
        self.num_workers = int(num_workers)
        capacity = queue_capacity if queue_capacity is not None else 2 * self.num_workers
        self._queue: "queue.Queue[Any]" = queue.Queue(maxsize=max(1, capacity))
        self._threads: List[threading.Thread] = []
        self._started = False

    # ----------------------------------------------------------------- lifecycle
    def start(self) -> None:
        if self._started:
            raise RuntimeError("worker pool already started")
        self._started = True
        self._threads = [
            threading.Thread(target=self._run, name=f"cohort-worker-{index}", daemon=True)
            for index in range(self.num_workers)
        ]
        for thread in self._threads:
            thread.start()

    def stop(self, timeout: Optional[float] = None) -> None:
        """Finish queued cohorts, then stop every worker."""
        if not self._started:
            return
        for _ in self._threads:
            self._queue.put(_SENTINEL)
        for thread in self._threads:
            thread.join(timeout=timeout)
        self._started = False

    # ------------------------------------------------------------------ dispatch
    def submit(self, entries: Sequence[Any], callback: Callable[..., None]) -> None:
        """Enqueue one cohort (blocks while the queue is full — backpressure)."""
        self._queue.put((entries, callback))

    def _run(self) -> None:
        while True:
            item = self._queue.get()
            if item is _SENTINEL:
                return
            entries, callback = item
            try:
                traces = self._run_cohort([entry.job for entry in entries])
            except BaseException as error:  # noqa: BLE001 - delivered to requests
                callback(entries, None, error)
            else:
                callback(entries, traces, None)
