"""Cohort worker pool: execute flushed cohorts on parallel workers.

Cohorts are independent importance-sampling streams (every trace job carries
its own derived random stream), so they parallelise exactly like the ranks of
:func:`repro.distributed.inference.distributed_importance_sampling`: no
synchronisation is needed between cohorts, and results are identical to
sequential execution no matter which worker ran what.  The pool is the
serving counterpart of that driver — a fixed set of worker threads pulling
cohorts from a bounded queue, whose fullness is the backpressure signal that
stalls the scheduler (and, transitively, admission control).

Lifecycle: ``stop(drain=True)`` finishes queued cohorts before the workers
exit; ``stop(drain=False)`` fails every queued cohort's callback with a
:class:`repro.serving.request.ServingError` instead, so no submitted future
is ever abandoned at interpreter exit.  The worker threads are daemonic only
as a last-resort safety net — the supported path is an explicit
``shutdown()`` (or the context manager), which the service drives from its
own ``stop``.  The GIL-free counterpart with the same interface is
:class:`repro.serving.procpool.ProcessCohortPool`.
"""

from __future__ import annotations

import queue
import threading
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.serving.request import PoolStopped
from repro.testing import faults

__all__ = ["CohortWorkerPool"]

_SENTINEL = object()


class CohortWorkerPool:
    """Runs ``run_cohort(jobs)`` calls on ``num_workers`` threads.

    ``submit(entries, callback)`` blocks while the dispatch queue is full —
    that is deliberate: the scheduler thread is the only submitter, and its
    blocking pauses cohort building until a worker frees up.  ``callback``
    runs on the worker thread with ``(entries, traces, error)``; exactly one
    of ``traces``/``error`` is set.
    """

    backend = "thread"

    def __init__(
        self,
        run_cohort: Callable[[Sequence[Any]], List[Any]],
        num_workers: int = 2,
        queue_capacity: Optional[int] = None,
    ) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self._run_cohort = run_cohort
        self.num_workers = int(num_workers)
        capacity = queue_capacity if queue_capacity is not None else 2 * self.num_workers
        self._queue: "queue.Queue[Any]" = queue.Queue(maxsize=max(1, capacity))
        self._threads: List[threading.Thread] = []
        self._started = False
        # Counters are bumped from every worker thread concurrently; a bare
        # `+= 1` is a read-modify-write that loses updates under the GIL's
        # bytecode-level interleaving.
        self._stats_lock = threading.Lock()
        self.cohorts_executed = 0
        self.failed_cohorts = 0
        self.cancelled_cohorts = 0

    # ----------------------------------------------------------------- lifecycle
    def start(self) -> "CohortWorkerPool":
        if self._started:
            raise RuntimeError("worker pool already started")
        self._started = True
        self._threads = [
            threading.Thread(target=self._run, name=f"cohort-worker-{index}", daemon=True)
            for index in range(self.num_workers)
        ]
        for thread in self._threads:
            thread.start()
        return self

    def stop(self, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Stop every worker; ``drain`` finishes queued cohorts first.

        With ``drain=False`` queued (not yet running) cohorts are cancelled:
        each one's callback receives a :class:`ServingError` so the owning
        requests resolve instead of hanging on futures forever.
        """
        if not self._started:
            return
        if not drain:
            self._cancel_queued()
        for _ in self._threads:
            self._queue.put(_SENTINEL)
        # drain=False must not block forever behind a stuck in-flight cohort:
        # bound the join so the caller's own cleanup (e.g. the service failing
        # in-flight futures) still runs; the daemon flag reaps the straggler.
        join_timeout = timeout if timeout is not None else (None if drain else 2.0)
        for thread in self._threads:
            thread.join(timeout=join_timeout)
        self._started = False

    def shutdown(self, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Alias of :meth:`stop`, symmetric with the process pool and service."""
        self.stop(drain=drain, timeout=timeout)

    def __enter__(self) -> "CohortWorkerPool":
        if not self._started:
            self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    def _cancel_queued(self) -> None:
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                return
            if item is _SENTINEL:
                continue
            entries, callback = item
            with self._stats_lock:
                self.cancelled_cohorts += 1
            try:
                callback(entries, None, PoolStopped("worker pool stopped"))
            except Exception:
                pass

    # ------------------------------------------------------------------ dispatch
    def submit(self, entries: Sequence[Any], callback: Callable[..., None]) -> None:
        """Enqueue one cohort (blocks while the queue is full — backpressure)."""
        self._queue.put((entries, callback))

    def _run(self) -> None:
        while True:
            item = self._queue.get()
            if item is _SENTINEL:
                return
            entries, callback = item
            try:
                # Chaos hook: straggler delays and injected cohort failures
                # land inside the try, so an injected error takes the exact
                # path a real cohort failure takes.  Free when injection is off.
                faults.perform("workers.cohort", size=len(entries))
                traces = self._run_cohort([entry.job for entry in entries])
            except BaseException as error:  # noqa: BLE001 - delivered to requests
                with self._stats_lock:
                    self.failed_cohorts += 1
                callback(entries, None, error)
            else:
                with self._stats_lock:
                    self.cohorts_executed += 1
                callback(entries, traces, None)

    # --------------------------------------------------------------------- stats
    def stats(self) -> Dict[str, Any]:
        with self._stats_lock:
            return {
                "backend": self.backend,
                "num_workers": self.num_workers,
                "cohorts_executed": self.cohorts_executed,
                "failed_cohorts": self.failed_cohorts,
                "cancelled_cohorts": self.cancelled_cohorts,
            }
