"""Posterior serving: an async micro-batching front end over the lockstep engine.

The paper's end state is *interactive* posterior inference: a trained
inference network answers posterior queries for live simulator observations,
and because amortized inference is importance sampling with NN proposals, the
marginal cost of a query is dominated by network forwards that batch almost
for free.  This package turns that observation into a service:

* :class:`PosteriorService` — the front end: accepts concurrent posterior
  requests, applies admission control (bounded queue, per-request deadlines),
  answers repeated queries from an observation-keyed cache of frozen
  posterior summaries, and single-flights concurrent identical queries onto
  one inference run.
* :class:`MicroBatchScheduler` — coalesces the trace jobs of in-flight
  requests (possibly conditioning on *different* observations) into lockstep
  cohorts under a max-batch/max-latency flush policy.
* :class:`CohortWorkerPool` — executes cohorts on a pool of worker threads,
  sharding flushed batches across idle workers the same way the distributed
  driver shards traces across ranks.
* :class:`ProcessCohortPool` — the same contract on persistent worker
  *processes* (``backend="process"``), which sidesteps the GIL for CPU-bound
  simulators; crashed workers are respawned and their shards requeued.
* :class:`ServingMetrics` — QPS, latency percentiles, cohort occupancy and
  cache hit rate, built on :mod:`repro.common.timing`.

Because every trace job carries a child random stream that is a pure function
of (request rng, trace index) — the same derivation the one-shot engine uses —
a served posterior is identical to a direct
:meth:`repro.ppl.inference.inference_compilation.InferenceCompilation.posterior`
call with the same seed, no matter how requests were packed into cohorts.
"""

from repro.serving.cache import CacheLookup, PosteriorCache, observation_fingerprint
from repro.serving.metrics import ServingMetrics
from repro.serving.procpool import ProcessCohortPool, WorkerCrashed
from repro.serving.request import (
    DeadlineExceeded,
    PosteriorRequest,
    ServedPosterior,
    ServiceOverloaded,
    ServingError,
)
from repro.serving.scheduler import MicroBatchScheduler
from repro.serving.service import PosteriorService
from repro.serving.workers import CohortWorkerPool

__all__ = [
    "CacheLookup",
    "CohortWorkerPool",
    "DeadlineExceeded",
    "MicroBatchScheduler",
    "PosteriorCache",
    "PosteriorRequest",
    "PosteriorService",
    "ProcessCohortPool",
    "ServedPosterior",
    "ServiceOverloaded",
    "ServingError",
    "ServingMetrics",
    "WorkerCrashed",
    "observation_fingerprint",
]
