"""Posterior serving: an async micro-batching front end over the lockstep engine.

The paper's end state is *interactive* posterior inference: a trained
inference network answers posterior queries for live simulator observations,
and because amortized inference is importance sampling with NN proposals, the
marginal cost of a query is dominated by network forwards that batch almost
for free.  This package turns that observation into a service:

* :class:`PosteriorService` — the front end: accepts concurrent posterior
  requests, applies admission control (bounded queue, per-request deadlines),
  answers repeated queries from an observation-keyed cache of frozen
  posterior summaries, and single-flights concurrent identical queries onto
  one inference run.
* :class:`MicroBatchScheduler` — coalesces the trace jobs of in-flight
  requests (possibly conditioning on *different* observations) into lockstep
  cohorts under a max-batch/max-latency flush policy.
* :class:`CohortWorkerPool` — executes cohorts on a pool of worker threads,
  sharding flushed batches across idle workers the same way the distributed
  driver shards traces across ranks.
* :class:`ProcessCohortPool` — the same contract on persistent worker
  *processes* (``backend="process"``), which sidesteps the GIL for CPU-bound
  simulators; crashed workers are respawned and their shards requeued.
* :class:`ServingMetrics` — QPS, latency percentiles, cohort occupancy and
  cache hit rate, built on :mod:`repro.common.timing`.
* :class:`ServiceResilience` — hardened failure semantics: retry with
  jittered exponential backoff under request deadlines, a circuit breaker
  with health probes, stale-cache serving under degradation, and graceful
  process→thread backend demotion after crash storms.
* :class:`RequestCapture` / :func:`replay_capture` — record every admitted
  request (observation, seeds, admission order, model version) and replay a
  capture deterministically: replayed posteriors are bit-identical, so any
  failing chaos seed becomes a reproducible regression case.

Because every trace job carries a child random stream that is a pure function
of (request rng, trace index) — the same derivation the one-shot engine uses —
a served posterior is identical to a direct
:meth:`repro.ppl.inference.inference_compilation.InferenceCompilation.posterior`
call with the same seed, no matter how requests were packed into cohorts.
"""

from repro.serving.cache import CacheLookup, PosteriorCache, observation_fingerprint
from repro.serving.capture import (
    ReplayMismatch,
    ReplayReport,
    RequestCapture,
    load_capture,
    posterior_digest,
    replay_capture,
)
from repro.serving.metrics import ServingMetrics
from repro.serving.procpool import ProcessCohortPool, WorkerCrashed
from repro.serving.request import (
    DeadlineExceeded,
    PoolStopped,
    PosteriorRequest,
    ServedPosterior,
    ServiceOverloaded,
    ServingError,
)
from repro.serving.resilience import (
    BreakerOpen,
    CircuitBreaker,
    RetryPolicy,
    ServiceResilience,
    is_transient,
)
from repro.serving.scheduler import MicroBatchScheduler
from repro.serving.service import PosteriorService
from repro.serving.workers import CohortWorkerPool

__all__ = [
    "BreakerOpen",
    "CacheLookup",
    "CircuitBreaker",
    "CohortWorkerPool",
    "DeadlineExceeded",
    "MicroBatchScheduler",
    "PoolStopped",
    "PosteriorCache",
    "PosteriorRequest",
    "PosteriorService",
    "ProcessCohortPool",
    "ReplayMismatch",
    "ReplayReport",
    "RequestCapture",
    "RetryPolicy",
    "ServedPosterior",
    "ServiceOverloaded",
    "ServiceResilience",
    "ServingError",
    "ServingMetrics",
    "WorkerCrashed",
    "is_transient",
    "load_capture",
    "observation_fingerprint",
    "posterior_digest",
    "replay_capture",
]
