"""Serving-side observability: QPS, latency percentiles, cohort occupancy.

The batching trade-off the scheduler makes (wait a little, batch a lot) is
only tunable if the service exposes what it actually did: how full cohorts
were, how often a cohort mixed several requests, how long clients waited, and
how often the cache answered for free.  :class:`ServingMetrics` aggregates
those counters, and reuses :class:`repro.common.timing.PhaseTimer` to break
scheduler wall time into the same phase-record form the training stack uses
(Figure 4's instrumentation), so one reporting path serves both.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Deque, Dict, Tuple

import numpy as np

from repro.common.timing import PhaseTimer

__all__ = ["ServingMetrics"]


class ServingMetrics:
    """Thread-safe counters and reservoirs for one service instance.

    Latency samples are kept in a bounded deque (most recent ``window``
    completions), so percentiles track current behaviour rather than the
    whole process lifetime; throughput counters are cumulative.
    """

    def __init__(self, window: int = 4096, clock=time.monotonic) -> None:
        self._clock = clock
        self.started_at = clock()
        self._lock = threading.Lock()
        self.submitted = 0
        self.completed = 0
        self.failed = 0
        self.shed_deadline = 0
        self.rejected_overload = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.stale_served = 0
        self.revalidations = 0
        self.traces_executed = 0
        self.cohorts_executed = 0
        # Resilience surface: retry/breaker/demotion activity and the fault
        # harness's injection count (synced from the active FaultPlan by the
        # service's stats()), so a chaos run can assert every fault it asked
        # for is observable here.
        self.retries = 0
        self.breaker_state = "closed"
        self.breaker_opens = 0
        self.demotions = 0
        self.degraded_stale_served = 0
        self.faults_injected = 0
        self._latencies: Deque[float] = deque(maxlen=window)
        #: per-flush (jobs, cohort capacity, distinct requests) records — one
        #: per scheduler flush, before any sharding across workers
        self._cohorts: Deque[Tuple[int, int, int]] = deque(maxlen=window)
        #: scheduler phase breakdown (flush build vs cohort execution)
        self.phases = PhaseTimer()

    # ----------------------------------------------------------------- recording
    def record_submitted(self) -> None:
        with self._lock:
            self.submitted += 1

    def record_rejected(self) -> None:
        with self._lock:
            self.rejected_overload += 1

    def record_shed(self) -> None:
        with self._lock:
            self.shed_deadline += 1

    def record_failed(self) -> None:
        with self._lock:
            self.failed += 1

    def record_cache(self, hit: bool) -> None:
        with self._lock:
            if hit:
                self.cache_hits += 1
            else:
                self.cache_misses += 1

    def record_stale_served(self) -> None:
        """A TTL-expired cache entry was served while a refresh runs behind it."""
        with self._lock:
            self.stale_served += 1

    def record_revalidation(self) -> None:
        """A background refresh of a stale cache entry was started."""
        with self._lock:
            self.revalidations += 1

    def record_retry(self, count: int = 1) -> None:
        """A failed cohort shard was redispatched after backoff."""
        with self._lock:
            self.retries += count

    def record_breaker(self, state: str) -> None:
        """The circuit breaker transitioned; ``open`` transitions are counted."""
        with self._lock:
            self.breaker_state = state
            if state == "open":
                self.breaker_opens += 1

    def record_demotion(self) -> None:
        """The service demoted its execution backend (process -> thread)."""
        with self._lock:
            self.demotions += 1

    def record_degraded_stale(self) -> None:
        """A stale cache entry was served *without* revalidation (breaker open)."""
        with self._lock:
            self.degraded_stale_served += 1

    def set_faults_injected(self, total: int) -> None:
        """Sync the fault harness's cumulative injection count (monotone)."""
        with self._lock:
            self.faults_injected = max(self.faults_injected, int(total))

    def record_completed(self, latency: float, num_traces: int, cached: bool) -> None:
        with self._lock:
            self.completed += 1
            if not cached:
                self.traces_executed += num_traces
            self._latencies.append(float(latency))

    def record_cohort(self, num_jobs: int, capacity: int, num_requests: int) -> None:
        with self._lock:
            self.cohorts_executed += 1
            self._cohorts.append((num_jobs, capacity, num_requests))

    def record_phase(self, name: str, seconds: float) -> None:
        """Thread-safe wrapper around the PhaseTimer (one record per event)."""
        with self._lock:
            self.phases.record_event(name, seconds)

    # ------------------------------------------------------------------ reading
    def snapshot(self) -> Dict[str, Any]:
        """A point-in-time view of every serving signal, as plain floats."""
        with self._lock:
            uptime = max(self._clock() - self.started_at, 1e-9)
            latencies = np.asarray(self._latencies, dtype=float)
            cohorts = list(self._cohorts)
            cache_total = self.cache_hits + self.cache_misses
            snapshot: Dict[str, Any] = {
                "uptime_s": uptime,
                "submitted": self.submitted,
                "completed": self.completed,
                "failed": self.failed,
                "shed_deadline": self.shed_deadline,
                "rejected_overload": self.rejected_overload,
                "qps": self.completed / uptime,
                "traces_executed": self.traces_executed,
                "traces_per_s": self.traces_executed / uptime,
                "cohorts_executed": self.cohorts_executed,
                "cache_hits": self.cache_hits,
                "cache_misses": self.cache_misses,
                "cache_hit_rate": self.cache_hits / cache_total if cache_total else 0.0,
                "stale_served": self.stale_served,
                "revalidations": self.revalidations,
                "retries": self.retries,
                "breaker_state": self.breaker_state,
                "breaker_opens": self.breaker_opens,
                "demotions": self.demotions,
                "degraded_stale_served": self.degraded_stale_served,
                "faults_injected": self.faults_injected,
            }
            if latencies.size:
                snapshot["latency_p50_s"] = float(np.percentile(latencies, 50))
                snapshot["latency_p99_s"] = float(np.percentile(latencies, 99))
                snapshot["latency_mean_s"] = float(latencies.mean())
            else:
                snapshot["latency_p50_s"] = snapshot["latency_p99_s"] = 0.0
                snapshot["latency_mean_s"] = 0.0
            if cohorts:
                occupancy = [jobs / capacity for jobs, capacity, _ in cohorts]
                snapshot["mean_cohort_occupancy"] = float(np.mean(occupancy))
                snapshot["mean_cohort_size"] = float(np.mean([j for j, _, _ in cohorts]))
                snapshot["mixed_cohort_fraction"] = float(
                    np.mean([requests > 1 for _, _, requests in cohorts])
                )
            else:
                snapshot["mean_cohort_occupancy"] = 0.0
                snapshot["mean_cohort_size"] = 0.0
                snapshot["mixed_cohort_fraction"] = 0.0
            snapshot["scheduler_phase_totals_s"] = self.phases.total_by_phase()
        return snapshot
