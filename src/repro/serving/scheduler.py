"""Dynamic micro-batching: coalesce in-flight trace jobs into lockstep cohorts.

The scheduler owns the pending-job queue and a single flush thread.  Incoming
requests are already exploded into per-trace jobs (so a 100-trace request and
ten 10-trace requests exert the same queue pressure), and the flush policy is
the classic serving trade-off:

* **max-batch** — flush immediately once a full cohort's worth of jobs is
  pending; batching beyond the cohort size buys nothing.
* **max-latency** — otherwise flush when the *oldest* pending request has
  waited ``max_latency`` seconds, so a lone request never waits more than the
  configured bound for co-batchable traffic that may never arrive.

Expired requests are shed at flush time (their remaining jobs are dropped and
the request fails with ``DeadlineExceeded`` via the ``on_shed`` callback), so
a deadline costs nothing once it has passed — the cohort slots go to requests
that can still meet theirs.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Deque, Dict, List, NamedTuple, Optional

from collections import deque

from repro.ppl.inference.batched import TraceJob
from repro.serving.request import PosteriorRequest
from repro.testing import faults

__all__ = ["CohortEntry", "MicroBatchScheduler"]


class CohortEntry(NamedTuple):
    """One pending trace job plus the request-side routing information."""

    job: TraceJob
    request: PosteriorRequest
    position: int  # index of this trace within its request (submission order)


class MicroBatchScheduler:
    """Coalesces pending trace jobs into cohorts under a flush policy.

    ``dispatch(entries)`` is invoked on the scheduler thread with each flushed
    cohort and may block — that blocking is the backpressure path: while the
    worker pool's queue is full, no further cohorts are built and pending
    jobs accumulate until admission control starts rejecting.
    """

    def __init__(
        self,
        dispatch: Callable[[List[CohortEntry]], None],
        max_batch: int = 64,
        max_latency: float = 0.005,
        on_shed: Optional[Callable[[PosteriorRequest], None]] = None,
        clock=time.monotonic,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_latency < 0:
            raise ValueError("max_latency must be >= 0")
        self.max_batch = int(max_batch)
        self.max_latency = float(max_latency)
        self._dispatch = dispatch
        self._on_shed = on_shed
        self._clock = clock
        self._pending: Deque[CohortEntry] = deque()
        self._cond = threading.Condition()
        self._stop = False
        self._drain = False
        self._thread: Optional[threading.Thread] = None
        self.num_flushes = 0
        self.num_full_flushes = 0
        self.num_latency_flushes = 0
        self.num_shed_requests = 0

    # ----------------------------------------------------------------- lifecycle
    def start(self) -> None:
        if self._thread is not None:
            raise RuntimeError("scheduler already started")
        self._thread = threading.Thread(target=self._run, name="posterior-scheduler", daemon=True)
        self._thread.start()

    def stop(self, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Stop the flush thread; ``drain`` flushes remaining jobs first."""
        with self._cond:
            self._stop = True
            self._drain = drain
            self._cond.notify_all()
        if self._thread is not None:
            self._thread.join(timeout=timeout)

    # ----------------------------------------------------------------- admission
    def submit(self, entries: List[CohortEntry]) -> None:
        """Append one request's trace jobs (called from client threads)."""
        with self._cond:
            if self._stop:
                raise RuntimeError("scheduler is stopped")
            self._pending.extend(entries)
            self._cond.notify_all()

    @property
    def pending_jobs(self) -> int:
        with self._cond:
            return len(self._pending)

    def cancel_pending(self, error_factory: Callable[[PosteriorRequest], BaseException]) -> int:
        """Drop every pending job, failing each distinct affected request."""
        with self._cond:
            entries = list(self._pending)
            self._pending.clear()
        cancelled = 0
        for entry in entries:
            if entry.request.fail(error_factory(entry.request)):
                cancelled += 1
        return cancelled

    def stats(self) -> Dict[str, Any]:
        return {
            "num_flushes": self.num_flushes,
            "num_full_flushes": self.num_full_flushes,
            "num_latency_flushes": self.num_latency_flushes,
            "num_shed_requests": self.num_shed_requests,
            "pending_jobs": self.pending_jobs,
            "max_batch": self.max_batch,
            "max_latency": self.max_latency,
        }

    # -------------------------------------------------------------- flush thread
    def _run(self) -> None:
        while True:
            with self._cond:
                while not self._pending and not self._stop:
                    self._cond.wait()
                if self._stop and not (self._drain and self._pending):
                    break
                now = self._clock()
                flush_at = self._pending[0].request.enqueued_at + self.max_latency
                if len(self._pending) < self.max_batch and now < flush_at and not self._stop:
                    # Not enough co-batchable work yet: sleep until the oldest
                    # request's latency budget is spent (or more jobs arrive,
                    # which re-notifies and re-evaluates).
                    self._cond.wait(timeout=flush_at - now)
                    continue
                cohort, shed = self._build_cohort(now)
            # Dispatch outside the lock so admissions continue while the
            # worker queue applies backpressure.
            for request in shed:
                self.num_shed_requests += 1
                if self._on_shed is not None:
                    self._on_shed(request)
            if cohort:
                self.num_flushes += 1
                if len(cohort) >= self.max_batch:
                    self.num_full_flushes += 1
                else:
                    self.num_latency_flushes += 1
                try:
                    # Chaos hook: flush-thread stragglers (delay) and injected
                    # dispatch failures (error) share the real failure path
                    # below.  Free when injection is off.
                    faults.perform("scheduler.flush", size=len(cohort))
                    self._dispatch(cohort)
                except BaseException as error:  # noqa: BLE001 - routed to futures
                    # A dispatch failure must not kill the flush thread (that
                    # would strand every future ever submitted) — fail the
                    # cohort's requests and keep serving.
                    for entry in cohort:
                        entry.request.fail(error)

    def _build_cohort(self, now: float):
        """Pop up to ``max_batch`` live jobs; collect newly expired requests."""
        cohort: List[CohortEntry] = []
        shed: List[PosteriorRequest] = []
        shed_ids = set()
        while self._pending and len(cohort) < self.max_batch:
            entry = self._pending.popleft()
            request = entry.request
            if request.failed or request.request_id in shed_ids:
                continue  # already failed/shed: drop its remaining jobs
            if request.expired(now):
                shed.append(request)
                shed_ids.add(request.request_id)
                continue
            cohort.append(entry)
        return cohort, shed
