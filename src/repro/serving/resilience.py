"""Failure recovery for the posterior service: retries, breaker, demotion.

The serving tier's baseline failure semantics are *loud*: a worker crash past
the requeue budget, a stopped pool, or an injected fault fails the affected
requests' futures immediately.  That is the right default for tests and for
batch callers, but a production front end wants the paper's deployment
reality — worker death and slow simulators are steady state — absorbed where
possible.  :class:`ServiceResilience` layers that on, opt-in:

* **Retry with jittered exponential backoff.**  Transient failures (worker
  crashes, pool teardown during a backend swap, injected chaos faults) are
  redispatched after a deterministic-jitter backoff, bounded by a per-request
  attempt budget and by the request's own deadline (a retry that cannot land
  before the deadline is not attempted).  Thread-backend retries restore each
  trace job's generator state from its admission-time snapshot, so a retried
  request still honours the seeded-equivalence contract bit-for-bit.

* **Circuit breaker + health probes.**  Repeated cohort failures open the
  breaker: new uncached submissions fail fast with :class:`BreakerOpen`
  instead of queueing behind a dying pool, cached entries keep being served —
  including *stale* ones, without triggering revalidation traffic — and a
  half-open probe admits one cohort after ``recovery_time`` to test the
  water.  A maintenance thread probes the process pool's worker liveness
  between retries (respawning idle dead workers).

* **Graceful backend demotion.**  After ``demote_after`` breaker openings a
  process-backed service swaps to the thread backend in place (crash storms
  usually mean the *environment* is hostile to subprocesses — fd limits,
  OOM killers, container teardown).  Outstanding shards on the old pool fail
  with the transient :class:`~repro.serving.request.PoolStopped` and are
  retried onto the replacement, so the swap itself sheds nothing.

Everything is surfaced through ``ServingMetrics`` (retries, breaker state and
openings, demotions, degraded stale serves) and ``service.stats()``.
"""

from __future__ import annotations

import hashlib
import heapq
import itertools
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.serving.request import ServingError

__all__ = [
    "BreakerOpen",
    "CircuitBreaker",
    "RetryPolicy",
    "ServiceResilience",
    "is_transient",
]


class BreakerOpen(ServingError):
    """Submission/dispatch refused because the circuit breaker is open.

    Transient: an in-flight cohort refused at dispatch is retried after
    backoff (the breaker may have closed by then); a fresh *submission* is
    failed fast instead — the client can fall back or resubmit later.
    """

    transient = True


def is_transient(error: BaseException) -> bool:
    """True for failures a retry may outrun (crashes, teardown races, chaos)."""
    return bool(getattr(error, "transient", False))


class RetryPolicy:
    """Jittered exponential backoff with a hard attempt budget.

    The jitter is *deterministic*: derived from ``sha256(key, attempt)``
    rather than an RNG, so a chaos run's retry timeline is a pure function of
    the failure sequence (reproducible from the chaos seed) and the serving
    tier never draws from any random stream — drawing would shift the
    seeded-equivalence contract of every request admitted after a failure.
    """

    def __init__(
        self,
        max_attempts: int = 3,
        base_delay: float = 0.02,
        multiplier: float = 2.0,
        max_delay: float = 1.0,
        jitter: float = 0.5,
    ) -> None:
        if max_attempts < 0:
            raise ValueError("max_attempts must be >= 0")
        if base_delay < 0 or max_delay < 0:
            raise ValueError("delays must be >= 0")
        self.max_attempts = int(max_attempts)
        self.base_delay = float(base_delay)
        self.multiplier = float(multiplier)
        self.max_delay = float(max_delay)
        self.jitter = float(jitter)

    def delay(self, attempt: int, key: Any = 0) -> float:
        """Backoff before the ``attempt``-th retry (1-based) of ``key``."""
        raw = self.base_delay * (self.multiplier ** max(attempt - 1, 0))
        raw = min(raw, self.max_delay)
        if self.jitter <= 0.0:
            return raw
        digest = hashlib.sha256(f"{key}:{attempt}".encode()).digest()
        fraction = int.from_bytes(digest[:8], "big") / float(1 << 64)
        # raw * [1 - jitter/2, 1 + jitter/2]: spread, but centred so the mean
        # backoff matches the un-jittered schedule.
        return raw * (1.0 + self.jitter * (fraction - 0.5))


class CircuitBreaker:
    """Classic three-state breaker over cohort execution outcomes.

    ``closed`` → (``failure_threshold`` consecutive failures) → ``open`` →
    (``recovery_time`` elapsed) → ``half-open`` (one probe) → ``closed`` on
    success, back to ``open`` on failure.  :meth:`allow` is the consuming
    check used at dispatch (it claims the half-open probe slot);
    :meth:`blocking` is the non-mutating check used at admission.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        recovery_time: float = 1.0,
        clock=time.monotonic,
        on_transition: Optional[Callable[[str, str], None]] = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if recovery_time < 0:
            raise ValueError("recovery_time must be >= 0")
        self.failure_threshold = int(failure_threshold)
        self.recovery_time = float(recovery_time)
        self._clock = clock
        self.on_transition = on_transition
        self._lock = threading.Lock()
        self._state = "closed"
        self._failures = 0
        self._opened_at = 0.0
        self.opens = 0

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def _transition(self, new: str) -> None:
        old, self._state = self._state, new
        if new == "open":
            self.opens += 1
            self._opened_at = self._clock()
        if self.on_transition is not None and old != new:
            try:
                self.on_transition(old, new)
            except Exception:
                pass  # observability must never take the dispatch path down

    def allow(self) -> bool:
        """May a cohort be dispatched now?  Claims the half-open probe slot."""
        with self._lock:
            if self._state == "closed":
                return True
            if self._state == "open":
                if self._clock() - self._opened_at >= self.recovery_time:
                    self._transition("half-open")
                    return True  # this caller is the probe
                return False
            return False  # half-open: the probe is already out

    def blocking(self) -> bool:
        """Non-mutating admission check: is the breaker refusing new work?"""
        with self._lock:
            return (
                self._state == "open"
                and self._clock() - self._opened_at < self.recovery_time
            )

    def record_failure(self) -> None:
        with self._lock:
            self._failures += 1
            if self._state == "half-open":
                self._transition("open")  # the probe failed: back off again
            elif self._state == "closed" and self._failures >= self.failure_threshold:
                self._transition("open")

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            if self._state != "closed":
                self._transition("closed")

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "state": self._state,
                "consecutive_failures": self._failures,
                "opens": self.opens,
                "failure_threshold": self.failure_threshold,
                "recovery_time": self.recovery_time,
            }


class ServiceResilience:
    """Retry/breaker/demotion runtime bound to one :class:`PosteriorService`.

    Construct it, hand it to ``PosteriorService(resilience=...)``, and the
    service wires it into its dispatch and completion paths.  One maintenance
    thread owns every delayed action (backoff redispatch, pool health probes,
    backend demotion), so recovery work never runs on the procpool collector
    thread — demotion *joins* that collector, which would deadlock.
    """

    def __init__(
        self,
        retry: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        *,
        demote_after: Optional[int] = None,
        probe_interval: float = 0.25,
    ) -> None:
        if demote_after is not None and demote_after < 1:
            raise ValueError("demote_after must be >= 1 (or None to disable)")
        self.retry = retry or RetryPolicy()
        self.breaker = breaker or CircuitBreaker()
        self.demote_after = demote_after
        self.probe_interval = float(probe_interval)
        self._service = None
        self._cond = threading.Condition()
        #: (due time, tiebreak, entries, original error) — heapified by due time
        self._pending: List[Any] = []
        self._tiebreak = itertools.count()
        self._attempts: Dict[int, int] = {}
        self._thread: Optional[threading.Thread] = None
        self._stopped = True
        self._demoted = False
        self.retries_dispatched = 0
        self.retries_abandoned = 0
        self.last_probe: Dict[str, Any] = {}

    # ----------------------------------------------------------------- lifecycle
    def bind(self, service) -> None:
        if self._service is not None and self._service is not service:
            raise RuntimeError("a ServiceResilience instance serves one service")
        self._service = service
        if self.breaker.on_transition is None:
            self.breaker.on_transition = (
                lambda _old, new: service.metrics.record_breaker(new)
            )

    def start(self) -> None:
        if self._service is None:
            raise RuntimeError("resilience is not bound to a service")
        with self._cond:
            if not self._stopped:
                return
            self._stopped = False
        self._thread = threading.Thread(
            target=self._loop, name="serving-resilience", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop the maintenance thread; fail anything still awaiting retry."""
        with self._cond:
            if self._stopped and self._thread is None:
                return
            self._stopped = True
            pending, self._pending = self._pending, []
            self._attempts.clear()
            self._cond.notify_all()
        thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout=5.0)
        for _due, _tb, entries, error in pending:
            self.retries_abandoned += 1
            self._fail_entries(
                entries, ServingError(f"service stopped while retrying: {error}")
            )

    # ------------------------------------------------------------------ degraded
    def degraded(self) -> bool:
        """Is the service refusing fresh work (breaker open, pre-recovery)?"""
        return self.breaker.blocking()

    # ------------------------------------------------------------------ failures
    def handle_failure(
        self, entries: Sequence[Any], error: BaseException
    ) -> List[Any]:
        """Absorb a cohort failure; returns the entries that must fail now.

        Transient failures are grouped by request, charged one attempt, and
        (deadline permitting) scheduled for backoff redispatch.  Everything
        else — non-transient errors, exhausted budgets, requests whose
        deadline the backoff would overrun, failures after stop — is returned
        for the caller to fail through the normal path.
        """
        entries = list(entries)
        if not is_transient(error):
            return entries
        # BreakerOpen must not feed back into the breaker's failure count:
        # it *is* the breaker talking, and counting it would hold the breaker
        # open forever.
        if not isinstance(error, BreakerOpen):
            self.breaker.record_failure()
        by_request: Dict[int, List[Any]] = {}
        for entry in entries:
            by_request.setdefault(entry.request.request_id, []).append(entry)
        leftovers: List[Any] = []
        now = time.monotonic()
        with self._cond:
            if self._stopped:
                return entries
            for request_id, group in by_request.items():
                request = group[0].request
                attempt = self._attempts.get(request_id, 0) + 1
                if attempt > self.retry.max_attempts or request.failed:
                    leftovers.extend(group)
                    continue
                delay = self.retry.delay(attempt, key=request_id)
                if request.deadline is not None and now + delay >= request.deadline:
                    # Deadline awareness: the retry could never land in time.
                    leftovers.extend(group)
                    continue
                self._attempts[request_id] = attempt
                heapq.heappush(
                    self._pending, (now + delay, next(self._tiebreak), group, error)
                )
            self._cond.notify_all()
        return leftovers

    def record_success(self) -> None:
        """A cohort completed: close/reset the breaker."""
        self.breaker.record_success()

    def forget(self, request_id: int) -> None:
        """Drop a resolved request's attempt counter (service ``_finish`` hook)."""
        with self._cond:
            self._attempts.pop(request_id, None)

    # --------------------------------------------------------------- maintenance
    def _loop(self) -> None:
        next_probe = time.monotonic() + self.probe_interval
        while True:
            due: List[Any] = []
            with self._cond:
                if self._stopped:
                    return
                now = time.monotonic()
                while self._pending and self._pending[0][0] <= now:
                    due.append(heapq.heappop(self._pending))
                if not due:
                    head = self._pending[0][0] if self._pending else now + self.probe_interval
                    self._cond.wait(timeout=max(min(head, next_probe) - now, 0.001))
                    if self._stopped:
                        return
            for _due_at, _tb, group, error in due:
                self._redispatch(group, error)
            if time.monotonic() >= next_probe:
                self._probe()
                self._maybe_demote()
                next_probe = time.monotonic() + self.probe_interval

    def _redispatch(self, group: List[Any], original: BaseException) -> None:
        service = self._service
        request = group[0].request
        if request.failed or service is None:
            return
        if not self.breaker.allow():
            refused = BreakerOpen(
                f"circuit breaker open: retry of request {request.request_id} refused"
            )
            leftovers = self.handle_failure(group, refused)
            self._fail_entries(leftovers, refused)
            return
        # Thread-backend cohorts consume the TraceJob generators in place, so
        # a retried shard must rewind each stream to its admission-time state
        # — otherwise the retry would draw from mid-consumed streams and break
        # the seeded-equivalence contract.  (Process shards are pickled copies;
        # rewinding is a no-op for them but costs nothing.)
        snapshots = getattr(request, "rng_snapshots", None)
        if snapshots is not None:
            for entry in group:
                entry.job.rng.generator.bit_generator.state = snapshots[entry.position]
        try:
            service.workers.submit(group, service._on_cohort_done)
        except BaseException as error:  # noqa: BLE001 - rescheduled or failed
            leftovers = self.handle_failure(group, error)
            self._fail_entries(leftovers, error)
            return
        with self._cond:
            self.retries_dispatched += 1
        service.metrics.record_retry()

    def _probe(self) -> None:
        service = self._service
        if service is None:
            return
        probe = getattr(service.workers, "probe", None)
        if probe is None:
            return
        try:
            self.last_probe = probe()
        except Exception:
            pass  # a probe failure must never take the maintenance thread down

    def _maybe_demote(self) -> None:
        service = self._service
        if (
            service is None
            or self._demoted
            or self.demote_after is None
            or self.breaker.opens < self.demote_after
        ):
            return
        demote = getattr(service, "_demote_to_thread_backend", None)
        if demote is None:
            return
        if demote():
            self._demoted = True

    # ------------------------------------------------------------------- helpers
    def _fail_entries(self, entries: Sequence[Any], error: BaseException) -> None:
        service = self._service
        if service is None:
            return
        for entry in entries:
            service._fail_request(entry.request, error)

    # --------------------------------------------------------------------- stats
    def stats(self) -> Dict[str, Any]:
        with self._cond:
            pending = len(self._pending)
            dispatched = self.retries_dispatched
        return {
            "breaker": self.breaker.stats(),
            "retry_max_attempts": self.retry.max_attempts,
            "retries_dispatched": dispatched,
            "retries_pending": pending,
            "retries_abandoned": self.retries_abandoned,
            "demoted": self._demoted,
            "demote_after": self.demote_after,
            "last_probe": dict(self.last_probe),
        }
