"""The posterior inference service: admission, batching, caching, metrics.

:class:`PosteriorService` is the public front end of the serving subsystem.
A request travels:

1. **cache** — a fingerprint of (observation, model id, num_traces) is looked
   up; a hit resolves immediately with a frozen posterior summary.
2. **admission control** — the pending-job queue is bounded; a request whose
   trace jobs would overflow it is rejected with ``ServiceOverloaded`` (shed
   at the door, not buffered into unbounded latency).
3. **micro-batching** — the scheduler coalesces the request's trace jobs with
   every other in-flight request into lockstep cohorts (max-batch/max-latency
   flush policy) and the worker pool executes them, sharding flushed batches
   across idle workers.
4. **completion** — finished traces are reassembled in submission order, the
   importance weights are formed exactly as the one-shot engine forms them,
   the result is frozen into the cache, and the client future resolves.

Seeded equivalence: a request submitted with ``seed=s`` returns the same
posterior as ``engine.posterior(model, observation, num_traces, rng=
RandomState(s))``, because both derive per-trace streams with
:func:`repro.ppl.inference.batched.per_trace_rngs` — cohort packing only
changes which NN forwards were shared, never the samples drawn.  That
derivation mixes ``(base, trace index)`` into each child seed, so two
concurrent requests can never share trace streams — the old ``base + index``
keying collided whenever two requests' random bases landed within
``num_traces`` of each other, which sustained serving traffic turns into a
birthday near-certainty over the 2^31 base space.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from itertools import count
from typing import Any, Dict, List, Optional, Union

from repro.common.rng import RandomState, get_rng
from repro.distributed.inference import shard_jobs
from repro.ppl.empirical import Empirical
from repro.ppl.model import RemoteModel
from repro.ppl.inference.batched import (
    TraceJob,
    form_log_weights,
    merge_engine_stats,
    new_engine_stats,
    per_trace_rngs,
    resolve_observation_array,
    run_mixed_cohort,
)
from repro.ppl.inference.plans import PlanCache
from repro.serving.cache import PosteriorCache, observation_fingerprint
from repro.serving.capture import RequestCapture, posterior_digest
from repro.serving.metrics import ServingMetrics
from repro.serving.procpool import ProcessCohortPool
from repro.serving.request import (
    DeadlineExceeded,
    PosteriorRequest,
    ServedPosterior,
    ServiceOverloaded,
    ServingError,
)
from repro.serving.resilience import BreakerOpen, ServiceResilience
from repro.serving.scheduler import CohortEntry, MicroBatchScheduler
from repro.serving.workers import CohortWorkerPool
from repro.testing import faults

__all__ = ["PosteriorService"]


class PosteriorService:
    """Serve amortized posterior inference over a trained network.

    Parameters
    ----------
    model:
        The generative model (local :class:`repro.ppl.model.Model`; remote
        PPX models are served too, but execute their cohorts sequentially).
    network:
        The trained :class:`repro.ppl.nn.inference_network.InferenceNetwork`
        (or ``None`` to serve likelihood weighting from the prior).
    max_batch:
        Lockstep cohort capacity — the micro-batching ceiling.
    max_latency:
        Seconds a lone request waits for co-batchable traffic before its
        cohort is flushed anyway.
    num_workers / shard_min:
        Worker-pool width; a flushed batch is split over idle workers into
        shards of at least ``shard_min`` jobs (cohorts are independent
        importance-sampling streams, so sharding never changes results).
    backend:
        ``"thread"`` (default) executes cohorts on worker threads in this
        process; ``"process"`` ships them to persistent worker processes
        (:class:`repro.serving.procpool.ProcessCohortPool`), which sidesteps
        the GIL for CPU-bound simulators.  Seeded posteriors are bit-identical
        across backends because every trace job's random stream is derived in
        the parent before dispatch.  Remote PPX models force the thread
        backend (their one transport cannot be shared with a forked worker).
    queue_capacity:
        Bound on pending trace jobs; admission control rejects beyond it.
    cache_capacity / cache_ttl:
        Observation-keyed posterior cache size and staleness bound.  With a
        TTL set, expired entries are served stale while a single-flight
        background refresh recomputes them (stale-while-revalidate); entries
        are dropped outright when the network is retrained in place (the
        service listens for the network's update notifications).
    mp_start_method / max_requeues:
        Process-backend tuning: the multiprocessing start method (default
        ``fork`` where available, so models/networks need not pickle) and how
        many times a crashed worker's shard is requeued before failing loudly.
    use_plans:
        Enable compiled trace-type execution plans
        (:class:`repro.ppl.inference.plans.PlanCache`): hot trace types are
        compiled once into pre-allocated cohort plans and re-served from the
        cache, with dynamic fallback on divergence.  The thread backend shares
        one cache across workers; the process backend gives each worker
        process its own (plans hold numpy scratch that must not cross process
        boundaries).  Planned and dynamic execution are bit-identical, so this
        only changes speed, never posteriors.
    resilience:
        Optional :class:`repro.serving.resilience.ServiceResilience`: retries
        transient cohort failures with jittered backoff (deadline-aware),
        circuit-breaks repeated failures (new uncached submissions then fail
        fast with :class:`~repro.serving.resilience.BreakerOpen` while cached
        — including stale — entries keep being served), health-probes the
        process pool, and optionally demotes process → thread after crash
        storms.  ``None`` (the default) keeps the loud fail-fast semantics.
    capture:
        Optional :class:`repro.serving.capture.RequestCapture` (or a path
        string): every non-internal admitted request is recorded
        (observation, stream snapshot, admission order, network version)
        together with its outcome digest, for deterministic replay via
        :func:`repro.serving.capture.replay_capture`.
    """

    def __init__(
        self,
        model,
        network=None,
        *,
        observe_key: Optional[str] = None,
        max_batch: int = 64,
        max_latency: float = 0.005,
        num_workers: int = 2,
        shard_min: int = 16,
        backend: str = "thread",
        queue_capacity: int = 4096,
        cache_capacity: int = 256,
        cache_ttl: Optional[float] = None,
        default_num_traces: int = 100,
        rng: Optional[RandomState] = None,
        mp_start_method: Optional[str] = None,
        max_requeues: int = 1,
        use_plans: bool = True,
        resilience: Optional[ServiceResilience] = None,
        capture: Optional[Union[str, RequestCapture]] = None,
        name: str = "posterior-service",
    ) -> None:
        if queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        if default_num_traces < 1:
            raise ValueError("default_num_traces must be >= 1")
        if backend not in ("thread", "process"):
            raise ValueError(f"backend must be 'thread' or 'process', got {backend!r}")
        self.model = model
        self.network = network
        self.observe_key = observe_key
        self.name = name
        self.default_num_traces = int(default_num_traces)
        self.queue_capacity = int(queue_capacity)
        self.shard_min = max(1, int(shard_min))
        self._rng = rng or get_rng()
        self.metrics = ServingMetrics()
        self.cache = PosteriorCache(capacity=cache_capacity, ttl=cache_ttl)
        # A remote simulator multiplexes one unsynchronized PPX transport, so
        # its executions must never run on two workers at once — the same
        # constraint the engine applies within a cohort — and the transport
        # cannot be shared with a forked worker process at all.
        if isinstance(model, RemoteModel):
            num_workers = 1
            backend = "thread"
        self.use_plans = bool(use_plans) and network is not None
        # Thread workers share the parent's network object, so one plan cache
        # (its own lock makes it thread-safe) serves every worker; process
        # workers each build their own cache in _worker_main — numpy scratch
        # buffers cannot be shared across the process boundary.
        self._plan_cache = PlanCache() if self.use_plans and backend == "thread" else None
        if backend == "process":
            self.workers = ProcessCohortPool(
                model,
                network,
                num_workers=num_workers,
                start_method=mp_start_method,
                max_requeues=max_requeues,
                on_stats=self._merge_engine_stats,
                use_plans=self.use_plans,
            )
        else:
            self.workers = CohortWorkerPool(self._execute_cohort, num_workers=num_workers)
        self.backend = self.workers.backend
        self.scheduler = MicroBatchScheduler(
            self._dispatch,
            max_batch=max_batch,
            max_latency=max_latency,
            on_shed=self._shed,
        )
        self._engine_stats = new_engine_stats()
        self._stats_lock = threading.Lock()
        self._admission_lock = threading.Lock()
        self._request_ids = count()
        self._inflight: Dict[int, PosteriorRequest] = {}
        #: single-flight registry: cache key -> the in-flight request computing it
        self._inflight_keys: Dict[str, PosteriorRequest] = {}
        self._running = False
        model_name = getattr(model, "name", type(model).__name__)
        self._model_id = f"{model_name}/{observe_key or ''}/{id(network)}"
        #: guards backend demotion: the workers/backend swap must be atomic
        #: with respect to concurrent demotion attempts (dispatch itself only
        #: reads the attribute, which is atomic).
        self._backend_lock = threading.RLock()
        self._resilience = resilience
        if self._resilience is not None:
            self._resilience.bind(self)
        self._capture = RequestCapture(capture) if isinstance(capture, str) else capture

    # ------------------------------------------------------------------ lifecycle
    def start(self) -> "PosteriorService":
        if self._running:
            raise RuntimeError("service already started")
        self.workers.start()
        self.scheduler.start()
        if self.network is not None and hasattr(self.network, "add_update_listener"):
            # In-place retraining makes every cached posterior wrong (not just
            # old): drop this service's entries the moment it happens.
            self.network.add_update_listener(self._on_network_updated)
        if self._capture is not None:
            self._capture.write_header(self._model_id, getattr(self.network, "version", 0))
        self._running = True
        if self._resilience is not None:
            self._resilience.start()
        return self

    def stop(self, drain: bool = True) -> None:
        """Stop serving; ``drain`` finishes admitted requests first.

        With ``drain=False`` pending and in-flight requests resolve with a
        :class:`ServingError`/:class:`ServiceOverloaded` instead of hanging —
        no future submitted before the stop is ever abandoned.
        """
        if not self._running:
            return
        self._running = False
        if self.network is not None and hasattr(self.network, "remove_update_listener"):
            self.network.remove_update_listener(self._on_network_updated)
        self.scheduler.stop(drain=drain)
        if not drain:
            self.scheduler.cancel_pending(
                lambda request: ServiceOverloaded("service stopped before request ran")
            )
        # Resilience goes down before the pool: requests still waiting out a
        # retry backoff fail here (they are failures being retried, not
        # admitted work in the pool — drain does not wait for them), and any
        # cohort failure surfacing during the pool's drain passes straight
        # through to the futures instead of being rescheduled.
        if self._resilience is not None:
            self._resilience.stop()
        self.workers.stop(drain=drain)
        # Anything still unresolved (e.g. stop(drain=False) raced a cohort) is
        # failed rather than left hanging on its future forever.
        for request in list(self._inflight.values()):
            request.fail(ServingError("service stopped"))
        if self._capture is not None:
            self._capture.close()

    def shutdown(self, drain: bool = True) -> None:
        """Alias of :meth:`stop` (the common serving-framework spelling)."""
        self.stop(drain=drain)

    def close(self) -> None:
        """Alias of :meth:`stop` with drain, for ``contextlib.closing`` users."""
        self.stop()

    def __enter__(self) -> "PosteriorService":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------ admission
    def submit(
        self,
        observation: Dict[str, Any],
        num_traces: Optional[int] = None,
        *,
        seed: Optional[int] = None,
        rng: Optional[RandomState] = None,
        deadline: Optional[float] = None,
        use_cache: bool = True,
    ) -> "Future[ServedPosterior]":
        """Admit one posterior request; returns a future of :class:`ServedPosterior`.

        ``seed``/``rng`` pin the request's random stream (for reproducibility
        and the seeded-equivalence guarantee); by default a fresh stream is
        derived from the service rng.  ``deadline`` is seconds from now —
        a request that cannot start in time is shed with ``DeadlineExceeded``.
        With ``use_cache=True`` an identical query may be answered by the
        cache or by coalescing onto an identical in-flight request (both
        ignore ``seed``); ``use_cache=False`` forces a fresh seeded inference
        run (and refreshes the cache entry).
        """
        if not self._running:
            raise ServiceOverloaded("service is not running")
        num_traces = self.default_num_traces if num_traces is None else int(num_traces)
        if num_traces < 1:
            raise ValueError("num_traces must be >= 1")
        if deadline is not None and deadline <= 0:
            raise ValueError("deadline must be positive seconds from now")
        # Validation errors (bad observe key) surface here, not on a worker.
        observation_array = resolve_observation_array(self.network, observation, self.observe_key)

        self.metrics.record_submitted()
        key = observation_fingerprint(observation, self._model_id, num_traces)
        if use_cache:
            # The miss is not recorded yet: it may still be resolved by
            # single-flight coalescing below, in which case both the cache's
            # stats and the serving metrics count it as a hit.  A TTL-expired
            # entry is served *stale* while one background refresh recomputes
            # it — repeated queries never stack up behind a cold recompute.
            found = self.cache.lookup(key, record_miss=False, allow_stale=True)
            if found.value is not None:
                self.metrics.record_cache(True)
                if found.stale:
                    self.metrics.record_stale_served()
                    if self._resilience is not None and self._resilience.degraded():
                        # Degraded mode: keep answering from the stale entry
                        # but skip the refresh — revalidation traffic against
                        # an open breaker would only feed the failure storm.
                        self.metrics.record_degraded_stale()
                    else:
                        self._schedule_revalidation(
                            observation, observation_array, num_traces, key
                        )
                future: "Future[ServedPosterior]" = Future()
                result = ServedPosterior(
                    request_id=next(self._request_ids),
                    posterior=found.value,
                    cached=True,
                    latency=0.0,
                    num_traces=num_traces,
                )
                self.metrics.record_completed(0.0, num_traces, cached=True)
                future.set_result(result)
                return future

        with self._admission_lock:
            if use_cache:
                # Single-flight: an identical query already being computed
                # answers this one too — concurrent clients asking for the
                # same posterior (the thundering-herd case the cache alone
                # cannot catch, because nothing is cached until the first
                # finishes) share one inference run.  Only now is the cache
                # outcome known: coalescing counts as a hit, anything else as
                # the miss the earlier lookup found.
                primary = self._inflight_keys.get(key)
                if primary is not None:
                    return self._attach_to_inflight(primary, num_traces)
                self.cache.record_miss()
                self.metrics.record_cache(False)
            if self._resilience is not None and self._resilience.degraded():
                # Fail fast instead of queueing fresh inference behind a pool
                # the breaker has declared dead; cached (and stale) entries
                # were already served above.
                raise BreakerOpen(
                    "circuit breaker open: no cached posterior for this observation"
                )
            request_rng = rng or (RandomState(seed) if seed is not None else self._rng)
            request = self._admit_locked(
                observation, observation_array, num_traces, key, deadline, request_rng
            )
        return request.future

    def _admit_locked(
        self,
        observation: Dict[str, Any],
        observation_array,
        num_traces: int,
        key: str,
        deadline: Optional[float],
        request_rng: RandomState,
        internal: bool = False,
    ) -> PosteriorRequest:
        """Admit one request (admission lock held): register, derive, enqueue.

        ``internal`` marks service-originated requests (background cache
        refreshes): they are excluded from the client-facing completion,
        latency and failure metrics — `revalidations` tracks them instead.
        """
        if self.scheduler.pending_jobs + num_traces > self.queue_capacity:
            self.metrics.record_rejected()
            raise ServiceOverloaded(
                f"pending queue full ({self.scheduler.pending_jobs} jobs pending, "
                f"capacity {self.queue_capacity})"
            )
        # Chaos hook: synthetic queue-full bursts take the exact rejection
        # path a real overload takes.  Free when injection is off.
        action = faults.fault_point("service.admit", num_traces=num_traces)
        if action is not None and action.kind == "reject":
            self.metrics.record_rejected()
            raise ServiceOverloaded("injected admission rejection (queue-full burst)")
        request_id = next(self._request_ids)
        request = PosteriorRequest(
            request_id,
            observation,
            num_traces,
            deadline=None if deadline is None else time.monotonic() + deadline,
        )
        request.cache_key = key  # type: ignore[attr-defined]
        request.internal = internal  # type: ignore[attr-defined]
        # Snapshot the network generation at admission: if a retrain lands
        # while this request is in flight, its posterior (old/mid-training
        # parameters) must not be written into the freshly invalidated cache.
        request.network_version = getattr(self.network, "version", 0)  # type: ignore[attr-defined]
        # Capture before per_trace_rngs consumes the request stream: the
        # recorded snapshot must be the pre-derivation state replay restores.
        if self._capture is not None and not internal:
            request.capture_order = self._capture.record_admission(  # type: ignore[attr-defined]
                request_id,
                observation,
                num_traces,
                request_rng.snapshot(),
                request.network_version,  # type: ignore[attr-defined]
            )
        self._inflight_keys[key] = request
        # Cleanup rides on the future itself, so *every* resolution path
        # (completion, worker failure, shedding, scheduler-side failure,
        # stop) clears the single-flight registry and in-flight table.
        request.future.add_done_callback(lambda _done, _request=request: self._finish(_request))
        # Identical stream derivation to the one-shot engine: the request
        # rng is consumed exactly as batched_importance_sampling consumes
        # its rng argument (under the admission lock — shared-stream
        # submits must not interleave).
        trace_rngs = per_trace_rngs(request_rng, num_traces)
        if self._resilience is not None:
            # Thread-backend cohorts consume these generators in place, so a
            # retried shard needs each stream's admission-time state to rewind
            # to (see ServiceResilience._redispatch).
            request.rng_snapshots = [  # type: ignore[attr-defined]
                trace_rng.generator.bit_generator.state for trace_rng in trace_rngs
            ]
        entries = [
            CohortEntry(
                TraceJob(request_id, observation, observation_array, trace_rng),
                request,
                position,
            )
            for position, trace_rng in enumerate(trace_rngs)
        ]
        self._inflight[request_id] = request
        try:
            self.scheduler.submit(entries)
        except BaseException as error:  # noqa: BLE001 - resolved + re-raised
            # Resolving the future runs _finish, which clears the just-made
            # registry entries — no half-admitted request can leak.
            request.fail(error)
            raise
        return request

    def _schedule_revalidation(
        self, observation: Dict[str, Any], observation_array, num_traces: int, key: str
    ) -> None:
        """Start one background refresh of a stale cache entry (single-flight).

        Best-effort by design: if an identical request is already in flight it
        will refresh the entry itself, and if the queue is full the refresh is
        simply skipped — the client was already answered from the stale entry,
        so a refresh failure must never surface to it.
        """
        with self._admission_lock:
            if key in self._inflight_keys:
                return
            if self.scheduler.pending_jobs + num_traces > self.queue_capacity:
                return  # shed the refresh, not the client (it has its answer)
            try:
                request = self._admit_locked(
                    observation, observation_array, num_traces, key, None, self._rng,
                    internal=True,
                )
            except BaseException:  # noqa: BLE001 - the client has its answer
                # e.g. stop() raced this submit and the scheduler is gone; a
                # refresh failure must never surface to the stale-served
                # client (_admit_locked already cleaned up after itself).
                return
        self.metrics.record_revalidation()
        # The refresh's own outcome is uninteresting (its _finalize already
        # re-put the cache entry); swallow errors so nothing logs as unraised.
        request.future.add_done_callback(lambda done: done.exception())

    def posterior(
        self,
        observation: Dict[str, Any],
        num_traces: Optional[int] = None,
        *,
        seed: Optional[int] = None,
        rng: Optional[RandomState] = None,
        deadline: Optional[float] = None,
        use_cache: bool = True,
        timeout: Optional[float] = None,
    ) -> ServedPosterior:
        """Blocking convenience wrapper around :meth:`submit`."""
        future = self.submit(
            observation, num_traces, seed=seed, rng=rng, deadline=deadline, use_cache=use_cache
        )
        return future.result(timeout=timeout)

    def _attach_to_inflight(
        self, primary: PosteriorRequest, num_traces: int
    ) -> "Future[ServedPosterior]":
        """Resolve this request from an identical in-flight request's result.

        The attached request shares the primary's outcome — its posterior on
        success, its error if the primary is shed or fails.  Like a cache
        hit, this ignores the submitter's seed; pass ``use_cache=False`` to
        pin seed semantics.
        """
        future: "Future[ServedPosterior]" = Future()
        request_id = next(self._request_ids)
        started = time.monotonic()
        self.cache.record_hit()
        self.metrics.record_cache(True)

        def _resolve(done) -> None:
            error = done.exception()
            if error is not None:
                future.set_exception(error)
                return
            latency = time.monotonic() - started
            self.metrics.record_completed(latency, num_traces, cached=True)
            future.set_result(
                ServedPosterior(
                    request_id=request_id,
                    posterior=done.result().posterior,
                    cached=True,
                    latency=latency,
                    num_traces=num_traces,
                )
            )

        primary.future.add_done_callback(_resolve)
        return future

    # ------------------------------------------------------------------ internals
    def _dispatch(self, entries: List[CohortEntry]) -> None:
        """Scheduler flush hook: shard the batch over workers and enqueue."""
        # Occupancy is a property of the flush against the scheduler's cohort
        # capacity; recording per worker shard would cap the observable
        # occupancy at 1/num_workers even at total saturation.
        requests = {entry.request.request_id for entry in entries}
        self.metrics.record_cohort(len(entries), self.scheduler.max_batch, len(requests))
        shards = shard_jobs(entries, self.workers.num_workers, min_shard_size=self.shard_min)
        for shard in shards:
            if self._resilience is not None and not self._resilience.breaker.allow():
                # allow() is the consuming check: in half-open state exactly
                # one shard per recovery window gets through as the probe.
                self._absorb_failure(
                    shard, BreakerOpen("circuit breaker open: cohort dispatch refused")
                )
                continue
            try:
                self.workers.submit(shard, self._on_cohort_done)
            except BaseException as error:  # noqa: BLE001 - routed to futures
                self._absorb_failure(shard, error)

    def _absorb_failure(self, entries: List[CohortEntry], error: BaseException) -> None:
        """Route a failed shard through resilience (if any), fail the rest."""
        if self._resilience is not None:
            entries = self._resilience.handle_failure(entries, error)
        for entry in entries:
            self._fail_request(entry.request, error)

    def _fail_request(self, request: PosteriorRequest, error: BaseException) -> None:
        """Fail a request; internal (refresh) requests skip the client metric."""
        if request.fail(error) and not getattr(request, "internal", False):
            self.metrics.record_failed()
            self._record_capture_outcome(request, "failed", error=error)

    def _execute_cohort(self, jobs: List[TraceJob]):
        """Thread-worker hook: run one lockstep cohort through the mixed engine."""
        stats = new_engine_stats()
        started = time.perf_counter()
        traces = run_mixed_cohort(
            self.model, jobs, self.network, stats, plan_cache=self._plan_cache
        )
        self._merge_engine_stats(stats, time.perf_counter() - started)
        return traces

    def _merge_engine_stats(self, stats: Dict[str, int], elapsed: float) -> None:
        """Fold one cohort's engine counters (local or worker-process) in.

        ``merge_engine_stats`` tolerates keys this service generation does not
        know about — a worker process running newer engine code must not
        KeyError the collector thread.
        """
        self.metrics.record_phase("cohort_execution", elapsed)
        with self._stats_lock:
            merge_engine_stats(self._engine_stats, stats)

    def _on_cohort_done(self, entries: List[CohortEntry], traces, error) -> None:
        """Worker completion hook: route traces (or the failure) to requests."""
        if error is not None:
            self._absorb_failure(list(entries), error)
            return
        if self._resilience is not None:
            self._resilience.record_success()
        completed = []
        for entry, trace in zip(entries, traces):
            if entry.request.deliver(entry.position, trace):
                completed.append(entry.request)
        for request in completed:
            try:
                self._finalize(request)
            except BaseException as finalize_error:  # noqa: BLE001 - to the future
                # fail() also works on a fully-delivered request, so a crash
                # while *forming* the posterior still reaches the client.
                self._fail_request(request, finalize_error)

    def _finalize(self, request: PosteriorRequest) -> None:
        """All traces delivered: form weights, cache, resolve the future.

        The attached ``engine_stats`` is the service-lifetime cumulative
        snapshot (cohorts are shared across requests, so there is no exact
        per-request attribution) — see :class:`ServedPosterior`.
        """
        traces = request.traces()
        log_weights = form_log_weights(traces, self.network)
        posterior = Empirical(
            traces, log_weights, name=f"{self.name}/request-{request.request_id}"
        )
        with self._stats_lock:
            posterior.engine_stats = dict(self._engine_stats)
        # Do not re-pollute a just-invalidated cache: a request admitted under
        # an older network generation computed its posterior from parameters
        # that no longer exist.  The client still gets the result (it asked
        # while that network was live); only the cache write is skipped.
        if getattr(request, "network_version", 0) == getattr(self.network, "version", 0):
            self.cache.put(
                request.cache_key, posterior.freeze(), model_id=self._model_id  # type: ignore[attr-defined]
            )
        latency = time.monotonic() - request.enqueued_at
        result = ServedPosterior(
            request_id=request.request_id,
            posterior=posterior,
            cached=False,
            latency=latency,
            num_traces=request.num_traces,
        )
        if request.complete(result) and not getattr(request, "internal", False):
            self.metrics.record_completed(latency, request.num_traces, cached=False)
            if self._capture is not None:
                self._record_capture_outcome(
                    request, "completed", digest=posterior_digest(posterior)
                )

    def _record_capture_outcome(
        self,
        request: PosteriorRequest,
        status: str,
        digest: Optional[str] = None,
        error: Optional[BaseException] = None,
    ) -> None:
        if self._capture is None:
            return
        order = getattr(request, "capture_order", None)
        if order is None:
            return
        self._capture.record_outcome(
            order,
            status,
            digest=digest,
            error=None if error is None else f"{type(error).__name__}: {error}",
        )

    def _finish(self, request: PosteriorRequest) -> None:
        """Future done-callback: drop the request from the in-flight tables.

        Runs on whichever thread resolved the future (worker, scheduler,
        client submitting ``stop``), for success and failure alike — so no
        failure path can leave a stale ``_inflight_keys`` entry that would
        feed its old error to every later coalesced query.
        """
        key = getattr(request, "cache_key", None)
        with self._admission_lock:
            # _inflight is written under the admission lock on admit; popping
            # outside it here raced a concurrent admit's dict resize.
            self._inflight.pop(request.request_id, None)
            if key is not None and self._inflight_keys.get(key) is request:
                del self._inflight_keys[key]
        if self._resilience is not None:
            self._resilience.forget(request.request_id)

    def _shed(self, request: PosteriorRequest) -> None:
        """Scheduler shed hook: the request's deadline passed while queued."""
        if request.fail(
            DeadlineExceeded(
                f"request {request.request_id} shed: deadline passed before dispatch"
            )
        ):
            self.metrics.record_shed()
            self._record_capture_outcome(request, "shed")

    # ----------------------------------------------------------------- demotion
    def _demote_to_thread_backend(self) -> bool:
        """Swap the process pool for a thread pool in place (crash-storm exit).

        Called by the resilience maintenance thread after ``demote_after``
        breaker openings: repeated worker-process death usually means the
        environment is hostile to subprocesses (fd limits, OOM killer,
        container teardown), and threads — slower under the GIL but sharing
        the parent's fate — keep the service answering.  Outstanding shards
        on the old pool fail with the transient
        :class:`~repro.serving.request.PoolStopped` and are retried onto the
        replacement, so the swap itself sheds nothing.  Results stay
        bit-identical across the swap: every trace stream is derived in the
        parent at admission, the same reason backends agree in the first
        place.
        """
        with self._backend_lock:
            if self.backend != "process" or not self._running:
                return False
            old = self.workers
            if self.use_plans and self._plan_cache is None:
                # The thread backend shares one plan cache across workers; the
                # process backend kept per-process caches, so build one now.
                self._plan_cache = PlanCache()
            replacement = CohortWorkerPool(self._execute_cohort, num_workers=old.num_workers)
            replacement.start()
            self.workers = replacement
            self.backend = replacement.backend
        self.metrics.record_demotion()
        # Must NOT run on the procpool collector thread (stop joins it); the
        # resilience maintenance thread is the sanctioned caller.
        old.stop(drain=False, timeout=2.0)
        return True

    # -------------------------------------------------------------- invalidation
    def invalidate_cache(self) -> int:
        """Drop this service's cached posteriors (returns how many were dropped).

        Called automatically when the served network is retrained in place
        (via the network's update listeners); exposed for callers that mutate
        the model/network outside the training loop.
        """
        return self.cache.invalidate(self._model_id)

    def _on_network_updated(self) -> None:
        self.invalidate_cache()
        # Compiled plans bake network parameters (address-embedding rows) and
        # a network version into their buffers: drop them all eagerly rather
        # than waiting for the next lease's version check.
        if self._plan_cache is not None:
            self._plan_cache.invalidate()
        # Worker processes hold their own network copy; roll the generation
        # so new cohorts run on the retrained parameters (no-op for threads,
        # which share the parent's network object).
        refresh = getattr(self.workers, "refresh", None)
        if refresh is not None:
            refresh(self.model, self.network)

    # ----------------------------------------------------------------- reporting
    def stats(self) -> Dict[str, Any]:
        """Merged metrics/cache/scheduler/worker/engine snapshot."""
        plan = faults.active()
        if plan is not None:
            # Sync before snapshotting so every parent-side injected fault is
            # observable in the metrics surface the moment stats() is read.
            self.metrics.set_faults_injected(plan.total_fired())
        snapshot = self.metrics.snapshot()
        snapshot["backend"] = self.backend
        snapshot["cache"] = self.cache.stats()
        snapshot["scheduler"] = self.scheduler.stats()
        snapshot["workers"] = self.workers.stats()
        with self._stats_lock:
            snapshot["engine"] = dict(self._engine_stats)
        if self._plan_cache is not None:
            snapshot["plans"] = self._plan_cache.stats()
        if self._resilience is not None:
            snapshot["resilience"] = self._resilience.stats()
        if plan is not None:
            snapshot["faults"] = plan.fired_counts()
        return snapshot
