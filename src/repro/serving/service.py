"""The posterior inference service: admission, batching, caching, metrics.

:class:`PosteriorService` is the public front end of the serving subsystem.
A request travels:

1. **cache** — a fingerprint of (observation, model id, num_traces) is looked
   up; a hit resolves immediately with a frozen posterior summary.
2. **admission control** — the pending-job queue is bounded; a request whose
   trace jobs would overflow it is rejected with ``ServiceOverloaded`` (shed
   at the door, not buffered into unbounded latency).
3. **micro-batching** — the scheduler coalesces the request's trace jobs with
   every other in-flight request into lockstep cohorts (max-batch/max-latency
   flush policy) and the worker pool executes them, sharding flushed batches
   across idle workers.
4. **completion** — finished traces are reassembled in submission order, the
   importance weights are formed exactly as the one-shot engine forms them,
   the result is frozen into the cache, and the client future resolves.

Seeded equivalence: a request submitted with ``seed=s`` returns the same
posterior as ``engine.posterior(model, observation, num_traces, rng=
RandomState(s))``, because both derive per-trace streams with
:func:`repro.ppl.inference.batched.per_trace_rngs` — cohort packing only
changes which NN forwards were shared, never the samples drawn.  That
derivation mixes ``(base, trace index)`` into each child seed, so two
concurrent requests can never share trace streams — the old ``base + index``
keying collided whenever two requests' random bases landed within
``num_traces`` of each other, which sustained serving traffic turns into a
birthday near-certainty over the 2^31 base space.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from itertools import count
from typing import Any, Dict, List, Optional

from repro.common.rng import RandomState, get_rng
from repro.distributed.inference import shard_jobs
from repro.ppl.empirical import Empirical
from repro.ppl.model import RemoteModel
from repro.ppl.inference.batched import (
    TraceJob,
    form_log_weights,
    new_engine_stats,
    per_trace_rngs,
    resolve_observation_array,
    run_mixed_cohort,
)
from repro.serving.cache import PosteriorCache, observation_fingerprint
from repro.serving.metrics import ServingMetrics
from repro.serving.request import (
    DeadlineExceeded,
    PosteriorRequest,
    ServedPosterior,
    ServiceOverloaded,
    ServingError,
)
from repro.serving.scheduler import CohortEntry, MicroBatchScheduler
from repro.serving.workers import CohortWorkerPool

__all__ = ["PosteriorService"]


class PosteriorService:
    """Serve amortized posterior inference over a trained network.

    Parameters
    ----------
    model:
        The generative model (local :class:`repro.ppl.model.Model`; remote
        PPX models are served too, but execute their cohorts sequentially).
    network:
        The trained :class:`repro.ppl.nn.inference_network.InferenceNetwork`
        (or ``None`` to serve likelihood weighting from the prior).
    max_batch:
        Lockstep cohort capacity — the micro-batching ceiling.
    max_latency:
        Seconds a lone request waits for co-batchable traffic before its
        cohort is flushed anyway.
    num_workers / shard_min:
        Worker-pool width; a flushed batch is split over idle workers into
        shards of at least ``shard_min`` jobs (cohorts are independent
        importance-sampling streams, so sharding never changes results).
    queue_capacity:
        Bound on pending trace jobs; admission control rejects beyond it.
    cache_capacity / cache_ttl:
        Observation-keyed posterior cache size and staleness bound.
    """

    def __init__(
        self,
        model,
        network=None,
        *,
        observe_key: Optional[str] = None,
        max_batch: int = 64,
        max_latency: float = 0.005,
        num_workers: int = 2,
        shard_min: int = 16,
        queue_capacity: int = 4096,
        cache_capacity: int = 256,
        cache_ttl: Optional[float] = None,
        default_num_traces: int = 100,
        rng: Optional[RandomState] = None,
        name: str = "posterior-service",
    ) -> None:
        if queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        if default_num_traces < 1:
            raise ValueError("default_num_traces must be >= 1")
        self.model = model
        self.network = network
        self.observe_key = observe_key
        self.name = name
        self.default_num_traces = int(default_num_traces)
        self.queue_capacity = int(queue_capacity)
        self.shard_min = max(1, int(shard_min))
        self._rng = rng or get_rng()
        self.metrics = ServingMetrics()
        self.cache = PosteriorCache(capacity=cache_capacity, ttl=cache_ttl)
        # A remote simulator multiplexes one unsynchronized PPX transport, so
        # its executions must never run on two workers at once — the same
        # constraint the engine applies within a cohort.
        if isinstance(model, RemoteModel):
            num_workers = 1
        self.workers = CohortWorkerPool(self._execute_cohort, num_workers=num_workers)
        self.scheduler = MicroBatchScheduler(
            self._dispatch,
            max_batch=max_batch,
            max_latency=max_latency,
            on_shed=self._shed,
        )
        self._engine_stats = new_engine_stats()
        self._stats_lock = threading.Lock()
        self._admission_lock = threading.Lock()
        self._request_ids = count()
        self._inflight: Dict[int, PosteriorRequest] = {}
        #: single-flight registry: cache key -> the in-flight request computing it
        self._inflight_keys: Dict[str, PosteriorRequest] = {}
        self._running = False
        model_name = getattr(model, "name", type(model).__name__)
        self._model_id = f"{model_name}/{observe_key or ''}/{id(network)}"

    # ------------------------------------------------------------------ lifecycle
    def start(self) -> "PosteriorService":
        if self._running:
            raise RuntimeError("service already started")
        self.workers.start()
        self.scheduler.start()
        self._running = True
        return self

    def stop(self, drain: bool = True) -> None:
        """Stop serving; ``drain`` finishes admitted requests first."""
        if not self._running:
            return
        self._running = False
        self.scheduler.stop(drain=drain)
        if not drain:
            self.scheduler.cancel_pending(
                lambda request: ServiceOverloaded("service stopped before request ran")
            )
        self.workers.stop()
        # Anything still unresolved (e.g. stop(drain=False) raced a cohort) is
        # failed rather than left hanging on its future forever.
        for request in list(self._inflight.values()):
            request.fail(ServingError("service stopped"))

    def __enter__(self) -> "PosteriorService":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------ admission
    def submit(
        self,
        observation: Dict[str, Any],
        num_traces: Optional[int] = None,
        *,
        seed: Optional[int] = None,
        rng: Optional[RandomState] = None,
        deadline: Optional[float] = None,
        use_cache: bool = True,
    ) -> "Future[ServedPosterior]":
        """Admit one posterior request; returns a future of :class:`ServedPosterior`.

        ``seed``/``rng`` pin the request's random stream (for reproducibility
        and the seeded-equivalence guarantee); by default a fresh stream is
        derived from the service rng.  ``deadline`` is seconds from now —
        a request that cannot start in time is shed with ``DeadlineExceeded``.
        With ``use_cache=True`` an identical query may be answered by the
        cache or by coalescing onto an identical in-flight request (both
        ignore ``seed``); ``use_cache=False`` forces a fresh seeded inference
        run (and refreshes the cache entry).
        """
        if not self._running:
            raise ServiceOverloaded("service is not running")
        num_traces = self.default_num_traces if num_traces is None else int(num_traces)
        if num_traces < 1:
            raise ValueError("num_traces must be >= 1")
        if deadline is not None and deadline <= 0:
            raise ValueError("deadline must be positive seconds from now")
        # Validation errors (bad observe key) surface here, not on a worker.
        observation_array = resolve_observation_array(self.network, observation, self.observe_key)

        self.metrics.record_submitted()
        key = observation_fingerprint(observation, self._model_id, num_traces)
        if use_cache:
            # The miss is not recorded yet: it may still be resolved by
            # single-flight coalescing below, in which case both the cache's
            # stats and the serving metrics count it as a hit.
            cached = self.cache.get(key, record_miss=False)
            if cached is not None:
                self.metrics.record_cache(True)
                future: "Future[ServedPosterior]" = Future()
                result = ServedPosterior(
                    request_id=next(self._request_ids),
                    posterior=cached,
                    cached=True,
                    latency=0.0,
                    num_traces=num_traces,
                )
                self.metrics.record_completed(0.0, num_traces, cached=True)
                future.set_result(result)
                return future

        with self._admission_lock:
            if use_cache:
                # Single-flight: an identical query already being computed
                # answers this one too — concurrent clients asking for the
                # same posterior (the thundering-herd case the cache alone
                # cannot catch, because nothing is cached until the first
                # finishes) share one inference run.  Only now is the cache
                # outcome known: coalescing counts as a hit, anything else as
                # the miss the earlier lookup found.
                primary = self._inflight_keys.get(key)
                if primary is not None:
                    return self._attach_to_inflight(primary, num_traces)
                self.cache.record_miss()
                self.metrics.record_cache(False)
            if self.scheduler.pending_jobs + num_traces > self.queue_capacity:
                self.metrics.record_rejected()
                raise ServiceOverloaded(
                    f"pending queue full ({self.scheduler.pending_jobs} jobs pending, "
                    f"capacity {self.queue_capacity})"
                )
            request_id = next(self._request_ids)
            request = PosteriorRequest(
                request_id,
                observation,
                num_traces,
                deadline=None if deadline is None else time.monotonic() + deadline,
            )
            request.cache_key = key  # type: ignore[attr-defined]
            self._inflight_keys[key] = request
            # Cleanup rides on the future itself, so *every* resolution path
            # (completion, worker failure, shedding, scheduler-side failure,
            # stop) clears the single-flight registry and in-flight table.
            request.future.add_done_callback(lambda _done, _request=request: self._finish(_request))
            # Identical stream derivation to the one-shot engine: the request
            # rng is consumed exactly as batched_importance_sampling consumes
            # its rng argument (under the admission lock — shared-stream
            # submits must not interleave).
            request_rng = rng or (RandomState(seed) if seed is not None else self._rng)
            trace_rngs = per_trace_rngs(request_rng, num_traces)
            entries = [
                CohortEntry(
                    TraceJob(request_id, observation, observation_array, trace_rng),
                    request,
                    position,
                )
                for position, trace_rng in enumerate(trace_rngs)
            ]
            self._inflight[request_id] = request
            self.scheduler.submit(entries)
        return request.future

    def posterior(
        self,
        observation: Dict[str, Any],
        num_traces: Optional[int] = None,
        *,
        seed: Optional[int] = None,
        rng: Optional[RandomState] = None,
        deadline: Optional[float] = None,
        use_cache: bool = True,
        timeout: Optional[float] = None,
    ) -> ServedPosterior:
        """Blocking convenience wrapper around :meth:`submit`."""
        future = self.submit(
            observation, num_traces, seed=seed, rng=rng, deadline=deadline, use_cache=use_cache
        )
        return future.result(timeout=timeout)

    def _attach_to_inflight(
        self, primary: PosteriorRequest, num_traces: int
    ) -> "Future[ServedPosterior]":
        """Resolve this request from an identical in-flight request's result.

        The attached request shares the primary's outcome — its posterior on
        success, its error if the primary is shed or fails.  Like a cache
        hit, this ignores the submitter's seed; pass ``use_cache=False`` to
        pin seed semantics.
        """
        future: "Future[ServedPosterior]" = Future()
        request_id = next(self._request_ids)
        started = time.monotonic()
        self.cache.record_hit()
        self.metrics.record_cache(True)

        def _resolve(done) -> None:
            error = done.exception()
            if error is not None:
                future.set_exception(error)
                return
            latency = time.monotonic() - started
            self.metrics.record_completed(latency, num_traces, cached=True)
            future.set_result(
                ServedPosterior(
                    request_id=request_id,
                    posterior=done.result().posterior,
                    cached=True,
                    latency=latency,
                    num_traces=num_traces,
                )
            )

        primary.future.add_done_callback(_resolve)
        return future

    # ------------------------------------------------------------------ internals
    def _dispatch(self, entries: List[CohortEntry]) -> None:
        """Scheduler flush hook: shard the batch over workers and enqueue."""
        # Occupancy is a property of the flush against the scheduler's cohort
        # capacity; recording per worker shard would cap the observable
        # occupancy at 1/num_workers even at total saturation.
        requests = {entry.request.request_id for entry in entries}
        self.metrics.record_cohort(len(entries), self.scheduler.max_batch, len(requests))
        shards = shard_jobs(entries, self.workers.num_workers, min_shard_size=self.shard_min)
        for shard in shards:
            try:
                self.workers.submit(shard, self._on_cohort_done)
            except BaseException as error:  # noqa: BLE001 - routed to futures
                for entry in shard:
                    if entry.request.fail(error):
                        self.metrics.record_failed()

    def _execute_cohort(self, jobs: List[TraceJob]):
        """Worker hook: run one lockstep cohort through the mixed engine."""
        stats = new_engine_stats()
        started = time.perf_counter()
        traces = run_mixed_cohort(self.model, jobs, self.network, stats)
        self.metrics.record_phase("cohort_execution", time.perf_counter() - started)
        with self._stats_lock:
            for stat_name, value in stats.items():
                self._engine_stats[stat_name] += value
        return traces

    def _on_cohort_done(self, entries: List[CohortEntry], traces, error) -> None:
        """Worker completion hook: route traces (or the failure) to requests."""
        if error is not None:
            for entry in entries:
                if entry.request.fail(error):
                    self.metrics.record_failed()
            return
        completed = []
        for entry, trace in zip(entries, traces):
            if entry.request.deliver(entry.position, trace):
                completed.append(entry.request)
        for request in completed:
            try:
                self._finalize(request)
            except BaseException as finalize_error:  # noqa: BLE001 - to the future
                # fail() also works on a fully-delivered request, so a crash
                # while *forming* the posterior still reaches the client.
                if request.fail(finalize_error):
                    self.metrics.record_failed()

    def _finalize(self, request: PosteriorRequest) -> None:
        """All traces delivered: form weights, cache, resolve the future.

        The attached ``engine_stats`` is the service-lifetime cumulative
        snapshot (cohorts are shared across requests, so there is no exact
        per-request attribution) — see :class:`ServedPosterior`.
        """
        traces = request.traces()
        log_weights = form_log_weights(traces, self.network)
        posterior = Empirical(
            traces, log_weights, name=f"{self.name}/request-{request.request_id}"
        )
        with self._stats_lock:
            posterior.engine_stats = dict(self._engine_stats)
        self.cache.put(request.cache_key, posterior.freeze())  # type: ignore[attr-defined]
        latency = time.monotonic() - request.enqueued_at
        result = ServedPosterior(
            request_id=request.request_id,
            posterior=posterior,
            cached=False,
            latency=latency,
            num_traces=request.num_traces,
        )
        if request.complete(result):
            self.metrics.record_completed(latency, request.num_traces, cached=False)

    def _finish(self, request: PosteriorRequest) -> None:
        """Future done-callback: drop the request from the in-flight tables.

        Runs on whichever thread resolved the future (worker, scheduler,
        client submitting ``stop``), for success and failure alike — so no
        failure path can leave a stale ``_inflight_keys`` entry that would
        feed its old error to every later coalesced query.
        """
        self._inflight.pop(request.request_id, None)
        key = getattr(request, "cache_key", None)
        with self._admission_lock:
            if key is not None and self._inflight_keys.get(key) is request:
                del self._inflight_keys[key]

    def _shed(self, request: PosteriorRequest) -> None:
        """Scheduler shed hook: the request's deadline passed while queued."""
        if request.fail(
            DeadlineExceeded(
                f"request {request.request_id} shed: deadline passed before dispatch"
            )
        ):
            self.metrics.record_shed()

    # ----------------------------------------------------------------- reporting
    def stats(self) -> Dict[str, Any]:
        """Merged metrics/cache/scheduler/engine snapshot."""
        snapshot = self.metrics.snapshot()
        snapshot["cache"] = self.cache.stats()
        snapshot["scheduler"] = self.scheduler.stats()
        with self._stats_lock:
            snapshot["engine"] = dict(self._engine_stats)
        return snapshot
