"""Process-based cohort execution: persistent workers that sidestep the GIL.

The thread pool in :mod:`repro.serving.workers` shares one interpreter with
the scheduler, the admission path and every model execution, so once cohort
batching amortized the NN forwards the per-trace cost floor became GIL
contention between worker threads (ROADMAP, PR 3).  This module is the
serving counterpart of the paper's MPI sharding: a fixed set of **worker
processes**, each holding its own copy of the model and trained network,
executing pickled :class:`repro.ppl.inference.batched.TraceJob` shards and
returning finished traces plus engine counters to the parent.

Determinism is inherited, not re-derived: every trace job's random stream is
spawned in the parent (:func:`repro.ppl.inference.batched.per_trace_rngs`)
*before* sharding, and :class:`repro.common.rng.RandomState` round-trips
through pickle with its generator state intact — so a shard produces
bit-identical traces whether it runs on the parent, a worker thread, or a
worker process, and seeded posteriors match the thread backend exactly.

Lifecycle and failure semantics:

* ``start_method`` defaults to ``fork`` where available (model/network are
  inherited for free; closures and lambdas work).  Under ``spawn`` the model
  and network handles are pickled into each worker once at start-up — the
  one-time serialization cost the persistent-worker design exists to amortize.
* A worker that dies mid-shard (OOM kill, segfaulting simulator) is detected
  by the collector's liveness sweep; its in-flight shards are **requeued** to
  surviving workers (the dead worker is respawned to restore capacity) up to
  ``max_requeues`` attempts, after which the shard fails loudly with
  :class:`WorkerCrashed` — never silently dropped.
* ``submit`` blocks once ``max_inflight`` shards are outstanding — the same
  backpressure contract as the thread pool's bounded queue, which stalls the
  scheduler and, transitively, admission control.
"""

from __future__ import annotations

import itertools
import logging
import multiprocessing
import os
import pickle
import queue
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Set

from repro.serving.request import PoolStopped, ServingError
from repro.testing import faults

logger = logging.getLogger(__name__)

__all__ = ["ProcessCohortPool", "WorkerCrashed"]


class WorkerCrashed(ServingError):
    """A worker process died executing a shard and the requeue budget ran out.

    Transient: the resilience layer (when enabled) retries the shard with
    backoff — a crash storm that outlives the retry budget still surfaces.
    """

    transient = True


def _picklable_error(error: BaseException) -> BaseException:
    """Return ``error`` if it survives pickling, else a ServingError stand-in."""
    try:
        pickle.loads(pickle.dumps(error))
        return error
    except Exception:
        return ServingError(f"{type(error).__name__}: {error}")


def _worker_main(
    worker_index: int,
    task_queue,
    result_queue,
    model,
    network,
    use_plans: bool = False,
    fault_plan=None,
) -> None:
    """Loop of one persistent worker process.

    Messages in: ``(shard_id, [TraceJob, ...])`` or ``None`` (shutdown).
    Messages out: ``(shard_id, worker_index, payload, elapsed, error)`` where
    ``payload`` is the pre-pickled ``(traces, stats)`` pair.  Pre-pickling
    matters: ``multiprocessing.Queue`` serialises in a feeder thread, so an
    unpicklable trace would otherwise vanish asynchronously and strand the
    shard; serialising here surfaces the failure as an explicit error reply.

    With ``use_plans`` each worker process holds its own
    :class:`repro.ppl.inference.plans.PlanCache`: plans carry numpy scratch
    buffers that cannot be shared across processes, and ``refresh()`` replaces
    the worker wholesale on retraining, so a per-process cache never outlives
    the network generation it compiled against.  Plan hit/miss/demotion
    counters travel back inside each shard's engine stats.
    """
    from repro.ppl.inference.batched import execute_trace_jobs

    # Under `spawn` the parent's module-global fault plan does not exist in
    # the child; install the pickled copy so child-side fault points fire.
    if fault_plan is not None:
        faults.install(fault_plan)
    plan_cache = None
    if use_plans and network is not None:
        from repro.ppl.inference.plans import PlanCache

        plan_cache = PlanCache()
    while True:
        item = task_queue.get()
        if item is None:
            return
        shard_id, jobs = item
        started = time.perf_counter()
        try:
            action = faults.perform("procpool.worker", worker=worker_index, shard=shard_id)
            if action is not None and action.kind == "crash":
                os._exit(1)  # simulate an OOM kill / segfaulting simulator
            traces, stats = execute_trace_jobs(model, jobs, network, plan_cache=plan_cache)
            payload = pickle.dumps((traces, stats))
        except BaseException as error:  # noqa: BLE001 - shipped to the parent
            result_queue.put((shard_id, worker_index, None, 0.0, _picklable_error(error)))
        else:
            result_queue.put((shard_id, worker_index, payload, time.perf_counter() - started, None))


class _Worker:
    """Parent-side record of one worker process and its in-flight shards."""

    def __init__(self, index: int, process, task_queue) -> None:
        self.index = index
        self.process = process
        self.task_queue = task_queue
        self.outstanding: Set[int] = set()


class _Shard:
    """One submitted cohort shard awaiting its result."""

    def __init__(
        self,
        entries: Sequence[Any],
        callback: Callable[..., None],
        stats_callback: Optional[Callable[[Dict[str, int], float], None]] = None,
    ) -> None:
        self.entries = entries
        self.callback = callback
        self.stats_callback = stats_callback
        self.attempts = 1


class ProcessCohortPool:
    """Execute cohort shards on ``num_workers`` persistent worker processes.

    Drop-in for :class:`repro.serving.workers.CohortWorkerPool` from the
    service's point of view: ``submit(entries, callback)`` (blocking on
    backpressure), ``callback(entries, traces, error)`` on completion, and a
    ``shutdown(drain=...)`` lifecycle.  Unlike the thread pool, the cohort
    body runs in the worker process itself (via
    :func:`repro.ppl.inference.batched.execute_trace_jobs`); engine counters
    travel back with each shard and are surfaced through ``on_stats``.
    """

    backend = "process"

    def __init__(
        self,
        model,
        network=None,
        *,
        num_workers: int = 2,
        start_method: Optional[str] = None,
        max_requeues: int = 1,
        max_inflight: Optional[int] = None,
        health_interval: float = 0.05,
        on_stats: Optional[Callable[[Dict[str, int], float], None]] = None,
        use_plans: bool = False,
    ) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if max_requeues < 0:
            raise ValueError("max_requeues must be >= 0")
        self.model = model
        self.network = network
        self.num_workers = int(num_workers)
        self.max_requeues = int(max_requeues)
        self.max_inflight = int(max_inflight) if max_inflight is not None else 2 * self.num_workers
        self.health_interval = float(health_interval)
        self.on_stats = on_stats
        self.use_plans = bool(use_plans)
        if start_method is None:
            available = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in available else "spawn"
        self._ctx = multiprocessing.get_context(start_method)
        self.start_method = start_method
        self._workers: List[_Worker] = []
        #: previous-generation workers (after refresh()) finishing their shards
        self._retiring: List[_Worker] = []
        self._shards: Dict[int, _Shard] = {}
        self._shard_ids = itertools.count()
        self._result_queue = None
        self._collector: Optional[threading.Thread] = None
        self._slots = threading.BoundedSemaphore(max(1, self.max_inflight))
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        self._started = False
        self._closing = False
        self._stop_collector = threading.Event()
        self.shards_executed = 0
        self.failed_shards = 0
        self.requeues = 0
        self.worker_crashes = 0

    # ----------------------------------------------------------------- lifecycle
    def start(self) -> "ProcessCohortPool":
        if self._started:
            raise RuntimeError("process pool already started")
        # Reset the stop-time state so a stopped pool can be restarted
        # (symmetric with the thread pool).
        self._closing = False
        self._stop_collector = threading.Event()
        self._slots = threading.BoundedSemaphore(max(1, self.max_inflight))
        self._result_queue = self._ctx.Queue()
        with self._lock:
            # A collector from a previous stop() that outlived its join
            # timeout may still touch _workers/_retiring; swap them under
            # the same lock every other writer uses.
            self._retiring = []
            self._workers = [self._spawn_worker(index) for index in range(self.num_workers)]
        self._collector = threading.Thread(
            target=self._collect, name="procpool-collector", daemon=True
        )
        self._collector.start()
        self._started = True
        return self

    def refresh(self, model=None, network=None) -> None:
        """Swap updated model/network handles into the worker generation.

        Worker processes hold their own copy of the model and network, so an
        in-place retraining in the parent would otherwise keep being served
        from the *old* parameters.  ``refresh`` spawns a fresh worker for
        every slot (the new processes copy the current state); old workers
        with shards still in flight finish them on the old parameters — the
        same mid-flight semantics as the thread backend — and exit once
        drained, while idle old workers exit immediately.
        """
        with self._lock:
            if model is not None:
                self.model = model
            if network is not None:
                self.network = network
            if not self._started or self._closing:
                return
            for slot, worker in enumerate(self._workers):
                self._workers[slot] = self._spawn_worker(worker.index)
                if worker.outstanding:
                    self._retiring.append(worker)
                else:
                    self._dismiss_worker(worker)

    def _dismiss_worker(self, worker: _Worker) -> None:
        try:
            worker.task_queue.put(None)
        except Exception:
            worker.process.terminate()

    def _spawn_worker(self, index: int) -> _Worker:
        task_queue = self._ctx.Queue()
        process = self._ctx.Process(
            target=_worker_main,
            args=(
                index,
                task_queue,
                self._result_queue,
                self.model,
                self.network,
                self.use_plans,
                faults.active(),
            ),
            name=f"cohort-proc-{index}",
            daemon=True,
        )
        process.start()
        return _Worker(index, process, task_queue)

    def stop(self, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Stop the pool; ``drain`` waits for in-flight shards to finish first.

        With ``drain=False`` every outstanding shard's callback receives a
        :class:`ServingError` immediately and the worker processes are
        terminated — nothing is left hanging on a future.
        """
        if not self._started:
            return
        self._closing = True
        if drain:
            deadline = None if timeout is None else time.monotonic() + timeout
            with self._idle:
                while self._shards:
                    remaining = None if deadline is None else max(deadline - time.monotonic(), 0.01)
                    if not self._idle.wait(timeout=remaining if remaining is not None else 1.0):
                        if deadline is not None and time.monotonic() >= deadline:
                            break
        else:
            with self._lock:
                dropped = list(self._shards.values())
                self._shards.clear()
                for worker in self._workers:
                    worker.outstanding.clear()
            for shard in dropped:
                self._safe_callback(shard, None, PoolStopped("worker pool stopped"))
                self._release_slot()
        self._stop_collector.set()
        if self._collector is not None:
            self._collector.join(timeout=5.0)
            if self._collector.is_alive():
                # Escalate loudly rather than return with a live collector: a
                # worker wedged mid-result (or a hung queue feeder) is the only
                # thing that can hold the collector past its drain check, so
                # terminate every worker process to break the blockage, log
                # the stuck state for the postmortem, and give the collector
                # one more chance to observe the carnage and exit.
                with self._lock:
                    stuck_shards = sorted(self._shards)
                    workers = list(self._workers) + list(self._retiring)
                logger.error(
                    "procpool collector failed its 5s join at stop "
                    "(outstanding shards: %s; workers alive: %s); "
                    "terminating worker processes",
                    stuck_shards or "none",
                    [w.index for w in workers if w.process.is_alive()] or "none",
                )
                for worker in workers:
                    if worker.process.is_alive():
                        worker.process.terminate()
                self._collector.join(timeout=1.0)
                if self._collector.is_alive():
                    logger.error(
                        "procpool collector is still alive after worker "
                        "termination; abandoning it (daemon thread)"
                    )
        # A submit that was blocked on backpressure may have registered a
        # shard after the cancel sweep above; fail it rather than leave its
        # callback unfired (the no-abandoned-futures guarantee).
        with self._lock:
            leftovers = list(self._shards.values())
            self._shards.clear()
            workers = list(self._workers) + list(self._retiring)
            self._retiring = []
            for worker in workers:
                worker.outstanding.clear()
        for shard in leftovers:
            self._safe_callback(shard, None, PoolStopped("worker pool stopped"))
            self._release_slot()
        for worker in workers:
            try:
                worker.task_queue.put(None)
            except Exception:
                pass
        join_timeout = 2.0 if drain else 0.2
        for worker in workers:
            worker.process.join(timeout=join_timeout)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=1.0)
        self._started = False

    def shutdown(self, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Alias of :meth:`stop` (symmetric with the thread pool and service)."""
        self.stop(drain=drain, timeout=timeout)

    def __enter__(self) -> "ProcessCohortPool":
        if not self._started:
            self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------ dispatch
    def submit(
        self,
        entries: Sequence[Any],
        callback: Callable[..., None],
        stats_callback: Optional[Callable[[Dict[str, int], float], None]] = None,
    ) -> None:
        """Ship one cohort shard to a worker (blocks on backpressure).

        ``entries`` may be scheduler :class:`CohortEntry` rows or bare
        :class:`TraceJob` objects; only the jobs cross the process boundary —
        request routing state (futures, locks) stays in the parent and is
        rejoined by shard id when the result returns.  ``stats_callback``
        overrides the pool-level ``on_stats`` sink for this shard's engine
        counters (the distributed driver uses it for per-rank attribution).
        """
        if not self._started or self._closing:
            raise PoolStopped("process pool is not running")
        self._slots.acquire()
        if not self._started or self._closing:
            # stop() raced the backpressure wait: refuse rather than register
            # a shard no collector will ever resolve.
            self._release_slot()
            raise PoolStopped("process pool is not running")
        jobs = [getattr(entry, "job", entry) for entry in entries]
        with self._lock:
            shard_id = next(self._shard_ids)
            self._shards[shard_id] = _Shard(entries, callback, stats_callback)
            worker = self._pick_worker()
            worker.outstanding.add(shard_id)
        worker.task_queue.put((shard_id, jobs))
        # Chaos hook: "worker crash at shard N" — SIGKILL the worker this
        # shard was just dispatched to.  The collector's liveness sweep then
        # requeues (or fails) its outstanding shards exactly as a real OOM
        # kill would.  Zero-cost when no fault plan is installed.
        action = faults.fault_point("procpool.dispatch", shard=shard_id, worker=worker.index)
        if action is not None and action.kind == "crash":
            try:
                worker.process.kill()
            except Exception:
                pass

    def _pick_worker(self) -> _Worker:
        """Least-loaded live worker (respawning any found dead while idle)."""
        for slot, worker in enumerate(self._workers):
            if not worker.process.is_alive() and not worker.outstanding:
                self.worker_crashes += 1
                self._workers[slot] = self._spawn_worker(worker.index)
        return min(self._workers, key=lambda worker: len(worker.outstanding))

    # ----------------------------------------------------------------- collector
    def _collect(self) -> None:
        """Parent-side loop: join results to shards; sweep for dead workers.

        The collector is the pool's only joiner, so it must survive anything
        the result queue throws at it: a worker SIGKILLed mid-write can
        surface as EOFError/OSError/UnpicklingError rather than Empty, and a
        dead collector would strand every outstanding shard.  Any such error
        is treated like an empty poll — the liveness sweep then requeues the
        affected worker's shards.
        """
        while True:
            try:
                message = self._result_queue.get(timeout=self.health_interval)
            except queue.Empty:
                message = None
            except Exception:
                message = None
            if message is None:
                if self._stop_collector.is_set():
                    with self._lock:
                        done = not self._shards
                    if done:
                        return
                self._check_workers()
                continue
            try:
                self._handle_result(message)
            except Exception:
                pass  # a malformed message must not kill the collector

    def _handle_result(self, message) -> None:
        shard_id, worker_index, payload, elapsed, error = message
        with self._lock:
            shard = self._shards.pop(shard_id, None)
            for worker in self._workers:
                worker.outstanding.discard(shard_id)
            for worker in list(self._retiring):
                worker.outstanding.discard(shard_id)
                if not worker.outstanding:
                    # A refresh()-retired worker has drained: let it exit.
                    self._retiring.remove(worker)
                    self._dismiss_worker(worker)
            if shard is None:
                return  # stale duplicate of a requeued shard: first result won
        if error is not None:
            self.failed_shards += 1
            self._safe_callback(shard, None, error)
        else:
            try:
                traces, stats = pickle.loads(payload)
            except BaseException as unpickle_error:  # noqa: BLE001 - to the callback
                self.failed_shards += 1
                self._safe_callback(shard, None, unpickle_error)
            else:
                self.shards_executed += 1
                stats_sink = shard.stats_callback or self.on_stats
                if stats_sink is not None:
                    try:
                        stats_sink(stats, elapsed)
                    except Exception:
                        pass
                self._safe_callback(shard, traces, None)
        self._release_slot()
        with self._idle:
            if not self._shards:
                self._idle.notify_all()

    def _check_workers(self) -> None:
        """Requeue (or fail) the shards of any worker process found dead."""
        with self._lock:
            crashed = [
                (slot, worker)
                for slot, worker in enumerate(self._workers)
                if worker.outstanding and not worker.process.is_alive()
            ] + [
                (None, worker)
                for worker in self._retiring
                if not worker.process.is_alive()
            ]
        if not crashed:
            return
        # Drain already-delivered results first so a shard the dead worker
        # finished before dying is completed, not re-run.
        while True:
            try:
                self._handle_result(self._result_queue.get_nowait())
            except queue.Empty:
                break
            except Exception:
                break  # torn write from the dying worker: fall through to requeue
        for slot, worker in crashed:
            with self._lock:
                if slot is not None:
                    if self._workers[slot] is not worker:
                        continue
                    self._workers[slot] = self._spawn_worker(worker.index)
                elif worker in self._retiring:
                    self._retiring.remove(worker)
                else:
                    continue
                orphaned = sorted(worker.outstanding)
                worker.outstanding.clear()
                if not orphaned:
                    continue
                self.worker_crashes += 1
                exitcode = worker.process.exitcode
            for shard_id in orphaned:
                self._redispatch(shard_id, exitcode)

    def _redispatch(self, shard_id: int, exitcode) -> None:
        with self._lock:
            shard = self._shards.get(shard_id)
            if shard is None:
                return
            if shard.attempts > self.max_requeues:
                del self._shards[shard_id]
                failed = shard
            else:
                shard.attempts += 1
                self.requeues += 1
                # _pick_worker respawns any idle-dead worker first, so a
                # requeued shard never lands on a queue nobody reads.
                worker = self._pick_worker()
                worker.outstanding.add(shard_id)
                failed = None
        if failed is not None:
            self.failed_shards += 1
            self._safe_callback(
                failed,
                None,
                WorkerCrashed(
                    f"worker process died (exitcode {exitcode}) executing shard "
                    f"{shard_id} and the requeue budget ({self.max_requeues}) is spent"
                ),
            )
            self._release_slot()
            with self._idle:
                if not self._shards:
                    self._idle.notify_all()
        else:
            jobs = [getattr(entry, "job", entry) for entry in shard.entries]
            worker.task_queue.put((shard_id, jobs))

    # -------------------------------------------------------------- health probe
    def probe(self) -> Dict[str, int]:
        """Liveness sweep for the resilience maintenance thread.

        Counts live/dead workers and respawns any worker found dead while
        *idle* (the collector's own sweep only watches workers with shards
        outstanding, so an idle crash would otherwise go unnoticed until the
        next dispatch picks the corpse).  Busy dead workers are left to the
        collector, which owns the requeue path.
        """
        live = dead = respawned = 0
        with self._lock:
            if not self._started or self._closing:
                return {"live": 0, "dead": 0, "respawned": 0}
            for slot, worker in enumerate(self._workers):
                if worker.process.is_alive():
                    live += 1
                    continue
                dead += 1
                if not worker.outstanding:
                    self.worker_crashes += 1
                    self._workers[slot] = self._spawn_worker(worker.index)
                    respawned += 1
        return {"live": live, "dead": dead, "respawned": respawned}

    # ------------------------------------------------------------------- helpers
    def _safe_callback(self, shard: _Shard, traces, error) -> None:
        try:
            shard.callback(shard.entries, traces, error)
        except Exception:
            pass  # a callback crash must not kill the collector thread

    def _release_slot(self) -> None:
        try:
            self._slots.release()
        except ValueError:
            pass

    # --------------------------------------------------------------------- stats
    def stats(self) -> Dict[str, Any]:
        with self._lock:
            inflight = len(self._shards)
        return {
            "backend": self.backend,
            "num_workers": self.num_workers,
            "start_method": self.start_method,
            "shards_executed": self.shards_executed,
            "failed_shards": self.failed_shards,
            "requeues": self.requeues,
            "worker_crashes": self.worker_crashes,
            "inflight_shards": inflight,
        }
