"""Observation-keyed posterior cache (LRU with TTL and stale-while-revalidate).

Amortized inference makes repeated queries for the same observation pure
waste: the trained network is deterministic given (observation, num_traces,
seed policy), so the service memoizes finished posteriors under a fingerprint
of the observation tensor, the model identity and the trace budget.  Entries
are :class:`repro.ppl.empirical.FrozenPosterior` summaries — trace-free and
immutable, so one entry can be handed to any number of concurrent clients and
kept resident for the TTL without pinning simulator traces in memory.

Staleness has two distinct failure modes with two distinct answers:

* **The network was retrained in place** — the cached posteriors answer for a
  proposal distribution that no longer exists.  :meth:`invalidate` (optionally
  scoped to one ``model_id``) drops those entries immediately; the service
  wires it to the network's update notifications.
* **The TTL elapsed** — the entry is merely old, not wrong.  Instead of a hard
  miss (every client behind a cold entry pays full inference latency at once),
  :meth:`get` with ``allow_stale=True`` keeps serving the expired summary and
  reports it as stale, so the service can refresh it once in the background
  (single-flight) while clients keep getting sub-millisecond answers.
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import OrderedDict
from typing import Any, Dict, NamedTuple, Optional, Tuple

import numpy as np

from repro.ppl.empirical import FrozenPosterior
from repro.testing import faults

__all__ = ["PosteriorCache", "CacheLookup", "observation_fingerprint"]


def _integrity_token(value: FrozenPosterior) -> Tuple[float, float, int]:
    """Cheap checksum of a frozen posterior's scalar summaries.

    Computed at :meth:`PosteriorCache.put` and re-verified on every lookup: a
    cached posterior whose summaries no longer match what was stored (cache
    poisoning, an aliasing bug mutating a "frozen" entry, a chaos-injected
    corruption) is dropped and counted instead of served.
    """
    return (
        float(getattr(value, "log_evidence", 0.0)),
        float(value.effective_sample_size()),
        int(len(value)),
    )


def observation_fingerprint(observation: Dict[str, Any], model_id: str, num_traces: int) -> str:
    """A stable digest of (observation tensor(s), model id, trace budget).

    Observation entries are hashed by name, dtype, shape and raw bytes, so two
    numerically identical arrays collide (the point of the cache) while any
    reshaped / retyped / perturbed observation gets its own entry.
    """
    digest = hashlib.sha256()
    digest.update(model_id.encode())
    digest.update(str(int(num_traces)).encode())
    for name in sorted(observation):
        array = np.ascontiguousarray(np.asarray(observation[name]))
        digest.update(name.encode())
        digest.update(str(array.dtype).encode())
        digest.update(str(array.shape).encode())
        digest.update(array.tobytes())
    return digest.hexdigest()


class CacheLookup(NamedTuple):
    """Result of a cache probe: the entry (or ``None``) and its freshness."""

    value: Optional[FrozenPosterior]
    stale: bool


class PosteriorCache:
    """Thread-safe LRU + TTL cache of frozen posterior summaries.

    ``capacity`` bounds the entry count (least-recently-used eviction);
    ``ttl`` (seconds, ``None`` = no expiry) bounds staleness — a posterior is
    deterministic for a fixed network, but a service whose network is being
    retrained in place wants answers to age out.  ``capacity=0`` disables
    caching entirely (every lookup is a miss).
    """

    def __init__(
        self,
        capacity: int = 256,
        ttl: Optional[float] = None,
        clock=time.monotonic,
    ) -> None:
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        if ttl is not None and ttl <= 0:
            raise ValueError("ttl must be positive (or None to disable expiry)")
        self.capacity = capacity
        self.ttl = ttl
        self._clock = clock
        #: key -> (stored_at, frozen posterior, owning model id, integrity token)
        self._entries: "OrderedDict[str, Tuple[float, FrozenPosterior, Optional[str], Any]]" = (
            OrderedDict()
        )
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.expirations = 0
        self.stale_hits = 0
        self.invalidations = 0
        self.poison_detected = 0

    def get(
        self, key: str, record_miss: bool = True, allow_stale: bool = False
    ) -> Optional[FrozenPosterior]:
        """Look up ``key``; a found (fresh) entry always counts as a hit.

        ``record_miss=False`` defers the miss accounting to the caller — the
        service uses this because a lookup miss may still be answered by
        single-flight coalescing, which it then folds back in via
        :meth:`record_hit`/:meth:`record_miss` so the cache's own hit rate
        agrees with the serving metrics.

        ``allow_stale=True`` selects stale-while-revalidate semantics: a
        TTL-expired entry is *kept* and returned instead of deleted, counting
        as a stale hit — use :meth:`lookup` to also learn the freshness.
        """
        return self.lookup(key, record_miss=record_miss, allow_stale=allow_stale).value

    def lookup(
        self, key: str, record_miss: bool = True, allow_stale: bool = False
    ) -> CacheLookup:
        """Like :meth:`get` but returns ``(value, stale)``."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                stored_at, value, _model_id, token = entry
                if token is not None and _integrity_token(value) != token:
                    # The entry mutated after storage (poisoning/aliasing):
                    # drop it and fall through to a miss — a corrupted
                    # posterior must never be served, fresh or stale.
                    del self._entries[key]
                    self.poison_detected += 1
                    entry = None
            if entry is not None:
                expired = self.ttl is not None and self._clock() - stored_at >= self.ttl
                if not expired:
                    self._entries.move_to_end(key)
                    self.hits += 1
                    return CacheLookup(value, False)
                if allow_stale:
                    self._entries.move_to_end(key)
                    self.hits += 1
                    self.stale_hits += 1
                    return CacheLookup(value, True)
                del self._entries[key]
                self.expirations += 1
            if record_miss:
                self.misses += 1
            return CacheLookup(None, False)

    def record_hit(self) -> None:
        """Count an externally-resolved hit (e.g. single-flight coalescing)."""
        with self._lock:
            self.hits += 1

    def record_miss(self) -> None:
        """Count a deferred miss (see :meth:`get` with ``record_miss=False``)."""
        with self._lock:
            self.misses += 1

    def put(self, key: str, value: FrozenPosterior, model_id: Optional[str] = None) -> None:
        """Insert/refresh an entry (``model_id`` scopes later invalidation)."""
        if self.capacity == 0:
            return
        try:
            token = _integrity_token(value)
        except Exception:
            token = None  # duck-typed test doubles without summaries: skip the check
        # Chaos hook: corrupt the entry *after* the token is computed — the
        # injected mutation models a post-storage bit flip, which the
        # integrity check must catch at lookup time.
        action = faults.fault_point("cache.poison", key=key)
        if action is not None and action.kind == "poison" and hasattr(value, "log_evidence"):
            value.log_evidence = float(value.log_evidence) + 1.0e6
        with self._lock:
            self._entries[key] = (self._clock(), value, model_id, token)
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def invalidate(self, model_id: Optional[str] = None) -> int:
        """Drop entries (all of them, or only those stored under ``model_id``).

        Wired by the service to in-place network retraining: the moment the
        proposal network's parameters change, every posterior computed under
        the old parameters is wrong, not merely old — stale-while-revalidate
        must never serve it.  Returns the number of entries dropped.
        """
        with self._lock:
            if model_id is None:
                dropped = len(self._entries)
                self._entries.clear()
            else:
                doomed = [
                    key
                    for key, (_stored_at, _value, entry_model, _token) in self._entries.items()
                    if entry_model == model_id
                ]
                for key in doomed:
                    del self._entries[key]
                dropped = len(doomed)
            self.invalidations += dropped
            return dropped

    def clear(self) -> int:
        """Drop every entry (alias of :meth:`invalidate` with no scope)."""
        return self.invalidate()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            size = len(self._entries)
        return {
            "size": size,
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "stale_hits": self.stale_hits,
            "evictions": self.evictions,
            "expirations": self.expirations,
            "invalidations": self.invalidations,
            "poison_detected": self.poison_detected,
            "hit_rate": self.hit_rate,
        }
