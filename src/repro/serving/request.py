"""Request/response types of the posterior serving layer.

A :class:`PosteriorRequest` is the unit of admission: one observation, a trace
budget, an optional deadline, and a future the client blocks on.  Internally
the scheduler explodes it into per-trace jobs (each with its own derived
random stream) so that jobs from different requests can share lockstep
cohorts; this module owns the bookkeeping that reassembles finished traces
into per-request posteriors in submission order, however cohorts complete.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Union

from repro.ppl.empirical import Empirical, FrozenPosterior
from repro.trace.trace import Trace

__all__ = [
    "DeadlineExceeded",
    "PoolStopped",
    "PosteriorRequest",
    "ServedPosterior",
    "ServiceOverloaded",
    "ServingError",
]


class ServingError(RuntimeError):
    """Base class of serving-layer failures delivered through request futures.

    Subclasses (and other error types) may set a class attribute
    ``transient = True`` to mark the failure as retryable: the opt-in
    resilience layer (:mod:`repro.serving.resilience`) redispatches transient
    cohort failures with backoff instead of failing the request's future.
    """

    transient = False


class ServiceOverloaded(ServingError):
    """The request was rejected at admission (queue full or service stopped)."""


class PoolStopped(ServingError):
    """A worker pool was stopped while this cohort was queued or in flight.

    Transient: during a backend demotion the old pool's outstanding shards
    fail with this error and are retried onto the replacement pool.  During a
    real service stop the resilience layer is already down, so the error
    passes through to the future exactly like the plain ``ServingError`` it
    used to be.
    """

    transient = True


class DeadlineExceeded(ServingError):
    """The request was shed because its deadline passed before it could run."""


@dataclass
class ServedPosterior:
    """What a completed request resolves to.

    ``posterior`` is the full weighted :class:`Empirical` when inference ran,
    or the cache's :class:`FrozenPosterior` summary on a cache hit (``cached``
    distinguishes the two); both support ``extract``/``log_evidence``/
    ``effective_sample_size``.  ``latency`` is seconds from admission to
    completion.

    Unlike the one-shot engine entry points, ``posterior.engine_stats`` on a
    served result is a snapshot of the *service-lifetime cumulative* engine
    counters at completion time — cohorts are shared between requests, so no
    exact per-request attribution exists.  Use ``service.stats()['engine']``
    deltas for rate monitoring rather than reading one result's counters.
    """

    request_id: int
    posterior: Union[Empirical, FrozenPosterior]
    cached: bool
    latency: float
    num_traces: int


class PosteriorRequest:
    """One in-flight posterior query and its reassembly state.

    Trace delivery and failure can race between worker threads (a request may
    span several cohorts completing on different workers), so all state
    transitions go through one lock.  ``deliver`` slots each finished trace at
    its submission-order position, which keeps the reassembled trace list —
    and therefore the floating-point reduction order of the posterior weights
    — independent of cohort completion order.
    """

    def __init__(
        self,
        request_id: int,
        observation: Dict[str, Any],
        num_traces: int,
        deadline: Optional[float] = None,
        clock=time.monotonic,
    ) -> None:
        self.request_id = request_id
        self.observation = observation
        self.num_traces = int(num_traces)
        self.deadline = deadline  # absolute, on the service clock; None = no deadline
        self.enqueued_at = clock()
        self.future: "Future[ServedPosterior]" = Future()
        self._traces: List[Optional[Trace]] = [None] * self.num_traces
        self._remaining = self.num_traces
        self._failed = False
        self._resolved = False
        self._lock = threading.Lock()

    # ------------------------------------------------------------- transitions
    def deliver(self, position: int, trace: Trace) -> bool:
        """Slot one finished trace; returns True when the request is complete."""
        with self._lock:
            if self._failed:
                return False
            if self._traces[position] is None:
                self._traces[position] = trace
                self._remaining -= 1
            return self._remaining == 0

    def fail(self, error: BaseException) -> bool:
        """Resolve the future with ``error`` (first resolution wins).

        Works at any point before :meth:`complete` — including after every
        trace was delivered, which is how a failure while *forming* the
        posterior (weights, summaries) still reaches the client instead of
        leaving the future pending forever.  The future is resolved under the
        request lock so ``fail``/``complete`` races pick exactly one winner.
        """
        with self._lock:
            if self._resolved:
                return False
            self._resolved = True
            self._failed = True
            self.future.set_exception(error)
        return True

    def complete(self, result) -> bool:
        """Resolve the future with ``result``; returns False if already resolved."""
        with self._lock:
            if self._resolved:
                return False
            self._resolved = True
            self.future.set_result(result)
        return True

    def expired(self, now: float) -> bool:
        return self.deadline is not None and now >= self.deadline

    @property
    def failed(self) -> bool:
        return self._failed

    def traces(self) -> List[Trace]:
        """The complete, submission-ordered trace list (call only when done)."""
        assert self._remaining == 0 and not self._failed
        return list(self._traces)  # type: ignore[arg-type]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PosteriorRequest(id={self.request_id}, num_traces={self.num_traces}, "
            f"remaining={self._remaining}, failed={self._failed})"
        )
