"""Request capture and deterministic replay for the posterior service.

A production debugging loop needs two halves: *capture* (record exactly what
the service admitted — observations, stream snapshots, admission order,
model/network identity) and *replay* (drive the same requests through a
service again and verify the posteriors are bit-identical).  Failing chaos
seeds become regression cases: capture the run, commit the file, replay it in
CI.

The capture file is JSON Lines — one header record, then one ``admission``
record per non-internal admitted request (in admission order) and one
``outcome`` record per resolution.  Observations are stored as
base64(raw bytes) + dtype + shape, and the request's random stream is stored
via :meth:`repro.common.rng.RandomState.snapshot` (seed identity *and*
generator state), which is what makes replay exact: the service derives every
per-trace stream from that snapshot the same way the original run did,
regardless of cohort packing, backend, or how the original run interleaved
requests.

Bit-identity is checked through :func:`posterior_digest`: a sha256 over every
trace's controlled draws (addresses + raw value bytes) and the posterior's
log-weight bytes.  Equal digests mean equal samples, equal weights and
therefore equal generator trajectories — the replay gate CI runs.
"""

from __future__ import annotations

import base64
import hashlib
import json
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, IO, List, Optional

import numpy as np

from repro.common.rng import RandomState

__all__ = [
    "RequestCapture",
    "ReplayMismatch",
    "ReplayReport",
    "load_capture",
    "posterior_digest",
    "replay_capture",
]


def _encode_array(array: np.ndarray) -> Dict[str, Any]:
    contiguous = np.ascontiguousarray(array)
    return {
        "dtype": str(contiguous.dtype),
        "shape": list(contiguous.shape),
        "data": base64.b64encode(contiguous.tobytes()).decode("ascii"),
    }


def _decode_array(payload: Dict[str, Any]) -> np.ndarray:
    raw = base64.b64decode(payload["data"])
    return np.frombuffer(raw, dtype=np.dtype(payload["dtype"])).reshape(
        payload["shape"]
    ).copy()


def posterior_digest(posterior) -> str:
    """sha256 over a posterior's controlled draws and log-weights.

    Covers, per trace in submission order: every sample's address and raw
    value bytes; then the full log-weight vector.  Two runs with equal
    digests drew identical values at identical addresses with identical
    weights — the strongest bit-identity statement available without
    persisting whole traces.
    """
    digest = hashlib.sha256()
    for trace in getattr(posterior, "values", []):
        for sample in trace.samples:
            digest.update(sample.address.encode())
            value = np.ascontiguousarray(np.asarray(sample.value, dtype=float))
            digest.update(value.tobytes())
    log_weights = np.ascontiguousarray(
        np.asarray(posterior.log_weights, dtype=float)
    )
    digest.update(log_weights.tobytes())
    return digest.hexdigest()


class RequestCapture:
    """Append-only recorder the service writes admissions and outcomes to.

    Thread-safe: admissions happen under the service's admission lock but
    outcomes land from worker/collector threads, so every write takes the
    capture's own lock and flushes (a crashed chaos run must leave a usable
    file behind — that is the point).
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._lock = threading.Lock()
        self._file: Optional[IO[str]] = None
        self._order = 0
        self._header_written = False

    # ------------------------------------------------------------------ writing
    def _write(self, record: Dict[str, Any]) -> None:
        if self._file is None:
            self._file = open(self.path, "w")
        self._file.write(json.dumps(record) + "\n")
        self._file.flush()

    def write_header(self, model_id: str, network_version: int) -> None:
        with self._lock:
            if self._header_written:
                return
            self._header_written = True
            self._write(
                {
                    "kind": "header",
                    "version": 1,
                    "model_id": model_id,
                    "network_version": int(network_version),
                }
            )

    def record_admission(
        self,
        request_id: int,
        observation: Dict[str, Any],
        num_traces: int,
        rng_snapshot: Dict[str, Any],
        network_version: int,
    ) -> int:
        """Record one admission; returns its capture order index.

        Must be called *before* the service consumes the request stream
        (``per_trace_rngs``), so the snapshot is the pre-derivation state
        replay needs.
        """
        seed = rng_snapshot["seed"]
        record = {
            "kind": "admission",
            "request_id": int(request_id),
            "num_traces": int(num_traces),
            "network_version": int(network_version),
            "rng": {
                "seed": list(seed) if isinstance(seed, tuple) else seed,
                "state": rng_snapshot["state"],
            },
            "observation": {
                name: _encode_array(np.asarray(value))
                for name, value in observation.items()
            },
        }
        with self._lock:
            order = self._order
            self._order += 1
            record["order"] = order
            self._write(record)
        return order

    def record_outcome(
        self,
        order: int,
        status: str,
        digest: Optional[str] = None,
        error: Optional[str] = None,
    ) -> None:
        record: Dict[str, Any] = {"kind": "outcome", "order": int(order), "status": status}
        if digest is not None:
            record["digest"] = digest
        if error is not None:
            record["error"] = error
        with self._lock:
            self._write(record)

    def close(self) -> None:
        with self._lock:
            if self._file is not None:
                self._file.close()
                self._file = None

    def __enter__(self) -> "RequestCapture":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ---------------------------------------------------------------------------
# Reading + replay
# ---------------------------------------------------------------------------


def load_capture(path: str) -> Dict[str, Any]:
    """Parse a capture file into ``{"header", "admissions", "outcomes"}``.

    ``admissions`` is sorted by capture order; ``outcomes`` maps order to the
    final outcome record (last writer wins, matching first-resolution-wins on
    the live futures).
    """
    header: Optional[Dict[str, Any]] = None
    admissions: List[Dict[str, Any]] = []
    outcomes: Dict[int, Dict[str, Any]] = {}
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            kind = record.get("kind")
            if kind == "header":
                header = record
            elif kind == "admission":
                admissions.append(record)
            elif kind == "outcome":
                outcomes[record["order"]] = record
    admissions.sort(key=lambda record: record["order"])
    return {"header": header, "admissions": admissions, "outcomes": outcomes}


class ReplayMismatch(RuntimeError):
    """Replay produced a posterior whose digest differs from the capture."""


@dataclass
class ReplayReport:
    """Outcome of :func:`replay_capture`."""

    total: int = 0
    replayed: int = 0
    matched: int = 0
    skipped: int = 0          # original never completed (failed/shed): nothing to match
    mismatches: List[int] = field(default_factory=list)
    errors: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches and not self.errors


def replay_capture(path: str, service, *, verify: bool = True, timeout: float = 60.0) -> ReplayReport:
    """Drive a capture file's requests through ``service`` in admission order.

    Each admission is resubmitted with its recorded stream restored
    (``use_cache=False`` so every replay runs real inference) and, for
    admissions whose original outcome completed, the replayed posterior's
    digest is compared to the recorded one.  With ``verify=True`` the first
    divergence raises :class:`ReplayMismatch`; with ``verify=False`` all
    divergences are collected into the returned :class:`ReplayReport`.

    Requests are replayed sequentially.  That is *allowed* to differ from the
    original interleaving: per-request streams are derived from each
    request's own snapshot under the admission lock, so cohort packing and
    admission concurrency never change a request's posterior — the same
    contract that makes seeded serving match the one-shot engine.
    """
    capture = load_capture(path)
    report = ReplayReport(total=len(capture["admissions"]))
    for admission in capture["admissions"]:
        order = admission["order"]
        outcome = capture["outcomes"].get(order)
        observation = {
            name: _decode_array(payload)
            for name, payload in admission["observation"].items()
        }
        replay_rng = RandomState.restore(admission["rng"], name=f"replay/{order}")
        try:
            future = service.submit(
                observation,
                admission["num_traces"],
                rng=replay_rng,
                use_cache=False,
            )
            served = future.result(timeout=timeout)
        except BaseException as error:  # noqa: BLE001 - collected per record
            if outcome is not None and outcome.get("status") == "completed":
                message = f"order {order}: replay failed ({type(error).__name__}: {error})"
                if verify:
                    raise ReplayMismatch(message) from error
                report.errors.append(message)
            else:
                report.skipped += 1  # original failed too: nothing to compare
            continue
        report.replayed += 1
        if outcome is None or outcome.get("status") != "completed":
            report.skipped += 1
            continue
        recorded = outcome.get("digest")
        replayed = posterior_digest(served.posterior)
        if recorded == replayed:
            report.matched += 1
        else:
            report.mismatches.append(order)
            if verify:
                raise ReplayMismatch(
                    f"order {order}: replayed posterior digest {replayed[:12]}… "
                    f"differs from captured {str(recorded)[:12]}…"
                )
    return report
