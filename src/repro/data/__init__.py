"""Offline trace datasets, I/O, sorting, batching and distributed sampling."""

from repro.data.shelf import ShardStore
from repro.data.dataset import InMemoryTraceDataset, TraceDataset, generate_dataset
from repro.data.sorting import (
    parallel_sort_indices,
    regroup_dataset,
    sorted_indices_by_trace_type,
    sortedness_fraction,
)
from repro.data.batching import (
    dynamic_token_batches,
    effective_minibatch_size,
    split_into_sub_minibatches,
    sub_minibatch_count,
)
from repro.data.sampler import DistributedTraceSampler

#: packing exports resolved lazily (PEP 562): repro.data.packing pulls in the
#: NN layer stack (repro.ppl.nn), which data-only consumers (shard tooling,
#: dataset generation) should not pay for — and which itself imports
#: repro.data submodules, so an eager import here would be cycle-fragile.
_PACKING_EXPORTS = {
    "PackedEpochPlan",
    "PackedStep",
    "PackedSubMinibatch",
    "pack_minibatch",
    "pack_sub_minibatch",
}


def __getattr__(name):
    if name in _PACKING_EXPORTS:
        from repro.data import packing

        return getattr(packing, name)
    raise AttributeError(f"module 'repro.data' has no attribute {name!r}")


__all__ = [
    "ShardStore",
    "TraceDataset",
    "InMemoryTraceDataset",
    "generate_dataset",
    "sorted_indices_by_trace_type",
    "parallel_sort_indices",
    "regroup_dataset",
    "sortedness_fraction",
    "split_into_sub_minibatches",
    "sub_minibatch_count",
    "effective_minibatch_size",
    "dynamic_token_batches",
    "DistributedTraceSampler",
    "PackedEpochPlan",
    "PackedStep",
    "PackedSubMinibatch",
    "pack_minibatch",
    "pack_sub_minibatch",
]
