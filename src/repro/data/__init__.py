"""Offline trace datasets, I/O, sorting, batching and distributed sampling."""

from repro.data.shelf import ShardStore
from repro.data.dataset import InMemoryTraceDataset, TraceDataset, generate_dataset
from repro.data.sorting import (
    parallel_sort_indices,
    regroup_dataset,
    sorted_indices_by_trace_type,
    sortedness_fraction,
)
from repro.data.batching import (
    dynamic_token_batches,
    effective_minibatch_size,
    split_into_sub_minibatches,
    sub_minibatch_count,
)
from repro.data.sampler import DistributedTraceSampler

__all__ = [
    "ShardStore",
    "TraceDataset",
    "InMemoryTraceDataset",
    "generate_dataset",
    "sorted_indices_by_trace_type",
    "parallel_sort_indices",
    "regroup_dataset",
    "sortedness_fraction",
    "split_into_sub_minibatches",
    "sub_minibatch_count",
    "effective_minibatch_size",
    "dynamic_token_batches",
    "DistributedTraceSampler",
]
