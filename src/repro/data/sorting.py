"""Trace sorting and file re-grouping (Section 4.4.3).

The paper's I/O optimisation has two parts:

* a **parallel trace sorting** pass that pre-sorts the 15M traces by trace
  type, so that minibatch-sized chunks of the sorted order contain (almost
  always) a single trace type, enabling single-forward-pass sub-minibatches
  and sequential file access, and
* **re-grouping** small trace files into larger ones (750 files of 20k traces
  -> 150 files of 100k traces).

Together these reduced I/O from >50% of runtime to <5% and improved training
speed by up to 50x via larger effective minibatches.  The functions here
implement both passes for the shard-store datasets of this reproduction.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["sorted_indices_by_trace_type", "parallel_sort_indices", "regroup_dataset", "sortedness_fraction"]


def sorted_indices_by_trace_type(dataset) -> List[int]:
    """Return dataset indices ordered so that equal trace types are contiguous.

    The sort key is ``(trace_type, trace_length, index)``: grouping by type is
    what enables single-type minibatch chunks; the secondary length key keeps
    similarly-sized traces together, which also helps load balance.
    """
    keys = [
        (dataset.trace_type_of(i), dataset.trace_length_of(i), i) for i in range(len(dataset))
    ]
    keys.sort()
    return [k[2] for k in keys]


def parallel_sort_indices(dataset, num_workers: int = 4) -> List[int]:
    """Chunked sort + k-way merge, mirroring the paper's parallel sorting pass.

    Each "worker" sorts a contiguous slice of the dataset independently; the
    sorted runs are then merged.  The result is identical to
    :func:`sorted_indices_by_trace_type` (the tests assert this), but the
    structure mirrors how the sort is distributed across ranks.
    """
    import heapq

    if num_workers <= 0:
        raise ValueError("num_workers must be positive")
    total = len(dataset)
    if total == 0:
        return []
    chunk = (total + num_workers - 1) // num_workers
    runs: List[List[Tuple[str, int, int]]] = []
    for worker in range(num_workers):
        start = worker * chunk
        stop = min(start + chunk, total)
        if start >= stop:
            continue
        keys = [
            (dataset.trace_type_of(i), dataset.trace_length_of(i), i) for i in range(start, stop)
        ]
        keys.sort()
        runs.append(keys)
    merged = list(heapq.merge(*runs))
    return [k[2] for k in merged]


def regroup_dataset(dataset, directory: str, records_per_shard: int = 100, order: Optional[Sequence[int]] = None):
    """Write a new on-disk dataset with traces re-ordered and re-grouped.

    ``order`` defaults to the trace-type sorted order; ``records_per_shard``
    controls the grouping into larger files.  Returns the new
    :class:`repro.data.dataset.TraceDataset`.
    """
    from repro.data.dataset import TraceDataset

    order = list(order) if order is not None else sorted_indices_by_trace_type(dataset)
    regrouped = TraceDataset(directory, records_per_shard=records_per_shard)
    for index in order:
        regrouped.add_trace(dataset[index])
    regrouped.flush()
    return regrouped


def sortedness_fraction(trace_types: Sequence[str], chunk_size: int) -> float:
    """Fraction of ``chunk_size`` chunks that contain a single trace type.

    This is the quantity the sorting pass maximises: the higher it is, the
    fewer sub-minibatches a minibatch splits into and the larger the effective
    minibatch size (Section 4.4.1).
    """
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    total_chunks = 0
    single_type = 0
    for start in range(0, len(trace_types), chunk_size):
        chunk = trace_types[start : start + chunk_size]
        if not chunk:
            continue
        total_chunks += 1
        if len(set(chunk)) == 1:
            single_type += 1
    return single_type / total_chunks if total_chunks else 0.0
