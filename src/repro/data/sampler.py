"""Distributed minibatch sampler (Section 4.4.3).

The paper's distributed sampler, re-implemented:

1. split the (trace-type-sorted) trace indices into minibatch-sized **chunks**,
   so that all traces within a chunk are highly likely to share a trace type;
2. optionally group the chunks into several **buckets** by trace length
   (Section 7.2's multi-bucketing scheme);
3. within each bucket, assign chunks **round-robin** to ranks so every rank
   sees a similar workload distribution;
4. each epoch, shuffle the chunk order randomly (without replacement), so that
   minibatches come from different regions of the sorted dataset and the
   gradient stays unbiased in expectation.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence

import numpy as np

from repro.common.rng import RandomState, get_rng

__all__ = ["DistributedTraceSampler"]


class DistributedTraceSampler:
    """Yields per-rank minibatches of dataset indices."""

    def __init__(
        self,
        sorted_indices: Sequence[int],
        minibatch_size: int,
        num_ranks: int = 1,
        rank: int = 0,
        num_buckets: int = 1,
        lengths: Optional[Sequence[int]] = None,
        shuffle: bool = True,
        seed: int = 0,
        drop_last: bool = True,
    ) -> None:
        if minibatch_size <= 0:
            raise ValueError("minibatch_size must be positive")
        if not (0 <= rank < num_ranks):
            raise ValueError("rank must be in [0, num_ranks)")
        if num_buckets < 1:
            raise ValueError("num_buckets must be >= 1")
        self.sorted_indices = list(sorted_indices)
        self.minibatch_size = minibatch_size
        self.num_ranks = num_ranks
        self.rank = rank
        self.num_buckets = num_buckets
        self.lengths = list(lengths) if lengths is not None else None
        self.shuffle = shuffle
        self.seed = seed
        self.drop_last = drop_last
        self.epoch = 0
        self._chunks = self._build_chunks()
        self._buckets = self._build_buckets(self._chunks)
        self._rank_chunks = self._assign_round_robin(self._buckets)

    # ------------------------------------------------------------------ chunks
    def _build_chunks(self) -> List[List[int]]:
        chunks = []
        indices = self.sorted_indices
        for start in range(0, len(indices), self.minibatch_size):
            chunk = indices[start : start + self.minibatch_size]
            if len(chunk) < self.minibatch_size and self.drop_last:
                continue
            chunks.append(chunk)
        return chunks

    def _build_buckets(self, chunks: List[List[int]]) -> List[List[List[int]]]:
        if self.num_buckets == 1 or self.lengths is None:
            return [chunks]
        # Bucket chunks by their mean trace length (quantile boundaries).
        mean_lengths = np.array([np.mean([self.lengths[i] for i in chunk]) for chunk in chunks])
        quantiles = np.quantile(mean_lengths, np.linspace(0, 1, self.num_buckets + 1))
        buckets: List[List[List[int]]] = [[] for _ in range(self.num_buckets)]
        for chunk, mean_length in zip(chunks, mean_lengths):
            bucket = int(np.searchsorted(quantiles[1:-1], mean_length, side="right"))
            buckets[bucket].append(chunk)
        return [b for b in buckets if b]

    def _assign_round_robin(self, buckets: List[List[List[int]]]) -> List[List[int]]:
        """Chunks assigned to this rank, preserving bucket grouping."""
        mine: List[List[int]] = []
        for bucket in buckets:
            for position, chunk in enumerate(bucket):
                if position % self.num_ranks == self.rank:
                    mine.append(chunk)
        return mine

    # --------------------------------------------------------------- iteration
    def set_epoch(self, epoch: int) -> None:
        """Change the shuffling seed (call once per epoch, same value on all ranks)."""
        self.epoch = epoch

    def __len__(self) -> int:
        return len(self._rank_chunks)

    def __iter__(self) -> Iterator[List[int]]:
        order = np.arange(len(self._rank_chunks))
        if self.shuffle:
            # (seed, epoch) mixed as separate entropy words — additive keying
            # (seed + epoch) collides across (seed=4, epoch=1)/(seed=5, epoch=0).
            rng = RandomState(self.seed).spawn(self.epoch)
            rng.generator.shuffle(order)
        for position in order:
            yield list(self._rank_chunks[position])

    # -------------------------------------------------------------- statistics
    def iterations_per_epoch(self) -> int:
        return len(self._rank_chunks)

    def workload_tokens(self) -> int:
        """Total number of tokens (random draws) this rank processes per epoch."""
        if self.lengths is None:
            return sum(len(chunk) for chunk in self._rank_chunks)
        return int(sum(self.lengths[i] for chunk in self._rank_chunks for i in chunk))
