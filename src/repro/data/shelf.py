"""Shard store: file-backed storage of pruned traces with handle caching.

The paper stores its 15M-trace / 1.7 TB dataset with Python ``shelve`` over
gdbm, 100k traces per file, and reports two I/O-layer optimisations that this
module reproduces in miniature:

* grouping many traces per file (750 files of 20k -> 150 files of 100k) so
  that sequential reads hit contiguous file regions, and
* caching file open/close handles so that repeated metadata operations (and
  concurrent access from different ranks to the same file) are cheap.

Each shard file holds a pickled list of pruned trace records; an index maps a
global trace id to ``(shard, position)``.
"""

from __future__ import annotations

import os
import pickle
from collections import OrderedDict
from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = ["ShardStore"]


class ShardStore:
    """Append-oriented store of pickled records split across shard files."""

    INDEX_FILE = "index.pkl"

    def __init__(self, directory: str, records_per_shard: int = 100, cache_size: int = 8) -> None:
        if records_per_shard <= 0:
            raise ValueError("records_per_shard must be positive")
        self.directory = directory
        self.records_per_shard = records_per_shard
        self.cache_size = cache_size
        os.makedirs(directory, exist_ok=True)
        self._index: List[Tuple[int, int]] = []     # global id -> (shard id, position)
        self._metadata: Dict[str, Any] = {}
        self._pending: List[Any] = []
        self._num_shards = 0
        self._cache: "OrderedDict[int, List[Any]]" = OrderedDict()
        self.cache_hits = 0
        self.cache_misses = 0
        index_path = os.path.join(directory, self.INDEX_FILE)
        if os.path.exists(index_path):
            self._load_index()

    # ----------------------------------------------------------------- writing
    def append(self, record: Any) -> int:
        """Append one record; returns its global id."""
        global_id = len(self._index)
        shard_id = self._num_shards
        position = len(self._pending)
        self._pending.append(record)
        self._index.append((shard_id, position))
        if len(self._pending) >= self.records_per_shard:
            self._flush_shard()
        return global_id

    def extend(self, records: Iterable[Any]) -> None:
        for record in records:
            self.append(record)

    def _shard_path(self, shard_id: int) -> str:
        return os.path.join(self.directory, f"shard_{shard_id:05d}.pkl")

    def _flush_shard(self) -> None:
        if not self._pending:
            return
        with open(self._shard_path(self._num_shards), "wb") as handle:
            pickle.dump(self._pending, handle, protocol=pickle.HIGHEST_PROTOCOL)
        self._num_shards += 1
        self._pending = []

    def set_metadata(self, key: str, value: Any) -> None:
        self._metadata[key] = value

    def get_metadata(self, key: str, default: Any = None) -> Any:
        return self._metadata.get(key, default)

    def flush(self) -> None:
        """Flush pending records and persist the index + metadata.

        The index is the store's single point of failure: shard files are
        append-only and self-contained, but a torn ``index.pkl`` orphans all
        of them.  It is therefore written to a temporary sibling and moved
        into place with :func:`os.replace`, which is atomic on POSIX and
        Windows — a crash mid-write leaves the previous index intact.
        """
        self._flush_shard()
        index_path = os.path.join(self.directory, self.INDEX_FILE)
        temp_path = index_path + ".tmp"
        try:
            with open(temp_path, "wb") as handle:
                pickle.dump(
                    {
                        "index": self._index,
                        "metadata": self._metadata,
                        "num_shards": self._num_shards,
                        "records_per_shard": self.records_per_shard,
                    },
                    handle,
                    protocol=pickle.HIGHEST_PROTOCOL,
                )
                handle.flush()
                os.fsync(handle.fileno())
        except BaseException:
            # Never leave a torn temp file behind to be mistaken for an index.
            if os.path.exists(temp_path):
                os.unlink(temp_path)
            raise
        os.replace(temp_path, index_path)

    def _load_index(self) -> None:
        with open(os.path.join(self.directory, self.INDEX_FILE), "rb") as handle:
            payload = pickle.load(handle)
        self._index = payload["index"]
        self._metadata = payload["metadata"]
        self._num_shards = payload["num_shards"]
        self.records_per_shard = payload["records_per_shard"]

    # ----------------------------------------------------------------- reading
    def __len__(self) -> int:
        return len(self._index)

    @property
    def num_shards(self) -> int:
        return self._num_shards + (1 if self._pending else 0)

    def _load_shard(self, shard_id: int) -> List[Any]:
        cached = self._cache.get(shard_id)
        if cached is not None:
            self.cache_hits += 1
            self._cache.move_to_end(shard_id)
            return cached
        self.cache_misses += 1
        if shard_id == self._num_shards and self._pending:
            records = self._pending
        else:
            with open(self._shard_path(shard_id), "rb") as handle:
                records = pickle.load(handle)
        self._cache[shard_id] = records
        while len(self._cache) > self.cache_size:
            self._cache.popitem(last=False)
        return records

    def __getitem__(self, global_id: int) -> Any:
        shard_id, position = self._index[global_id]
        return self._load_shard(shard_id)[position]

    def get_many(self, ids: Iterable[int]) -> List[Any]:
        return [self[i] for i in ids]

    def shard_of(self, global_id: int) -> int:
        return self._index[global_id][0]

    def clear_cache(self) -> None:
        self._cache.clear()
        self.cache_hits = 0
        self.cache_misses = 0
