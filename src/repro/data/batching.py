"""Sub-minibatching and dynamic batching (Sections 4.4.1 and 7.2).

At training time each minibatch is divided into *sub-minibatches* by trace
type, because only traces sharing the same address sequence can be pushed
through the dynamic NN in a single forward execution (Algorithm 1).  The
*effective* minibatch size is therefore the average sub-minibatch size, and
the throughput optimisations in the paper (sorting, same-type batching,
multi-bucketing) all aim to increase it.

This module also implements the *dynamic batching* variant discussed in
Section 7.2: instead of a fixed number of traces per rank, each rank receives
a target number of "tokens" (random draws), so ranks with long traces get
fewer of them — the NMT-style load-balancing idea that the paper evaluated.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Sequence, Tuple

import numpy as np

__all__ = [
    "split_into_sub_minibatches",
    "effective_minibatch_size",
    "sub_minibatch_count",
    "dynamic_token_batches",
]


def split_into_sub_minibatches(traces: Sequence) -> List[List]:
    """Group traces by trace type; each group is one NN forward execution."""
    groups: Dict[str, List] = defaultdict(list)
    for trace in traces:
        groups[trace.trace_type].append(trace)
    return list(groups.values())


def sub_minibatch_count(trace_types: Sequence[str]) -> int:
    """Number of sub-minibatches a minibatch with these trace types splits into."""
    return len(set(trace_types))


def effective_minibatch_size(trace_types: Sequence[str]) -> float:
    """Average sub-minibatch size = |minibatch| / #trace types present."""
    if len(trace_types) == 0:
        return 0.0
    return len(trace_types) / sub_minibatch_count(trace_types)


def dynamic_token_batches(
    lengths: Sequence[int],
    tokens_per_batch: int,
    indices: Sequence[int] = None,
) -> List[List[int]]:
    """Partition traces into batches holding approximately ``tokens_per_batch`` tokens.

    A "token" is one random draw in a trace, so a batch can contain many short
    traces or a few long ones.  Returns a list of index lists.  Every trace is
    assigned to exactly one batch; a single trace longer than the budget gets
    its own batch.
    """
    if tokens_per_batch <= 0:
        raise ValueError("tokens_per_batch must be positive")
    if indices is None:
        indices = list(range(len(lengths)))
    batches: List[List[int]] = []
    current: List[int] = []
    current_tokens = 0
    for index in indices:
        length = int(lengths[index])
        if current and current_tokens + length > tokens_per_batch:
            batches.append(current)
            current = []
            current_tokens = 0
        current.append(index)
        current_tokens += length
    if current:
        batches.append(current)
    return batches
