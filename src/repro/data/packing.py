"""Packed sub-minibatches: precomputed array inputs for the training loss.

Algorithm 1 trains the inference network on sub-minibatches of identical
trace type, so every training iteration used to re-derive the same per-step
arrays from the same per-trace objects: stack B observation arrays, walk B
sample lists per LSTM step, score values against B per-trace prior objects,
and re-encode the previous step's values through
:meth:`~repro.ppl.nn.embeddings.SampleEmbedding.encode_values`.  None of that
work depends on the network parameters — for an offline dataset it is
*identical* across epochs.

:class:`PackedSubMinibatch` does it once.  For one same-trace-type group it
stacks the observations, and per LSTM step packs

* the recorded values as a ``(B,)`` array (plus the ``(B, 1)`` float column
  the continuous density consumes and the ``(B,)`` int64 indices the
  categorical one gathers with),
* the per-trace prior parameters as arrays — :class:`PriorGeometry` rows for
  continuous priors, ``(B,)`` category indices for categorical ones (the PR 3
  ``(B, K)`` batched-distribution form stays one lazy
  :meth:`PackedStep.packed_priors` call away, via the new
  ``from_distributions`` constructors),
* the precomputed previous-sample embedding input.

The vectorised loss (:meth:`InferenceNetwork._sub_minibatch_loss_packed`)
then runs pure tensor ops per step; the ``vectorized_loss=False`` reference
path keeps consuming the retained per-trace objects.

:class:`PackedEpochPlan` is the offline schedule built on top: the dataset is
sorted by trace type once (:func:`repro.data.sorting.sorted_indices_by_trace_type`),
chunked into token-budgeted minibatches
(:func:`repro.data.batching.dynamic_token_batches` — the Section 7.2
NMT-style batching), and the packs built for a minibatch are cached across
epochs, so offline training pays the numpy prep once per dataset instead of
once per iteration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.data.batching import dynamic_token_batches, split_into_sub_minibatches
from repro.data.dataset import InMemoryTraceDataset, observation_array
from repro.data.sorting import sorted_indices_by_trace_type
from repro.distributions import (
    BatchedCategorical,
    BatchedDistribution,
    BatchedMixtureOfTruncatedNormals,
    BatchedNormal,
    Categorical,
    Distribution,
    Mixture,
    Normal,
    TruncatedNormal,
)
from repro.ppl.nn.embeddings import SampleEmbedding
from repro.distributions.geometry import PriorGeometry, prior_geometry
from repro.trace.trace import Trace

__all__ = [
    "PackedStep",
    "PackedSubMinibatch",
    "PackedEpochPlan",
    "observation_array",
    "pack_sub_minibatch",
    "pack_minibatch",
]


#: sentinel distinguishing "not built yet" from "family has no array form"
_UNBUILT = object()


@dataclass(eq=False)
class PackedStep:
    """One LSTM step of a packed sub-minibatch (one shared address, B traces).

    ``values``/``priors`` retain the raw per-trace data for fallback scoring
    (custom proposal layers, pack/layer family mismatches); everything else
    is the precomputed array form the vectorised loss consumes.
    """

    address: str
    values: np.ndarray                   #: (B,) raw recorded values
    priors: List[Distribution]           #: per-trace prior objects (reference path)
    encoded_values: np.ndarray           #: (B, value_dim) SampleEmbedding input
    values_column: Optional[np.ndarray] = None   #: (B, 1) float values (continuous)
    geometry: Optional[PriorGeometry] = None     #: (B,) prior geometry (continuous)
    indices: Optional[np.ndarray] = None         #: (B,) int64 categories (categorical)
    _packed_priors_cache: Any = field(default=_UNBUILT, repr=False)

    @property
    def batch_size(self) -> int:
        return len(self.priors)

    def packed_priors(self) -> Optional[BatchedDistribution]:
        """The step's B priors as ONE array-parameterised batched object.

        ``BatchedCategorical`` (``(B, K)`` probabilities) for categorical
        priors, ``BatchedNormal`` for scalar normal ones,
        ``BatchedMixtureOfTruncatedNormals`` for truncated-normal / mixture
        priors, ``None`` for families without an array form (e.g. Uniform —
        its support lives in :attr:`geometry`) or heterogeneous groups.
        Built lazily and cached: the training loss itself never reads prior
        parameters (geometry and indices cover it), so this costs nothing
        unless a vectorised consumer — prior smoothing, diagnostics, tests —
        actually asks for it.
        """
        if self._packed_priors_cache is _UNBUILT:
            self._packed_priors_cache = _pack_priors(self.priors)
        return self._packed_priors_cache

    def __getstate__(self):
        # The sentinel is identity-compared, which pickling would break (the
        # copy is a different object()): ship the state without it and let
        # __setstate__ restore "not built yet".  A built cache rides along.
        state = dict(self.__dict__)
        if state.get("_packed_priors_cache") is _UNBUILT:
            del state["_packed_priors_cache"]
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self.__dict__.setdefault("_packed_priors_cache", _UNBUILT)


def _pack_priors(priors: Sequence[Distribution]) -> Optional[BatchedDistribution]:
    try:
        if isinstance(priors[0], Categorical):
            return BatchedCategorical.from_distributions(priors)
        if isinstance(priors[0], Normal):
            return BatchedNormal.from_distributions(priors)
        if isinstance(priors[0], (TruncatedNormal, Mixture)):
            return BatchedMixtureOfTruncatedNormals.from_distributions(priors)
    except ValueError:
        return None
    return None


@dataclass(eq=False)
class PackedSubMinibatch:
    """One same-trace-type group, fully packed for the vectorised loss."""

    trace_type: str
    traces: List[Trace]          #: the packed traces (reference-path input)
    observations: np.ndarray     #: (B, ...) stacked observation arrays
    steps: List[PackedStep]      #: one entry per controlled latent draw

    @property
    def batch_size(self) -> int:
        return len(self.traces)

    @property
    def num_steps(self) -> int:
        return len(self.steps)


def _pack_step(samples_t: Sequence[Any]) -> PackedStep:
    """Pack the B samples at one step (same address across the group)."""
    address = samples_t[0].address
    values_list = [s.value for s in samples_t]
    priors = [s.distribution for s in samples_t]
    values = np.asarray(values_list)
    # Same call the reference loss makes per iteration, now made once: the
    # encoding standardises against priors[0], matching the reference exactly.
    encoded = SampleEmbedding.encode_values(priors[0], values)
    values_column = geometry = indices = None
    prior0 = priors[0]
    if isinstance(prior0, Categorical):
        indices = np.asarray(values_list, dtype=np.int64).reshape(-1)
    elif not prior0.discrete:
        values_column = np.asarray(values_list, dtype=float).reshape(-1, 1)
        geometry = prior_geometry(priors)
    return PackedStep(
        address=address,
        values=values,
        priors=priors,
        encoded_values=encoded,
        values_column=values_column,
        geometry=geometry,
        indices=indices,
    )


def pack_sub_minibatch(traces: Sequence[Trace], observe_key: Optional[str] = None) -> PackedSubMinibatch:
    """Pack one group of same-trace-type traces.

    Raises ``ValueError`` if the traces do not share a trace type (the
    grouping contract of Algorithm 1 — callers split by type first).
    """
    traces = list(traces)
    if len(traces) == 0:
        raise ValueError("pack_sub_minibatch needs at least one trace")
    trace_type = traces[0].trace_type
    controlled = [
        [s for s in trace.samples if s.controlled and s.distribution is not None]
        for trace in traces
    ]
    num_steps = len(controlled[0])
    for trace, steps in zip(traces, controlled):
        if trace.trace_type != trace_type or len(steps) != num_steps:
            raise ValueError("pack_sub_minibatch needs traces of one trace type")
    packed_steps: List[PackedStep] = []
    for t in range(num_steps):
        samples_t = [controlled[i][t] for i in range(len(traces))]
        address = samples_t[0].address
        if any(s.address != address for s in samples_t[1:]):
            raise ValueError(f"step {t} mixes addresses within one trace type")
        packed_steps.append(_pack_step(samples_t))
    observations = np.stack(
        [observation_array(trace, observe_key) for trace in traces], axis=0
    )
    return PackedSubMinibatch(
        trace_type=trace_type, traces=traces, observations=observations, steps=packed_steps
    )


def pack_minibatch(traces: Sequence[Trace], observe_key: Optional[str] = None) -> List[PackedSubMinibatch]:
    """Split a minibatch by trace type and pack each group (Algorithm 1)."""
    return [
        pack_sub_minibatch(group, observe_key=observe_key)
        for group in split_into_sub_minibatches(traces)
    ]


class PackedEpochPlan:
    """Sorted, token-budgeted offline minibatch schedule with cached packs.

    Built once per ``train(dataset=...)`` call:

    * the dataset order is sorted by ``(trace_type, length)`` so consecutive
      traces share a type (Section 4.4.3 — what makes sub-minibatches large),
    * the sorted order is chunked by :func:`dynamic_token_batches` under a
      token (= latent draw) budget of ``minibatch_size`` times the mean trace
      length, so a batch holds ~``minibatch_size`` average-length traces but
      fewer long ones (the Section 7.2 dynamic batching),
    * each epoch visits every minibatch once, in an order shuffled from the
      engine rng, and
    * the :class:`PackedSubMinibatch` groups built for a minibatch are cached
      and reused by every later epoch — ``cache_packs=False`` opts out,
      rebuilding packs per visit, for datasets whose packed form (stacked
      observations, one-hot encodings) would not fit in memory alongside the
      traces themselves.
    """

    def __init__(
        self,
        traces: Sequence[Trace],
        minibatch_size: int,
        observe_key: Optional[str] = None,
        tokens_per_batch: Optional[int] = None,
        cache_packs: bool = True,
    ) -> None:
        self.traces = list(traces)
        if len(self.traces) == 0:
            raise ValueError("an epoch plan needs a non-empty dataset")
        if minibatch_size < 1:
            raise ValueError("minibatch_size must be >= 1")
        self.observe_key = observe_key
        lengths = [trace.length for trace in self.traces]
        order = sorted_indices_by_trace_type(InMemoryTraceDataset(self.traces))
        if tokens_per_batch is None:
            mean_length = max(1.0, sum(lengths) / len(lengths))
            tokens_per_batch = max(
                1, int(round(min(minibatch_size, len(self.traces)) * mean_length))
            )
        self.tokens_per_batch = int(tokens_per_batch)
        self.batches = dynamic_token_batches(lengths, self.tokens_per_batch, indices=order)
        self.cache_packs = bool(cache_packs)
        self._packs: Dict[int, List[PackedSubMinibatch]] = {}
        self._epoch_order: List[int] = []
        self._cursor = 0
        self.epochs_started = 0

    def __len__(self) -> int:
        return len(self.batches)

    @property
    def num_minibatches(self) -> int:
        return len(self.batches)

    def next_batch_id(self, rng) -> int:
        """The next minibatch id, reshuffling the visit order each epoch."""
        if self._cursor >= len(self._epoch_order):
            self._epoch_order = [int(i) for i in rng.generator.permutation(len(self.batches))]
            self._cursor = 0
            self.epochs_started += 1
        batch_id = self._epoch_order[self._cursor]
        self._cursor += 1
        return batch_id

    def minibatch(self, batch_id: int) -> List[Trace]:
        return [self.traces[i] for i in self.batches[batch_id]]

    def packs(self, batch_id: int) -> List[PackedSubMinibatch]:
        """The packed groups of one minibatch (built once and cached, unless
        ``cache_packs=False`` traded the reuse for constant memory)."""
        cached = self._packs.get(batch_id)
        if cached is None:
            cached = pack_minibatch(self.minibatch(batch_id), observe_key=self.observe_key)
            if self.cache_packs:
                self._packs[batch_id] = cached
        return cached
