"""Offline trace datasets (Section 4.3/4.4: the "offline" training mode).

A :class:`TraceDataset` stores pruned execution traces on disk (via
:class:`repro.data.shelf.ShardStore`) together with the light-weight metadata
needed by the training pipeline without loading trace contents:

* the trace type and the trace length of every entry (for sorting, bucketing
  and sub-minibatch construction),
* the shared :class:`repro.trace.AddressDictionary` (shorthand address ids).

An in-memory variant (:class:`InMemoryTraceDataset`) backs small tests and the
online-training path.
"""

from __future__ import annotations

import os
import pickle
from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.common.rng import RandomState, get_rng
from repro.data.shelf import ShardStore
from repro.trace.pruning import AddressDictionary, prune_trace, restore_trace
from repro.trace.trace import Trace

__all__ = ["TraceDataset", "InMemoryTraceDataset", "generate_dataset", "observation_array"]


def observation_array(trace: Trace, observe_key: Optional[str] = None) -> np.ndarray:
    """The observation of ``trace`` as a float array ready for batching.

    The one trace-to-array rule shared by the inference network and the
    minibatch packing layer: dict observations are resolved through
    ``observe_key`` (or the single entry), and scalars become length-1
    vectors so stacking over traces always yields a ``(batch, ...)`` array.
    """
    observation = trace.observation
    if isinstance(observation, dict):
        if observe_key is not None:
            observation = observation[observe_key]
        elif len(observation) == 1:
            observation = next(iter(observation.values()))
        else:
            raise ValueError(
                "trace has multiple observes; construct the InferenceNetwork with observe_key"
            )
    return np.atleast_1d(np.asarray(observation, dtype=float))


class TraceDataset:
    """A file-backed dataset of pruned traces."""

    META_FILE = "dataset_meta.pkl"

    def __init__(self, directory: str, records_per_shard: int = 100, cache_size: int = 8) -> None:
        self.directory = directory
        self.store = ShardStore(directory, records_per_shard=records_per_shard, cache_size=cache_size)
        self.address_dictionary = AddressDictionary()
        self.trace_types: List[str] = []
        self.trace_lengths: List[int] = []
        meta_path = os.path.join(directory, self.META_FILE)
        if os.path.exists(meta_path):
            self._load_meta()

    # ----------------------------------------------------------------- writing
    def add_trace(self, trace: Trace) -> int:
        pruned = prune_trace(trace, address_dictionary=self.address_dictionary)
        index = self.store.append(pruned)
        self.trace_types.append(trace.trace_type)
        self.trace_lengths.append(trace.length)
        return index

    def add_traces(self, traces: Iterable[Trace]) -> None:
        for trace in traces:
            self.add_trace(trace)

    def flush(self) -> None:
        self.store.flush()
        with open(os.path.join(self.directory, self.META_FILE), "wb") as handle:
            pickle.dump(
                {
                    "address_dictionary": self.address_dictionary.to_dict(),
                    "trace_types": self.trace_types,
                    "trace_lengths": self.trace_lengths,
                },
                handle,
                protocol=pickle.HIGHEST_PROTOCOL,
            )

    def _load_meta(self) -> None:
        with open(os.path.join(self.directory, self.META_FILE), "rb") as handle:
            payload = pickle.load(handle)
        self.address_dictionary = AddressDictionary.from_dict(payload["address_dictionary"])
        self.trace_types = payload["trace_types"]
        self.trace_lengths = payload["trace_lengths"]

    # ----------------------------------------------------------------- reading
    def __len__(self) -> int:
        return len(self.store)

    def __getitem__(self, index: int) -> Trace:
        pruned = self.store[index]
        return restore_trace(pruned, address_dictionary=self.address_dictionary)

    def get_batch(self, indices: Sequence[int]) -> List[Trace]:
        return [self[i] for i in indices]

    def trace_type_of(self, index: int) -> str:
        return self.trace_types[index]

    def trace_length_of(self, index: int) -> int:
        return self.trace_lengths[index]

    def num_trace_types(self) -> int:
        return len(set(self.trace_types))

    def __iter__(self):
        for i in range(len(self)):
            yield self[i]


class InMemoryTraceDataset:
    """A list-backed dataset exposing the same read interface as :class:`TraceDataset`."""

    def __init__(self, traces: Optional[Sequence[Trace]] = None) -> None:
        self.traces: List[Trace] = list(traces or [])
        self.trace_types: List[str] = [t.trace_type for t in self.traces]
        self.trace_lengths: List[int] = [t.length for t in self.traces]

    def add_trace(self, trace: Trace) -> int:
        self.traces.append(trace)
        self.trace_types.append(trace.trace_type)
        self.trace_lengths.append(trace.length)
        return len(self.traces) - 1

    def add_traces(self, traces: Iterable[Trace]) -> None:
        for trace in traces:
            self.add_trace(trace)

    def flush(self) -> None:  # interface parity with TraceDataset
        pass

    def __len__(self) -> int:
        return len(self.traces)

    def __getitem__(self, index: int) -> Trace:
        return self.traces[index]

    def get_batch(self, indices: Sequence[int]) -> List[Trace]:
        return [self.traces[i] for i in indices]

    def trace_type_of(self, index: int) -> str:
        return self.trace_types[index]

    def trace_length_of(self, index: int) -> int:
        return self.trace_lengths[index]

    def num_trace_types(self) -> int:
        return len(set(self.trace_types))

    def __iter__(self):
        return iter(self.traces)


def generate_dataset(
    model,
    num_traces: int,
    directory: Optional[str] = None,
    records_per_shard: int = 100,
    rng: Optional[RandomState] = None,
):
    """Sample ``num_traces`` prior executions of ``model`` into a dataset.

    With ``directory=None`` an in-memory dataset is returned; otherwise traces
    are pruned and written to disk (the offline-mode dataset of Section 5.4,
    where 15M traces were generated once and reused).
    """
    rng = rng or get_rng()
    if directory is None:
        dataset = InMemoryTraceDataset()
    else:
        dataset = TraceDataset(directory, records_per_shard=records_per_shard)
    for _ in range(num_traces):
        dataset.add_trace(model.prior_trace(rng))
    dataset.flush()
    return dataset
