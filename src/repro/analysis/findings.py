"""The finding model of the invariant linter.

A :class:`Finding` is one detected invariant violation.  Its JSON form is a
**stable external schema** — exactly the five keys ``file``, ``line``,
``rule``, ``severity``, ``message`` — so downstream tooling (the CI findings
artifact, future ``BENCH_*.json``-style trend tracking) can diff findings
across PRs without parsing free-form lint output.  Add new information as new
*rules*, not new keys.

Baseline identity deliberately excludes the line number: a finding is "the
same finding" across PRs if its ``(file, rule, message)`` triple matches, so
unrelated edits that shift code downward do not invalidate the committed
baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = ["Finding", "SEVERITIES", "SCHEMA_KEYS"]

#: the only admissible severities, mild to fatal
SEVERITIES = ("warning", "error")

#: the stable JSON schema — every serialised finding has exactly these keys
SCHEMA_KEYS = ("file", "line", "rule", "severity", "message")


@dataclass(frozen=True)
class Finding:
    """One invariant violation at a source location."""

    file: str      #: path as given to the analyzer (repo-relative in CI)
    line: int      #: 1-indexed source line
    rule: str      #: stable rule id, e.g. ``rng-direct-construction``
    severity: str  #: ``"warning"`` or ``"error"``
    message: str   #: human-readable, one line

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(f"severity must be one of {SEVERITIES}, got {self.severity!r}")

    def to_dict(self) -> Dict[str, object]:
        """The stable five-key JSON form (insertion order = schema order)."""
        return {
            "file": self.file,
            "line": int(self.line),
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "Finding":
        return cls(
            file=str(payload["file"]),
            line=int(payload["line"]),  # type: ignore[arg-type]
            rule=str(payload["rule"]),
            severity=str(payload["severity"]),
            message=str(payload["message"]),
        )

    @property
    def baseline_key(self) -> Tuple[str, str, str]:
        """Line-independent identity used for baseline matching."""
        return (self.file, self.rule, self.message)

    def render(self) -> str:
        return f"{self.file}:{self.line}: [{self.severity}] {self.rule}: {self.message}"
