"""Per-line suppression comments: ``# repro-lint: disable=<rule>[,<rule>...]``.

The escape hatch for findings that are *intentional* and local: put the
comment on the offending line (or on its own line directly above) and the
named rules are suppressed there.  ``disable=all`` suppresses every rule.
Suppressions are deliberately line-scoped — for whole-subsystem exceptions
use the committed baseline instead, which is reviewable as one artifact.

Comments are read with :mod:`tokenize`, so a ``# repro-lint:`` inside a
string literal never counts.
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Dict, Set

__all__ = ["parse_suppressions", "is_suppressed", "SUPPRESS_ALL"]

SUPPRESS_ALL = "all"

_COMMENT_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\-\s]+)")


def parse_suppressions(source: str) -> Dict[int, Set[str]]:
    """Map of line number -> rule ids suppressed by a comment on that line."""
    suppressions: Dict[int, Set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _COMMENT_RE.search(token.string)
            if match is None:
                continue
            rules = {rule.strip() for rule in match.group(1).split(",") if rule.strip()}
            if rules:
                suppressions.setdefault(token.start[0], set()).update(rules)
    except tokenize.TokenizeError:
        pass  # an unparsable file is reported as a syntax-error finding instead
    return suppressions


def is_suppressed(suppressions: Dict[int, Set[str]], line: int, rule: str) -> bool:
    """True if ``rule`` is suppressed at ``line`` (same line or the line above)."""
    for candidate in (line, line - 1):
        rules = suppressions.get(candidate)
        if rules and (rule in rules or SUPPRESS_ALL in rules):
            return True
    return False
