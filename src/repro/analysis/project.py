"""The whole-program model: modules, re-exports, classes, attribute types.

One :class:`Project` is built per analysis run, from every parsed file, and
shared by all checkers.  It answers the questions the interprocedural passes
ask constantly:

* **name resolution** — what does the dotted name ``repro.serving.
  CohortWorkerPool`` *canonically* refer to?  (:meth:`Project.canonicalize`
  follows re-export chains through ``__init__.py`` bindings to
  ``repro.serving.workers.CohortWorkerPool``.)
* **class structure** — which classes exist, what are their (canonical)
  bases, which methods does each one see through its hierarchy, which
  ``self.<attr>`` bindings are locks / condition aliases of locks?
* **attribute types** — ``self.workers = ProcessCohortPool(...)`` in one
  branch and ``CohortWorkerPool(...)`` in another makes ``self.workers`` a
  union type; method calls through the attribute dispatch to both.

The model is deliberately flow-insensitive and alias-light: this repo's
style (attributes assigned in ``__init__``, classes named at construction
sites) makes that approximation precise enough for the lock/RNG/future
checkers, and keeps a whole-repo build well inside the CI runtime budget.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.core import FileContext

__all__ = ["ClassModel", "FunctionDecl", "ModuleModel", "Project"]

#: threading primitives that guard a ``with`` scope
LOCK_TYPES = {"threading.Lock", "threading.RLock", "threading.Condition"}


@dataclass
class FunctionDecl:
    """One function or method definition site."""

    qualname: str
    module: str
    name: str
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    cls: Optional[str] = None  # owning class qualname, if a method
    nested_in: Optional[str] = None  # enclosing function qualname, if nested

    @property
    def params(self) -> List[str]:
        args = self.node.args
        names = [a.arg for a in args.posonlyargs] + [a.arg for a in args.args]
        return names

    @property
    def is_private(self) -> bool:
        return self.name.startswith("_") and not self.name.startswith("__")


@dataclass
class ClassModel:
    """One class definition plus the lock/type facts checkers need."""

    qualname: str
    name: str
    module: str
    file: str
    node: ast.ClassDef
    base_names: List[str] = field(default_factory=list)  # canonical, best effort
    method_quals: Dict[str, str] = field(default_factory=dict)  # name -> qualname
    lock_attrs: Set[str] = field(default_factory=set)
    cond_aliases: Dict[str, str] = field(default_factory=dict)  # condition attr -> wrapped lock
    attr_types: Dict[str, Set[str]] = field(default_factory=dict)  # attr -> class qualnames
    #: attrs assigned from a __init__ parameter: attr -> parameter name
    attr_from_param: Dict[str, str] = field(default_factory=dict)

    def canonical_lock(self, attr: str) -> str:
        return self.cond_aliases.get(attr, attr)


@dataclass
class ModuleModel:
    name: str
    context: FileContext
    #: top-level name -> dotted target (imports re-exported, local defs)
    bindings: Dict[str, str] = field(default_factory=dict)
    lock_globals: Set[str] = field(default_factory=set)  # module-level lock names


class Project:
    """Everything the interprocedural passes know about the analysed tree."""

    def __init__(self, contexts: Sequence[FileContext]) -> None:
        self.contexts = list(contexts)
        self.modules: Dict[str, ModuleModel] = {}
        self.classes: Dict[str, ClassModel] = {}
        self.functions: Dict[str, FunctionDecl] = {}
        for context in self.contexts:
            self._index_module(context)
        self._resolve_bases()
        self._infer_attr_types()
        # Built lazily (some runs never need summaries — e.g. --list-rules).
        self._summaries = None
        self._graph = None

    # ------------------------------------------------------------------ build
    def _index_module(self, context: FileContext) -> None:
        module = ModuleModel(context.module, context)
        self.modules[module.name] = module
        resolver = context.resolver
        for name, target in resolver.aliases.items():
            module.bindings[name] = target
        for stmt in context.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{module.name}.{stmt.name}"
                module.bindings[stmt.name] = qual
                self._index_function(stmt, module.name, qual, cls=None, nested_in=None)
            elif isinstance(stmt, ast.ClassDef):
                qual = f"{module.name}.{stmt.name}"
                module.bindings[stmt.name] = qual
                self._index_class(stmt, context, qual)
            elif isinstance(stmt, ast.Assign) and isinstance(stmt.value, ast.Call):
                dotted = resolver.dotted_name(stmt.value.func)
                if dotted in LOCK_TYPES:
                    for target in stmt.targets:
                        if isinstance(target, ast.Name):
                            module.lock_globals.add(target.id)

    def _index_function(
        self,
        node,
        module: str,
        qualname: str,
        cls: Optional[str],
        nested_in: Optional[str],
    ) -> None:
        decl = FunctionDecl(qualname, module, node.name, node, cls=cls, nested_in=nested_in)
        self.functions[qualname] = decl
        for stmt in ast.walk(node):
            if stmt is node or not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            # Only immediate children get stable qualnames; deeper nesting is
            # rare and inherits the same "runs later, unknown thread" model.
            if stmt in ast.iter_child_nodes(node) or any(
                stmt in getattr(node, attr, ()) for attr in ("body",)
            ):
                nested_qual = f"{qualname}.<locals>.{stmt.name}"
                if nested_qual not in self.functions:
                    self._index_function(stmt, module, nested_qual, cls=cls, nested_in=qualname)

    def _index_class(self, node: ast.ClassDef, context: FileContext, qualname: str) -> None:
        model = ClassModel(qualname, node.name, context.module, context.path, node)
        self.classes[qualname] = model
        resolver = context.resolver
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                method_qual = f"{qualname}.{stmt.name}"
                model.method_quals[stmt.name] = method_qual
                self._index_function(stmt, context.module, method_qual, cls=qualname, nested_in=None)
        # lock attributes + condition aliasing, anywhere in the class body
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Assign) or not isinstance(sub.value, ast.Call):
                continue
            dotted = resolver.dotted_name(sub.value.func)
            if dotted not in LOCK_TYPES:
                continue
            for target in sub.targets:
                attr = _self_attr(target)
                if attr is None:
                    continue
                if dotted == "threading.Condition" and sub.value.args:
                    wrapped = _self_attr(sub.value.args[0])
                    if wrapped is not None:
                        model.cond_aliases[attr] = wrapped
                        model.lock_attrs.add(wrapped)
                        continue
                model.lock_attrs.add(attr)

    def _resolve_bases(self) -> None:
        for model in self.classes.values():
            resolver = self.modules[model.module].context.resolver
            for base in model.node.bases:
                dotted = resolver.dotted_name(base)
                if dotted is None:
                    continue
                canonical = self.canonicalize_from(model.module, dotted)
                model.base_names.append(canonical)

    def _infer_attr_types(self) -> None:
        """``self.attr = SomeClass(...)`` / ``= param`` facts, per class."""
        for model in self.classes.values():
            resolver = self.modules[model.module].context.resolver
            init = None
            for stmt in model.node.body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)) and stmt.name == "__init__":
                    init = stmt
            init_params = (
                {a.arg for a in init.args.args} | {a.arg for a in init.args.kwonlyargs}
                if init is not None
                else set()
            )
            for sub in ast.walk(model.node):
                if not isinstance(sub, ast.Assign):
                    continue
                for target in sub.targets:
                    attr = _self_attr(target)
                    if attr is None:
                        continue
                    if isinstance(sub.value, ast.Call):
                        dotted = resolver.dotted_name(sub.value.func)
                        if dotted is not None:
                            canonical = self.canonicalize_from(model.module, dotted)
                            if canonical in self.classes:
                                model.attr_types.setdefault(attr, set()).add(canonical)
                    elif isinstance(sub.value, ast.Name) and sub.value.id in init_params:
                        model.attr_from_param.setdefault(attr, sub.value.id)

    # ------------------------------------------------------------- resolution
    def canonicalize(self, dotted: str) -> str:
        """Follow re-export chains until ``dotted`` names a definition site.

        ``repro.serving.CohortWorkerPool`` (bound in ``__init__.py`` via
        ``from repro.serving.workers import CohortWorkerPool``) resolves to
        ``repro.serving.workers.CohortWorkerPool``.  Unknown prefixes (numpy,
        stdlib) come back unchanged.
        """
        seen = set()
        current = dotted
        while current not in seen:
            seen.add(current)
            split = self._split_module(current)
            if split is None:
                return current
            module, rest = split
            if not rest:
                return current
            binding = self.modules[module].bindings.get(rest[0])
            if binding is None:
                return current
            candidate = ".".join([binding] + rest[1:])
            if candidate == current:
                return current
            current = candidate
        return current

    def canonicalize_from(self, module: str, dotted: str) -> str:
        """Canonicalize a resolver-produced dotted name used inside ``module``."""
        return self.canonicalize(dotted)

    def _split_module(self, dotted: str) -> Optional[Tuple[str, List[str]]]:
        """Split ``dotted`` at its longest known-module prefix."""
        parts = dotted.split(".")
        for cut in range(len(parts), 0, -1):
            prefix = ".".join(parts[:cut])
            if prefix in self.modules:
                return prefix, parts[cut:]
        return None

    def lookup_function(self, qualname: str) -> Optional[FunctionDecl]:
        return self.functions.get(qualname)

    def resolve_method(self, class_qual: str, method: str) -> Optional[str]:
        """Find ``method`` on ``class_qual`` or its (known) base chain."""
        seen: Set[str] = set()
        queue = [class_qual]
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            model = self.classes.get(current)
            if model is None:
                continue
            if method in model.method_quals:
                return model.method_quals[method]
            queue.extend(model.base_names)
        return None

    def class_of(self, qualname: str) -> Optional[ClassModel]:
        return self.classes.get(qualname)

    def mro_lock_attrs(self, class_qual: str) -> Set[str]:
        """Lock attributes visible on a class through its base chain."""
        attrs: Set[str] = set()
        seen: Set[str] = set()
        queue = [class_qual]
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            model = self.classes.get(current)
            if model is None:
                continue
            attrs |= model.lock_attrs
            queue.extend(model.base_names)
        return attrs

    # --------------------------------------------------------------- summaries
    def summaries(self):
        """The per-function summary table, built once on first use."""
        if self._summaries is None:
            from repro.analysis.summaries import build_summaries

            self._summaries = build_summaries(self)
        return self._summaries

    def graph(self):
        """The resolved call graph + fixpoint facts, built once on first use."""
        if self._graph is None:
            from repro.analysis.fixpoint import CallGraph

            self._graph = CallGraph(self, self.summaries())
        return self._graph


def _self_attr(node: ast.AST) -> Optional[str]:
    """``self.attr`` (optionally through subscripts) -> ``attr``."""
    while isinstance(node, ast.Subscript):
        node = node.value
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None
