"""CLI: ``python -m repro.analysis [paths] [--output text|json] [--baseline F]``.

Exit status is the CI contract: 0 when every finding is covered by the
baseline (or there are none), 1 when new findings exist, 2 on usage errors.
``--output json`` emits the stable schema for artifact upload; stale
baseline entries are reported on stderr either way so the baseline file
shrinks as debt is paid down, but they never fail the gate on their own.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional, Sequence

from repro.analysis.baseline import diff_against_baseline, load_baseline, save_baseline
from repro.analysis.checkers import all_checkers
from repro.analysis.core import run_analysis
from repro.analysis.findings import Finding

DEFAULT_BASELINE = "analysis_baseline.json"


def _list_rules() -> str:
    lines: List[str] = []
    for checker in all_checkers():
        lines.append(f"{checker.name}:")
        for rule, description in sorted(checker.rules.items()):
            lines.append(f"  {rule:28s} {description}")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="AST invariant linter: RNG discipline, lock discipline, "
        "batched shape contracts, pickle safety.",
    )
    parser.add_argument("paths", nargs="*", default=["src"], help="files or directories (default: src)")
    parser.add_argument("--output", choices=("text", "json"), default="text")
    parser.add_argument(
        "--baseline",
        default=None,
        help=f"baseline file (default: {DEFAULT_BASELINE} when it exists)",
    )
    parser.add_argument("--no-baseline", action="store_true", help="ignore any baseline file")
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="accept the current findings as the new baseline and exit 0",
    )
    parser.add_argument("--report", default=None, help="also write the JSON report to this path")
    parser.add_argument("--list-rules", action="store_true", help="list every rule and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0

    try:
        findings = run_analysis(args.paths, all_checkers())
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    baseline_path = args.baseline or DEFAULT_BASELINE
    if args.write_baseline:
        save_baseline(baseline_path, findings)
        print(f"wrote {len(findings)} finding(s) to {baseline_path}", file=sys.stderr)
        return 0

    baseline = None
    if not args.no_baseline and (args.baseline is not None or os.path.exists(baseline_path)):
        try:
            baseline = load_baseline(baseline_path)
        except (OSError, ValueError, KeyError, TypeError) as error:
            print(f"error: cannot read baseline {baseline_path}: {error}", file=sys.stderr)
            return 2

    if baseline is not None:
        new, stale = diff_against_baseline(findings, baseline)
    else:
        new, stale = list(findings), []

    report = {
        "findings": [finding.to_dict() for finding in findings],
        "new": [finding.to_dict() for finding in new],
        "baseline": baseline_path if baseline is not None else None,
        "stale_baseline_entries": [
            {"file": file, "rule": rule, "message": message} for file, rule, message in stale
        ],
    }
    if args.report:
        with open(args.report, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")

    if args.output == "json":
        print(json.dumps(report, indent=2))
    else:
        for finding in new:
            print(finding.render())
        covered = len(findings) - len(new)
        summary = f"{len(new)} new finding(s), {covered} covered by baseline"
        print(summary, file=sys.stderr)

    for file, rule, message in stale:
        print(
            f"stale baseline entry (no longer found): {file}: {rule}: {message}",
            file=sys.stderr,
        )

    return 1 if new else 0


if __name__ == "__main__":
    sys.exit(main())
