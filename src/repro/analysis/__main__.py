"""CLI: ``python -m repro.analysis [paths] [--format text|json|github] ...``.

Exit status is the CI contract: 0 when every gating finding is covered by the
baseline (or there are none), 1 when new findings at or above ``--severity``
exist, 2 on usage errors.  The analysis itself is always whole-program — the
call-graph fixpoint needs every module — but ``--changed-only`` scopes the
*reporting* (and the gate) to files touched since ``--changed-base``, so a
PR job only fails on findings the PR could have introduced.
``--format github`` emits ``::error``/``::warning`` workflow annotations;
``--format json`` emits the stable schema for artifact upload.  Stale
baseline entries are reported on stderr either way so the baseline file
shrinks as debt is paid down, but they never fail the gate on their own.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from typing import List, Optional, Sequence, Set

from repro.analysis.baseline import diff_against_baseline, load_baseline, save_baseline
from repro.analysis.checkers import all_checkers
from repro.analysis.core import run_analysis
from repro.analysis.findings import SEVERITIES, Finding

DEFAULT_BASELINE = "analysis_baseline.json"


def _list_rules() -> str:
    lines: List[str] = []
    for checker in all_checkers():
        lines.append(f"{checker.name}:")
        for rule, description in sorted(checker.rules.items()):
            lines.append(f"  {rule:28s} {description}")
    return "\n".join(lines)


def _changed_files(base: str) -> Optional[Set[str]]:
    """Paths changed relative to ``base``, plus untracked files (repo-relative)."""
    changed: Set[str] = set()
    for argv in (
        ["git", "diff", "--name-only", base, "--"],
        ["git", "ls-files", "--others", "--exclude-standard"],
    ):
        try:
            proc = subprocess.run(
                argv, capture_output=True, text=True, check=True, timeout=30
            )
        except (OSError, subprocess.SubprocessError) as error:
            print(f"error: --changed-only needs git: {error}", file=sys.stderr)
            return None
        changed.update(line.strip() for line in proc.stdout.splitlines() if line.strip())
    return {path.replace(os.sep, "/") for path in changed}


def _github_line(finding: Finding) -> str:
    level = "error" if finding.severity == "error" else "warning"
    message = finding.message.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")
    return (
        f"::{level} file={finding.file},line={finding.line},"
        f"title={finding.rule}::{message}"
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Whole-program invariant linter: RNG discipline and stream "
        "ownership, interprocedural lock discipline, future resolution, "
        "deterministic iteration, batched shape contracts, pickle safety.",
    )
    parser.add_argument("paths", nargs="*", default=["src"], help="files or directories (default: src)")
    parser.add_argument(
        "--format",
        dest="format",
        choices=("text", "json", "github"),
        default=None,
        help="output format (github = workflow annotations)",
    )
    parser.add_argument(
        "--output",
        choices=("text", "json"),
        default=None,
        help="alias of --format, kept for compatibility",
    )
    parser.add_argument(
        "--severity",
        choices=SEVERITIES,
        default="error",
        help="gate threshold: exit nonzero only for new findings at or above "
        "this severity (default: error; warnings are always reported but "
        "never fail the run unless --severity warning)",
    )
    parser.add_argument(
        "--changed-only",
        action="store_true",
        help="report (and gate on) only findings in files changed since "
        "--changed-base; the analysis itself stays whole-program",
    )
    parser.add_argument(
        "--changed-base",
        default="HEAD",
        help="git ref --changed-only diffs against (default: HEAD)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help=f"baseline file (default: {DEFAULT_BASELINE} when it exists)",
    )
    parser.add_argument("--no-baseline", action="store_true", help="ignore any baseline file")
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="accept the current findings as the new baseline and exit 0",
    )
    parser.add_argument("--report", default=None, help="also write the JSON report to this path")
    parser.add_argument("--list-rules", action="store_true", help="list every rule and exit")
    args = parser.parse_args(argv)

    if args.format is not None and args.output is not None and args.format != args.output:
        print("error: --format and --output disagree; pass one of them", file=sys.stderr)
        return 2
    out_format = args.format or args.output or "text"

    if args.list_rules:
        print(_list_rules())
        return 0

    try:
        findings = run_analysis(args.paths, all_checkers())
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    if args.changed_only:
        changed = _changed_files(args.changed_base)
        if changed is None:
            return 2
        findings = [
            finding
            for finding in findings
            if finding.file.replace(os.sep, "/") in changed
        ]

    baseline_path = args.baseline or DEFAULT_BASELINE
    if args.write_baseline:
        save_baseline(baseline_path, findings)
        print(f"wrote {len(findings)} finding(s) to {baseline_path}", file=sys.stderr)
        return 0

    baseline = None
    if not args.no_baseline and (args.baseline is not None or os.path.exists(baseline_path)):
        try:
            baseline = load_baseline(baseline_path)
        except (OSError, ValueError, KeyError, TypeError) as error:
            print(f"error: cannot read baseline {baseline_path}: {error}", file=sys.stderr)
            return 2

    if baseline is not None:
        new, stale = diff_against_baseline(findings, baseline)
    else:
        new, stale = list(findings), []

    threshold = SEVERITIES.index(args.severity)
    gating = [f for f in new if SEVERITIES.index(f.severity) >= threshold]

    report = {
        "findings": [finding.to_dict() for finding in findings],
        "new": [finding.to_dict() for finding in new],
        "baseline": baseline_path if baseline is not None else None,
        "severity_gate": args.severity,
        "gating": [finding.to_dict() for finding in gating],
        "stale_baseline_entries": [
            {"file": file, "rule": rule, "message": message} for file, rule, message in stale
        ],
    }
    if args.report:
        with open(args.report, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")

    if out_format == "json":
        print(json.dumps(report, indent=2))
    else:
        for finding in new:
            if out_format == "github":
                print(_github_line(finding))
            else:
                print(finding.render())
        covered = len(findings) - len(new)
        summary = (
            f"{len(new)} new finding(s) ({len(gating)} at/above --severity "
            f"{args.severity}), {covered} covered by baseline"
        )
        print(summary, file=sys.stderr)

    for file, rule, message in stale:
        print(
            f"stale baseline entry (no longer found): {file}: {rule}: {message}",
            file=sys.stderr,
        )

    return 1 if gating else 0


if __name__ == "__main__":
    sys.exit(main())
