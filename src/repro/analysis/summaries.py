"""Per-function summaries: the facts the interprocedural fixpoint consumes.

Each function/method indexed by the :class:`~repro.analysis.project.Project`
gets one :class:`FunctionSummary` extracted in a single AST walk:

* **locks** — ``with self.<lock>:`` / ``with <module lock>:`` acquisitions
  (with the lock set already held at that point), writes to ``self.<attr>``
  state with the held set at the write, and blocking operations
  (``time.sleep``, ``Future.result``, ``join``, ``Queue.get``, foreign
  ``wait``) with the held set at the call.
* **calls** — every call site with enough structure to resolve it later:
  ``self.m(...)``, ``self.attr.m(...)``, dotted/module calls, plus the
  bare-name/attribute argument references that feed the callable-argument
  flows (``pool.submit(self._run_cohort, ...)``, ``Thread(target=...)``,
  ``MicroBatchScheduler(dispatch=self._dispatch_cohort)``).
* **rng** — generator constructions and local names bound to RNG values
  (constructed, ``get_rng()``, or derived via ``.spawn``), with loop depth,
  for the stream-ownership pass.

Lock identity is *qualified*: ``self._lock`` inside a method of
``repro.serving.workers.CohortWorkerPool`` becomes
``repro.serving.workers.CohortWorkerPool._lock`` (the attribute is resolved
through the base-class chain to its defining class, and
``Condition(self._lock)`` aliases collapse onto the wrapped lock), so held
sets compose across class and module boundaries.

Nested ``def``s are indexed as their own functions (they run later, on an
unknown thread, so they inherit no lock context); lambdas are walked inline
with an empty held set and their calls marked *deferred*.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.analysis.project import FunctionDecl, Project

__all__ = [
    "Acquire",
    "AttrWrite",
    "BlockingOp",
    "CallSite",
    "FunctionSummary",
    "RNG_CONSTRUCTORS",
    "RngCreation",
    "RngLocal",
    "build_summaries",
    "display_name",
    "short_lock",
]

#: generator/stream constructors (both numpy's and the repo's own)
RNG_CONSTRUCTORS = {
    "numpy.random.default_rng",
    "numpy.random.Generator",
    "numpy.random.SeedSequence",
    "numpy.random.RandomState",
    "numpy.random.PCG64",
    "numpy.random.MT19937",
    "numpy.random.Philox",
    "numpy.random.SFC64",
    "repro.common.rng.RandomState",
    "repro.common.rng.get_rng",
}

#: container methods that mutate their receiver
_MUTATORS = {
    "append", "extend", "insert", "remove", "pop", "popitem", "clear", "update",
    "setdefault", "add", "discard", "appendleft", "extendleft", "popleft",
    "move_to_end", "set",
}

_LOOP_NODES = (
    ast.For, ast.AsyncFor, ast.While,
    ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp,
)


@dataclass
class Acquire:
    lock: str                 # qualified lock id
    held: FrozenSet[str]      # qualified locks already held at the acquisition
    line: int


@dataclass
class AttrWrite:
    attr: str                 # bare self-attribute name (class known from decl)
    line: int
    held: FrozenSet[str]
    deferred: bool = False    # inside a lambda: entry-held locks do not apply


@dataclass
class BlockingOp:
    desc: str                 # e.g. "time.sleep", "Future.result"
    line: int
    held: FrozenSet[str]
    #: the lock a condition-wait releases while waiting (waiting on the held
    #: condition is the sanctioned pattern, not a stall), None otherwise
    releases: Optional[str] = None


@dataclass
class CallSite:
    kind: str                 # 'self' | 'attr' | 'dotted' | 'opaque'
    target: object            # method name | (attr, method) | dotted string
    line: int
    held: FrozenSet[str]
    deferred: bool            # lexically inside a lambda: runs later
    in_loop: bool
    node: ast.Call
    #: bare callable-ish argument references: (slot, ('self'|'name'|'dotted', payload))
    arg_refs: List[Tuple[object, Tuple[str, str]]] = field(default_factory=list)


@dataclass
class RngCreation:
    dotted: str
    line: int
    in_loop: bool


@dataclass
class RngLocal:
    name: str
    via: str                  # 'construct' | 'get_rng' | 'spawn'
    line: int
    in_loop: bool


@dataclass
class FunctionSummary:
    decl: FunctionDecl
    path: str
    acquires: List[Acquire] = field(default_factory=list)
    writes: List[AttrWrite] = field(default_factory=list)
    blocking: List[BlockingOp] = field(default_factory=list)
    calls: List[CallSite] = field(default_factory=list)
    rng_creations: List[RngCreation] = field(default_factory=list)
    rng_locals: Dict[str, RngLocal] = field(default_factory=dict)


def display_name(project: Project, qualname: str) -> str:
    """Human-facing short name: ``Class.method`` or ``module.func``."""
    decl = project.functions.get(qualname)
    if decl is not None and decl.cls is not None:
        return f"{decl.cls.rsplit('.', 1)[-1]}.{decl.name}"
    return ".".join(qualname.split(".")[-2:])


def short_lock(lock: str) -> str:
    """``pkg.mod.Class._lock`` -> ``Class._lock`` for messages."""
    return ".".join(lock.split(".")[-2:])


def _self_attr(node: ast.AST) -> Optional[str]:
    while isinstance(node, ast.Subscript):
        node = node.value
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _receiver_text(node: ast.AST) -> str:
    parts: List[str] = []
    while True:
        if isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        elif isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.Name):
            parts.append(node.id)
            break
        else:
            break
    return ".".join(reversed(parts))


class _LockEnv:
    """Lock-attribute resolution for one function's ``self``/globals."""

    def __init__(self, project: Project, decl: FunctionDecl) -> None:
        self._project = project
        self._module = decl.module
        self._aliases: Dict[str, str] = {}
        self._attr_owner: Dict[str, str] = {}  # canonical attr -> defining class qual
        self._globals = {
            name: f"{decl.module}.{name}"
            for name in project.modules[decl.module].lock_globals
        }
        if decl.cls is not None:
            # Merge condition aliases and lock attrs through the base chain;
            # the *defining* class qualifies the lock so a subclass and its
            # base agree on the identity of an inherited lock.
            seen = set()
            queue = [decl.cls]
            while queue:
                current = queue.pop(0)
                if current in seen:
                    continue
                seen.add(current)
                model = project.classes.get(current)
                if model is None:
                    continue
                for cond, wrapped in model.cond_aliases.items():
                    self._aliases.setdefault(cond, wrapped)
                for attr in model.lock_attrs:
                    self._attr_owner.setdefault(attr, current)
                queue.extend(model.base_names)

    def lock_id(self, node: ast.AST) -> Optional[str]:
        """Qualified lock id of a ``with`` context expression, if it is one."""
        attr = _self_attr(node)
        if attr is not None:
            canonical = self._aliases.get(attr, attr)
            owner = self._attr_owner.get(canonical)
            if owner is not None:
                return f"{owner}.{canonical}"
            return None
        if isinstance(node, ast.Name):
            return self._globals.get(node.id)
        return None

    def attr_lock_id(self, attr: str) -> Optional[str]:
        canonical = self._aliases.get(attr, attr)
        owner = self._attr_owner.get(canonical)
        if owner is not None:
            return f"{owner}.{canonical}"
        return None

    def is_lock_attr(self, attr: str) -> bool:
        return self.attr_lock_id(attr) is not None


class _FunctionWalker:
    """One pass over a function body collecting every summary fact."""

    def __init__(self, project: Project, decl: FunctionDecl, summary: FunctionSummary) -> None:
        self.project = project
        self.decl = decl
        self.summary = summary
        self.resolver = project.modules[decl.module].context.resolver
        self.env = _LockEnv(project, decl)
        self.params = set(decl.params)

    def run(self) -> None:
        for stmt in self.decl.node.body:
            self._walk(stmt, frozenset(), deferred=False, in_loop=False)

    # --------------------------------------------------------------- the walk
    def _walk(self, node: ast.AST, held: FrozenSet[str], deferred: bool, in_loop: bool) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return  # indexed as its own function; runs later on an unknown thread
        if isinstance(node, ast.Lambda):
            self._walk(node.body, frozenset(), deferred=True, in_loop=in_loop)
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            acquired = list(held)
            for item in node.items:
                self._walk(item.context_expr, held, deferred, in_loop)
                lock = self.env.lock_id(item.context_expr)
                if lock is not None and lock not in acquired:
                    self.summary.acquires.append(
                        Acquire(lock, frozenset(acquired), item.context_expr.lineno)
                    )
                    acquired.append(lock)
            inner = frozenset(acquired)
            for child in node.body:
                self._walk(child, inner, deferred, in_loop)
            return
        if isinstance(node, _LOOP_NODES):
            for child in ast.iter_child_nodes(node):
                self._walk(child, held, deferred, in_loop=True)
            return
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                self._record_write(target, held, deferred)
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                self._record_rng_binding(node, in_loop)
            if node.value is not None:
                self._walk(node.value, held, deferred, in_loop)
            return
        if isinstance(node, ast.Delete):
            for target in node.targets:
                self._record_write(target, held, deferred)
            return
        if isinstance(node, ast.Call):
            self._record_call(node, held, deferred, in_loop)
            for child in ast.iter_child_nodes(node):
                self._walk(child, held, deferred, in_loop)
            return
        for child in ast.iter_child_nodes(node):
            self._walk(child, held, deferred, in_loop)

    # ------------------------------------------------------------------ facts
    def _record_write(self, target: ast.AST, held: FrozenSet[str], deferred: bool) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._record_write(element, held, deferred)
            return
        if isinstance(target, ast.Starred):
            self._record_write(target.value, held, deferred)
            return
        attr = _self_attr(target)
        if attr is None or self.env.is_lock_attr(attr):
            return
        self.summary.writes.append(AttrWrite(attr, target.lineno, held, deferred))

    def _record_rng_binding(self, node: ast.Assign, in_loop: bool) -> None:
        call = node.value
        assert isinstance(call, ast.Call)
        dotted = self.resolver.dotted_name(call.func)
        via: Optional[str] = None
        if dotted in RNG_CONSTRUCTORS:
            via = "get_rng" if dotted.endswith(".get_rng") else "construct"
        elif isinstance(call.func, ast.Attribute) and call.func.attr == "spawn":
            via = "spawn"
        if via is None:
            return
        for target in node.targets:
            if isinstance(target, ast.Name):
                self.summary.rng_locals[target.id] = RngLocal(target.id, via, node.lineno, in_loop)

    def _record_call(self, node: ast.Call, held: FrozenSet[str], deferred: bool, in_loop: bool) -> None:
        func = node.func
        dotted = self.resolver.dotted_name(func)
        if dotted in RNG_CONSTRUCTORS:
            self.summary.rng_creations.append(RngCreation(dotted, node.lineno, in_loop))

        kind = "opaque"
        target: object = None
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "self"
        ):
            kind, target = "self", func.attr
        elif isinstance(func, ast.Attribute):
            receiver_attr = _self_attr(func.value)
            if receiver_attr is not None:
                kind, target = "attr", (receiver_attr, func.attr)
                if func.attr in _MUTATORS and not self.env.is_lock_attr(receiver_attr):
                    self.summary.writes.append(AttrWrite(receiver_attr, node.lineno, held, deferred))
            elif dotted is not None:
                kind, target = "dotted", dotted
        elif isinstance(func, ast.Name):
            kind, target = "dotted", dotted if dotted is not None else func.id

        site = CallSite(kind, target, node.lineno, held, deferred, in_loop, node)
        slots: List[Tuple[object, ast.expr]] = list(enumerate(node.args))
        slots += [(kw.arg, kw.value) for kw in node.keywords if kw.arg is not None]
        for slot, value in slots:
            ref = self._arg_ref(value)
            if ref is not None:
                site.arg_refs.append((slot, ref))
        self.summary.calls.append(site)

        if isinstance(func, ast.Attribute) and not deferred:
            self._check_blocking(node, func, held)

    def _arg_ref(self, value: ast.expr) -> Optional[Tuple[str, str]]:
        attr = _self_attr(value)
        if attr is not None and isinstance(value, ast.Attribute):
            return ("self", attr)
        if isinstance(value, ast.Name):
            # Resolve through the module's imports so a job body imported from
            # another module still resolves: ``submit(job_body, ...)`` with
            # ``from repro.serving.jobs import job_body`` must record the full
            # dotted path, not the local spelling.
            dotted = self.resolver.dotted_name(value)
            return ("name", dotted if dotted is not None else value.id)
        if isinstance(value, ast.Attribute):
            dotted = self.resolver.dotted_name(value)
            if dotted is not None:
                return ("dotted", dotted)
        return None

    def _check_blocking(self, node: ast.Call, func: ast.Attribute, held: FrozenSet[str]) -> None:
        dotted = self.resolver.dotted_name(func)
        desc: Optional[str] = None
        releases: Optional[str] = None
        if dotted == "time.sleep":
            desc = "time.sleep"
        elif func.attr == "result":
            desc = "Future.result"
        elif func.attr == "join" and isinstance(func.value, (ast.Name, ast.Attribute)):
            desc = "join"
        elif func.attr == "get" and "queue" in _receiver_text(func.value).lower():
            desc = "Queue.get"
        elif func.attr == "wait":
            attr = _self_attr(func.value)
            if attr is not None:
                releases = self.env.attr_lock_id(attr)
            desc = "wait on a foreign object" if releases is None else "Condition.wait"
        if desc is not None:
            self.summary.blocking.append(BlockingOp(desc, node.lineno, held, releases))


def build_summaries(project: Project) -> Dict[str, FunctionSummary]:
    """One :class:`FunctionSummary` per indexed function, in one walk each."""
    summaries: Dict[str, FunctionSummary] = {}
    for qualname, decl in project.functions.items():
        path = project.modules[decl.module].context.path
        summary = FunctionSummary(decl, path)
        _FunctionWalker(project, decl, summary).run()
        summaries[qualname] = summary
    return summaries
