"""Shared visitor core of the invariant linter.

The framework is deliberately small: a :class:`Checker` receives one parsed
:class:`FileContext` at a time and returns :class:`Finding` objects; the
:func:`run_analysis` driver owns file discovery, parsing, suppression
filtering and ordering.  Checkers that need *cross-file* state (the lock
checker's lock-order graph spans classes defined in different modules)
implement :meth:`Checker.finalize`, which runs once after every file has been
visited.

:class:`ImportResolver` is the one piece of shared semantic machinery: it
maps AST name/attribute chains back to the dotted module path they were
imported from (``np.random.default_rng`` -> ``numpy.random.default_rng``,
``from repro.common.rng import RandomState`` -> ``repro.common.rng.RandomState``),
so checkers match *what a name means*, not what it is spelled as.
"""

from __future__ import annotations

import ast
import os
from typing import Dict, Iterable, List, Optional, Sequence

from repro.analysis.findings import Finding
from repro.analysis.suppressions import is_suppressed, parse_suppressions

__all__ = ["Checker", "FileContext", "ImportResolver", "discover_files", "run_analysis"]


class FileContext:
    """One parsed source file, shared by every checker."""

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        self.suppressions = parse_suppressions(source)
        #: normalised path with forward slashes, for portable scope matching
        self.norm_path = path.replace(os.sep, "/")

    def in_scope(self, *fragments: str) -> bool:
        """True if the file path contains any of the given fragments."""
        return any(fragment in self.norm_path for fragment in fragments)


class ImportResolver(ast.NodeVisitor):
    """Resolve local names to the dotted import paths they are bound to."""

    def __init__(self, tree: ast.Module) -> None:
        self.aliases: Dict[str, str] = {}
        self.visit(tree)

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.aliases[alias.asname or alias.name.split(".")[0]] = (
                alias.name if alias.asname else alias.name.split(".")[0]
            )
            if alias.asname:
                self.aliases[alias.asname] = alias.name

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module is None or node.level:
            return  # relative imports: out of scope for the repo's style
        for alias in node.names:
            self.aliases[alias.asname or alias.name] = f"{node.module}.{alias.name}"

    def dotted_name(self, node: ast.AST) -> Optional[str]:
        """The fully-resolved dotted path of a Name/Attribute chain, if any."""
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self.aliases.get(node.id, node.id)
        parts.append(root)
        return ".".join(reversed(parts))


class Checker:
    """Base class of one invariant checker (a family of related rules)."""

    #: checker name, used in ``--list-rules`` grouping
    name: str = "checker"
    #: rule id -> one-line description (the ``--list-rules`` output)
    rules: Dict[str, str] = {}

    def relevant(self, path: str) -> bool:
        """Whether this checker wants to visit ``path`` at all."""
        return path.endswith(".py")

    def check(self, context: FileContext) -> List[Finding]:
        """Per-file pass; return this file's findings."""
        raise NotImplementedError

    def finalize(self) -> List[Finding]:
        """Cross-file pass, run once after every file was visited."""
        return []


def discover_files(paths: Sequence[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    found: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(d for d in dirnames if not d.startswith(".") and d != "__pycache__")
                for filename in sorted(filenames):
                    if filename.endswith(".py"):
                        found.append(os.path.join(dirpath, filename))
        elif path.endswith(".py"):
            found.append(path)
        else:
            raise FileNotFoundError(f"not a Python file or directory: {path}")
    return sorted(dict.fromkeys(found))


def run_analysis(paths: Sequence[str], checkers: Iterable[Checker]) -> List[Finding]:
    """Run every checker over every discovered file; return ordered findings.

    Unreadable or syntactically invalid files surface as ``syntax-error``
    findings rather than crashing the run — a file the linter cannot parse
    cannot be certified either.  Suppression comments are applied here, so
    individual checkers never need to think about them.
    """
    checkers = list(checkers)
    findings: List[Finding] = []
    for path in discover_files(paths):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
            tree = ast.parse(source, filename=path)
        except (OSError, SyntaxError, ValueError) as error:
            line = getattr(error, "lineno", 1) or 1
            findings.append(
                Finding(path, int(line), "syntax-error", "error", f"cannot analyse file: {error}")
            )
            continue
        context = FileContext(path, source, tree)
        for checker in checkers:
            if not checker.relevant(path):
                continue
            for finding in checker.check(context):
                if not is_suppressed(context.suppressions, finding.line, finding.rule):
                    findings.append(finding)
    for checker in checkers:
        findings.extend(checker.finalize())
    findings.sort(key=lambda f: (f.file, f.line, f.rule, f.message))
    return findings
