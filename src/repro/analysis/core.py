"""Shared visitor core of the invariant linter.

The framework has two tiers.  Per-file: a :class:`Checker` receives one
parsed :class:`FileContext` at a time and returns :class:`Finding` objects.
Whole-program: before any per-file pass runs, the driver parses *every* file
exactly once, builds one :class:`repro.analysis.project.Project` (module
graph, re-export resolution, class hierarchy, per-function summaries and the
call-graph fixpoint), and hands it to each checker via
:meth:`Checker.begin_project`; checkers that reason across module boundaries
(held locks, RNG stream ownership, future resolution) read everything they
need from that shared model instead of re-walking ASTs.  Cross-file findings
are emitted from :meth:`Checker.finalize`, which runs once after every file
has been visited.

:class:`ImportResolver` is the shared semantic bedrock: it maps AST
name/attribute chains back to the dotted module path they were imported from
(``np.random.default_rng`` -> ``numpy.random.default_rng``,
``from repro.common.rng import RandomState`` -> ``repro.common.rng.RandomState``),
so checkers match *what a name means*, not what it is spelled as.  It is
module-aware: given the module's dotted name it resolves relative imports
(``from ..common.rng import RandomState`` inside ``repro.serving.workers``),
and module-level re-bindings shadow earlier imports in lexical order.
"""

from __future__ import annotations

import ast
import os
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.findings import Finding
from repro.analysis.suppressions import is_suppressed, parse_suppressions

__all__ = [
    "Checker",
    "FileContext",
    "ImportResolver",
    "discover_files",
    "module_name_for",
    "parse_contexts",
    "run_analysis",
]


def module_name_for(path: str, root: Optional[str] = None) -> str:
    """Dotted module name of ``path``, anchored at ``root`` when given.

    ``src/`` prefixes are stripped (the repo's layout), ``__init__.py`` maps
    to its package, and a file outside any recognisable package root falls
    back to its stem — good enough for flat test fixtures.
    """
    norm = path.replace(os.sep, "/")
    if root:
        root_norm = root.replace(os.sep, "/").rstrip("/")
        if norm.startswith(root_norm + "/"):
            norm = norm[len(root_norm) + 1 :]
        elif norm == root_norm:
            norm = os.path.basename(norm)
    parts = [part for part in norm.split("/") if part not in ("", ".")]
    if parts and parts[0] == "src":
        parts = parts[1:]
    # Anchor at the innermost package root we recognise ("repro" in-tree,
    # or the path the caller rooted the run at for fixtures).
    if "repro" in parts:
        parts = parts[parts.index("repro") :]
    if not parts:
        return ""
    last = parts[-1]
    if last.endswith(".py"):
        last = last[: -len(".py")]
    if last == "__init__":
        parts = parts[:-1]
    else:
        parts = parts[:-1] + [last]
    return ".".join(parts)


class FileContext:
    """One parsed source file, shared by every checker."""

    def __init__(
        self, path: str, source: str, tree: ast.Module, module: Optional[str] = None
    ) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        self.suppressions = parse_suppressions(source)
        #: normalised path with forward slashes, for portable scope matching
        self.norm_path = path.replace(os.sep, "/")
        self.is_package = os.path.basename(path) == "__init__.py"
        self.module = module if module is not None else module_name_for(path)
        #: one resolver per file, shared by every checker (parse-once contract)
        self.resolver = ImportResolver(tree, module=self.module, is_package=self.is_package)

    def in_scope(self, *fragments: str) -> bool:
        """True if the file path contains any of the given fragments."""
        return any(fragment in self.norm_path for fragment in fragments)

    def in_test_scope(self) -> bool:
        """True for test/benchmark files (looser RNG-construction policy)."""
        name = os.path.basename(self.norm_path)
        return (
            "tests/" in self.norm_path
            or "benchmarks/" in self.norm_path
            or name.startswith("test_")
            or name == "conftest.py"
        )


class ImportResolver:
    """Resolve local names to the dotted import paths they are bound to.

    Statements are processed in lexical order, so a later module-level
    binding (``def random(): ...`` after ``import random``) shadows the
    import — :meth:`dotted_name` then refuses to claim the shadowed name
    still means the module.  Relative imports are resolved against the
    module's own dotted name when one is known.
    """

    def __init__(
        self,
        tree: ast.Module,
        module: Optional[str] = None,
        is_package: bool = False,
    ) -> None:
        self.module = module
        if module and not is_package:
            self.package = module.rsplit(".", 1)[0] if "." in module else ""
        else:
            self.package = module or ""
        self.aliases: Dict[str, str] = {}
        self._process(tree.body, module_level=True)

    # ------------------------------------------------------------- processing
    def _process(self, stmts: Sequence[ast.stmt], module_level: bool) -> None:
        for stmt in stmts:
            if isinstance(stmt, ast.Import):
                self._bind_import(stmt)
            elif isinstance(stmt, ast.ImportFrom):
                self._bind_import_from(stmt)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                if module_level:
                    self.aliases.pop(stmt.name, None)
                self._process(stmt.body, module_level=False)
            elif isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                if module_level:
                    targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
                    for target in targets:
                        if isinstance(target, ast.Name):
                            self.aliases.pop(target.id, None)
            else:
                for child_body in ("body", "orelse", "finalbody"):
                    children = getattr(stmt, child_body, None)
                    if children:
                        self._process(children, module_level=module_level)
                for handler in getattr(stmt, "handlers", ()) or ():
                    self._process(handler.body, module_level=module_level)

    def _bind_import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.asname:
                self.aliases[alias.asname] = alias.name
            else:
                root = alias.name.split(".")[0]
                self.aliases[root] = root

    def _resolve_relative_base(self, level: int) -> Optional[str]:
        """Anchor package of a level-``level`` relative import, if known."""
        if not self.package and level > 1:
            return None
        parts = self.package.split(".") if self.package else []
        if level - 1 > len(parts):
            return None
        kept = parts[: len(parts) - (level - 1)]
        return ".".join(kept)

    def _bind_import_from(self, node: ast.ImportFrom) -> None:
        if node.level:
            if self.module is None:
                return  # no anchor: keep the pre-module-aware behaviour
            base = self._resolve_relative_base(node.level)
            if base is None:
                return
            module = f"{base}.{node.module}" if node.module else base
            module = module.strip(".")
        else:
            if node.module is None:
                return
            module = node.module
        for alias in node.names:
            if alias.name == "*":
                continue
            target = f"{module}.{alias.name}" if module else alias.name
            self.aliases[alias.asname or alias.name] = target

    # -------------------------------------------------------------- resolution
    def dotted_name(self, node: ast.AST) -> Optional[str]:
        """The fully-resolved dotted path of a Name/Attribute chain, if any."""
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self.aliases.get(node.id, node.id)
        parts.append(root)
        return ".".join(reversed(parts))


class Checker:
    """Base class of one invariant checker (a family of related rules)."""

    #: checker name, used in ``--list-rules`` grouping
    name: str = "checker"
    #: rule id -> one-line description (the ``--list-rules`` output)
    rules: Dict[str, str] = {}

    def relevant(self, path: str) -> bool:
        """Whether this checker wants to visit ``path`` at all."""
        return path.endswith(".py")

    def begin_project(self, project) -> None:
        """Receive the shared whole-program model before any file pass runs."""

    def check(self, context: FileContext) -> List[Finding]:
        """Per-file pass; return this file's findings."""
        raise NotImplementedError

    def finalize(self) -> List[Finding]:
        """Cross-file pass, run once after every file was visited."""
        return []


def discover_files(paths: Sequence[str]) -> List[Tuple[str, str]]:
    """Expand files/directories into sorted, de-duplicated (path, root) pairs.

    ``root`` is the analysis root the file was found under — the anchor for
    deriving its dotted module name.
    """
    found: Dict[str, str] = {}
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(d for d in dirnames if not d.startswith(".") and d != "__pycache__")
                for filename in sorted(filenames):
                    if filename.endswith(".py"):
                        found.setdefault(os.path.join(dirpath, filename), path)
        elif path.endswith(".py"):
            found.setdefault(path, os.path.dirname(path))
        else:
            raise FileNotFoundError(f"not a Python file or directory: {path}")
    return sorted(found.items())


def parse_contexts(
    paths: Sequence[str],
) -> Tuple[List[FileContext], List[Finding]]:
    """Parse every discovered file exactly once.

    Returns the parsed contexts plus ``syntax-error`` findings for files that
    could not be read or parsed — a file the linter cannot parse cannot be
    certified either, so those fail the gate rather than crash the run.
    """
    contexts: List[FileContext] = []
    errors: List[Finding] = []
    for path, root in discover_files(paths):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
            tree = ast.parse(source, filename=path)
        except (OSError, SyntaxError, ValueError) as error:
            line = getattr(error, "lineno", 1) or 1
            errors.append(
                Finding(path, int(line), "syntax-error", "error", f"cannot analyse file: {error}")
            )
            continue
        contexts.append(FileContext(path, source, tree, module=module_name_for(path, root)))
    return contexts, errors


def run_analysis(paths: Sequence[str], checkers: Iterable[Checker]) -> List[Finding]:
    """Run every checker over every discovered file; return ordered findings.

    Files are parsed once and the resulting ASTs (plus the whole-program
    :class:`~repro.analysis.project.Project` built from them) are shared by
    every checker — the fixpoint engine must not multiply parse cost.
    Suppression comments are applied here for per-file *and* cross-file
    findings, so individual checkers never need to think about them.
    """
    from repro.analysis.project import Project  # local: core must stay import-light

    checkers = list(checkers)
    contexts, findings = parse_contexts(paths)
    project = Project(contexts)
    suppressions_by_path = {context.path: context.suppressions for context in contexts}
    for checker in checkers:
        checker.begin_project(project)
    for context in contexts:
        for checker in checkers:
            if not checker.relevant(context.path):
                continue
            for finding in checker.check(context):
                if not is_suppressed(context.suppressions, finding.line, finding.rule):
                    findings.append(finding)
    for checker in checkers:
        for finding in checker.finalize():
            suppressions = suppressions_by_path.get(finding.file, {})
            if not is_suppressed(suppressions, finding.line, finding.rule):
                findings.append(finding)
    findings.sort(key=lambda f: (f.file, f.line, f.rule, f.message))
    return findings
