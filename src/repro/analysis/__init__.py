"""repro.analysis — AST invariant linter for the reproduction's load-bearing rules.

Run it as ``python -m repro.analysis [paths]``.  Four checkers guard the
invariants previous PRs fixed by hand: RNG stream discipline (PR 3's
seed-collision class), lock discipline in the serving tier, the batched
``(B, ...)`` shape contracts, and fork/pickle safety of the process backend.

Findings carry a stable five-key schema (file, line, rule, severity,
message); ``analysis_baseline.json`` at the repo root records accepted debt,
and ``# repro-lint: disable=<rule>`` comments suppress individual lines.
"""

from repro.analysis.findings import Finding, SCHEMA_KEYS, SEVERITIES
from repro.analysis.core import Checker, FileContext, ImportResolver, run_analysis
from repro.analysis.baseline import diff_against_baseline, load_baseline, save_baseline
from repro.analysis.checkers import all_checkers

__all__ = [
    "Finding",
    "SCHEMA_KEYS",
    "SEVERITIES",
    "Checker",
    "FileContext",
    "ImportResolver",
    "run_analysis",
    "all_checkers",
    "load_baseline",
    "save_baseline",
    "diff_against_baseline",
]
