"""Deterministic iteration: no order-sensitive walks over unordered sets.

Seed identity is an *ordering* property as much as an RNG property: draws,
cohort packing and job dispatch must happen in the same order on every run
and every backend.  ``set`` iteration order depends on element hashes and
insertion history — and for ``str`` keys, on ``PYTHONHASHSEED`` — so a hot
path that iterates a set feeds scheduling or draw order from a source that
changes between processes.  (``dict`` is insertion-ordered and fine.)

The checker tracks which local names and ``self._x`` attributes are bound to
sets (literals, ``set()``/``frozenset()`` calls, set comprehensions, unions
of sets) and flags order-*sensitive* consumption on hot-path modules:

* ``for`` loops and list comprehensions over a set-typed value;
* ``list(s)`` / ``tuple(s)`` / ``enumerate(s)`` conversions;
* ``s.pop()`` — removes an *arbitrary* element.

Order-insensitive consumption stays legal: ``sorted(s)`` is the sanctioned
fix, and membership tests, ``len``, set algebra, and generator expressions
feeding ``sum``/``min``/``max``/``any``/``all``/``set`` are not flagged.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set

from repro.analysis.core import Checker, FileContext
from repro.analysis.findings import Finding
from repro.analysis.checkers.rng import HOT_PATH_FRAGMENTS

__all__ = ["DeterministicIterationChecker"]

#: builtin conversions that freeze set order into a sequence
_ORDERING_CONVERSIONS = {"list", "tuple", "enumerate"}

#: aggregations for which iteration order does not matter
_ORDER_INSENSITIVE = {"sum", "min", "max", "any", "all", "len", "set", "frozenset", "sorted"}


class _SetTracker(ast.NodeVisitor):
    """One function (or module) scope: which names hold sets right now."""

    def __init__(self, checker: "_FileVisitor", set_attrs: Set[str]) -> None:
        self.checker = checker
        self.set_attrs = set_attrs  # self._x attributes known to hold sets
        self.set_names: Set[str] = set()

    # ------------------------------------------------------------ set typing
    def is_set_valued(self, node: Optional[ast.expr]) -> bool:
        if node is None:
            return False
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in self.set_names
        if isinstance(node, ast.Attribute):
            return (
                isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and node.attr in self.set_attrs
            )
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
                return True
            if isinstance(func, ast.Attribute) and func.attr in (
                "union", "intersection", "difference", "symmetric_difference", "copy",
            ):
                return self.is_set_valued(func.value)
            return False
        if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
            return self.is_set_valued(node.left) or self.is_set_valued(node.right)
        if isinstance(node, ast.IfExp):
            return self.is_set_valued(node.body) or self.is_set_valued(node.orelse)
        return False

    def _describe(self, node: ast.expr) -> str:
        if isinstance(node, ast.Name):
            return f"`{node.id}`"
        if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
            return f"`{node.value.id}.{node.attr}`"
        return "a set expression"

    # --------------------------------------------------------------- bindings
    def visit_Assign(self, node: ast.Assign) -> None:
        self.generic_visit(node)
        is_set = self.is_set_valued(node.value)
        for target in node.targets:
            if isinstance(target, ast.Name):
                if is_set:
                    self.set_names.add(target.id)
                else:
                    self.set_names.discard(target.id)
            elif (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                if is_set:
                    self.set_attrs.add(target.attr)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self.generic_visit(node)
        if isinstance(node.target, ast.Name):
            if self.is_set_valued(node.value):
                self.set_names.add(node.target.id)
            elif node.value is not None:
                self.set_names.discard(node.target.id)

    # ----------------------------------------------------- nested scopes stop
    def visit_FunctionDef(self, node) -> None:
        self.checker.walk_function(node, self.set_attrs)

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        pass  # classes get their own per-method scopes from the file visitor

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass

    # ------------------------------------------------------------ consumption
    def visit_For(self, node) -> None:
        if self.is_set_valued(node.iter):
            self.checker.emit(
                node.iter,
                f"`for` iterates {self._describe(node.iter)}, a set: iteration "
                "order depends on hashes and PYTHONHASHSEED, so draw/dispatch "
                "order changes between runs; iterate sorted(...) instead",
            )
        self.generic_visit(node)

    visit_AsyncFor = visit_For

    def visit_ListComp(self, node: ast.ListComp) -> None:
        for gen in node.generators:
            if self.is_set_valued(gen.iter):
                self.checker.emit(
                    gen.iter,
                    f"list comprehension over {self._describe(gen.iter)}, a set: "
                    "the resulting order is hash-dependent; use sorted(...)",
                )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Name)
            and func.id in _ORDERING_CONVERSIONS
            and node.args
            and self.is_set_valued(node.args[0])
        ):
            self.checker.emit(
                node,
                f"{func.id}() over {self._describe(node.args[0])}, a set, freezes "
                "a hash-dependent order into a sequence; use sorted(...)",
            )
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "pop"
            and not node.args
            and self.is_set_valued(func.value)
        ):
            self.checker.emit(
                node,
                f"{self._describe(func.value)}.pop() removes an arbitrary "
                "(hash-order) element from a set; pop from a sorted or "
                "insertion-ordered structure instead",
            )
        self.generic_visit(node)


class _FileVisitor:
    def __init__(self, checker: "DeterministicIterationChecker", context: FileContext) -> None:
        self.checker = checker
        self.context = context
        self.findings: List[Finding] = []

    def emit(self, node: ast.AST, message: str) -> None:
        self.findings.append(
            Finding(
                self.context.path,
                getattr(node, "lineno", 1),
                "det-set-iteration",
                "error",
                message,
            )
        )

    def walk_function(self, node, set_attrs: Set[str]) -> None:
        tracker = _SetTracker(self, set_attrs)
        for stmt in node.body:
            tracker.visit(stmt)

    def run(self) -> List[Finding]:
        module_tracker = _SetTracker(self, set())
        for stmt in self.context.tree.body:
            if isinstance(stmt, ast.ClassDef):
                self._walk_class(stmt)
            else:
                module_tracker.visit(stmt)
        return self.findings

    def _walk_class(self, node: ast.ClassDef) -> None:
        # two passes: collect every `self._x = set()` first so methods other
        # than the one doing the assignment still see the attribute as a set
        set_attrs: Set[str] = set()
        for sub in ast.walk(node):
            if isinstance(sub, ast.Assign) and isinstance(sub.value, (ast.Set, ast.SetComp)):
                targets = sub.targets
            elif (
                isinstance(sub, ast.Assign)
                and isinstance(sub.value, ast.Call)
                and isinstance(sub.value.func, ast.Name)
                and sub.value.func.id in ("set", "frozenset")
            ):
                targets = sub.targets
            else:
                continue
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    set_attrs.add(target.attr)
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.walk_function(stmt, set(set_attrs))
            elif isinstance(stmt, ast.ClassDef):
                self._walk_class(stmt)


class DeterministicIterationChecker(Checker):
    name = "determinism"
    rules = {
        "det-set-iteration": "order-sensitive iteration over an unordered set on a hot path",
    }

    def check(self, context: FileContext) -> List[Finding]:
        if not context.in_scope(*HOT_PATH_FRAGMENTS):
            return []
        return _FileVisitor(self, context).run()
