"""Batched shape contracts: the ``(B, ...)`` leading-dim API must stay rigid.

``repro.distributions.batched`` packs B per-trace distributions into shared
``(B, ...)`` parameter arrays, and three layers (the lockstep engine, the
packed-minibatch trainer, the sub-minibatch packer) call the same five
methods on them.  The registry below records each method's contract — the
parameter list and the leading-dim shape law — and checks both sides:

* definition sites: every concrete ``Batched*`` implementation must expose
  exactly the contract signature (same names, same order, optional params
  defaulted) so callers can pass keywords interchangeably across engines;
  a concrete ``BatchedDistribution`` subclass must implement all abstract
  rows-methods (the base raises ``NotImplementedError`` at runtime — too
  late, mid-epoch).
* call sites: any ``x.sample_rows(...)``-shaped call (duck-typed by method
  name — these names are contract-owned in this repo) must pass an argument
  list the contract accepts.

The shape laws themselves (``sample_rows -> (B,)``, ``log_prob_rows(values
(B,)) -> (B,)``) are carried in the registry and quoted in messages so a
violation report states the law being protected, not just an arity mismatch.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.core import Checker, FileContext
from repro.analysis.findings import Finding

__all__ = ["ShapeContractChecker", "CONTRACTS"]


@dataclass(frozen=True)
class MethodContract:
    """One contract-owned method of the batched-distribution API."""

    name: str
    params: Tuple[str, ...]      # in order, after self/cls
    required: int                # how many of ``params`` have no default
    shape_law: str               # the (B, ...) law, quoted in messages
    classmethod_: bool = False
    abstract: bool = False       # concrete subclasses must implement it


CONTRACTS: Dict[str, MethodContract] = {
    contract.name: contract
    for contract in (
        MethodContract(
            "sample_rows", ("rngs",), 0,
            "sample_rows(rngs) -> (B,): one draw per row, rngs is one shared "
            "RandomState or a length-B sequence",
            abstract=True,
        ),
        MethodContract(
            "log_prob_rows", ("values",), 1,
            "log_prob_rows(values (B,)) -> (B,): out[i] = log p_i(values[i])",
            abstract=True,
        ),
        MethodContract(
            "row", ("index",), 1,
            "row(index) -> per-slot view of row index",
        ),
        MethodContract(
            "rows", (), 0,
            "rows() -> list of B per-slot views",
        ),
        MethodContract(
            "row_distribution", ("index",), 1,
            "row_distribution(index) -> stand-alone Distribution for row index",
            abstract=True,
        ),
        MethodContract(
            "from_distributions", ("distributions", "choice_kernel"), 1,
            "from_distributions(distributions, choice_kernel=None) -> packed "
            "(B, ...) batch; row(i) equivalent to distributions[i]",
            classmethod_=True,
        ),
    )
}

#: the root whose direct concrete subclasses owe the abstract methods
_BASE_CLASS = "BatchedDistribution"


def _is_batched_class(node: ast.ClassDef) -> bool:
    if node.name.startswith("Batched"):
        return True
    return any(
        isinstance(base, ast.Name) and base.id.startswith("Batched") for base in node.bases
    )


def _positional_params(args: ast.arguments) -> Tuple[List[str], int]:
    """(param names after self/cls, number of them without defaults)."""
    params = [arg.arg for arg in args.posonlyargs + args.args]
    defaults = len(args.defaults)
    required = len(params) - defaults
    if params and params[0] in ("self", "cls"):
        params = params[1:]
        required -= 1
    return params, max(required, 0)


class ShapeContractChecker(Checker):
    name = "shape-contracts"
    rules = {
        "shape-impl-signature": "Batched* implementation deviates from the contract signature",
        "shape-impl-missing": "concrete BatchedDistribution subclass missing an abstract rows-method",
        "shape-callsite-arity": "call to a contract-owned rows-method with arguments the contract rejects",
    }

    def check(self, context: FileContext) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(context.tree):
            if isinstance(node, ast.ClassDef) and _is_batched_class(node):
                findings.extend(self._check_class(context, node))
            elif isinstance(node, ast.Call):
                findings.extend(self._check_call(context, node))
        return findings

    # -------------------------------------------------------- definition side
    def _check_class(self, context: FileContext, node: ast.ClassDef) -> List[Finding]:
        findings: List[Finding] = []
        defined = {
            stmt.name: stmt
            for stmt in node.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        for method_name, stmt in defined.items():
            contract = CONTRACTS.get(method_name)
            if contract is not None:
                findings.extend(self._check_signature(context, node, stmt, contract))
        is_concrete_subclass = any(
            isinstance(base, ast.Name) and base.id == _BASE_CLASS for base in node.bases
        )
        if is_concrete_subclass:
            for contract in CONTRACTS.values():
                if contract.abstract and contract.name not in defined:
                    findings.append(
                        Finding(
                            context.path,
                            node.lineno,
                            "shape-impl-missing",
                            "error",
                            f"{node.name} subclasses {_BASE_CLASS} but does not implement "
                            f"{contract.name}; the base raises NotImplementedError at "
                            f"runtime, mid-epoch — contract: {contract.shape_law}",
                        )
                    )
        return findings

    def _check_signature(
        self,
        context: FileContext,
        cls: ast.ClassDef,
        stmt: ast.FunctionDef,
        contract: MethodContract,
    ) -> List[Finding]:
        def deviation(reason: str) -> Finding:
            return Finding(
                context.path,
                stmt.lineno,
                "shape-impl-signature",
                "error",
                f"{cls.name}.{contract.name} deviates from the batched contract "
                f"({reason}); contract: {contract.shape_law}",
            )

        findings: List[Finding] = []
        args = stmt.args
        if args.vararg is not None or args.kwarg is not None or args.kwonlyargs:
            findings.append(deviation("*args/**kwargs/keyword-only params are not part of the contract"))
            return findings
        params, required = _positional_params(args)
        allowed = contract.params
        if required > contract.required:
            findings.append(
                deviation(
                    f"{required} required parameter(s) {params[:required]} vs "
                    f"{contract.required} in the contract — extra requirements break "
                    "existing call sites"
                )
            )
        if tuple(params) != allowed[: len(params)]:
            findings.append(
                deviation(
                    f"parameters {params} do not match the contract prefix "
                    f"{list(allowed)} — keyword call sites rely on these names"
                )
            )
        return findings

    # -------------------------------------------------------------- call side
    def _check_call(self, context: FileContext, node: ast.Call) -> List[Finding]:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return []
        contract = CONTRACTS.get(func.attr)
        if contract is None:
            return []
        # method definitions show up as calls only via super().x(...); those are
        # still real call sites and stay checked.  Splats defeat static arity.
        if any(isinstance(arg, ast.Starred) for arg in node.args):
            return []
        if any(keyword.arg is None for keyword in node.keywords):
            return []
        positional = len(node.args)
        keywords = [keyword.arg for keyword in node.keywords]
        problems: List[str] = []
        if positional > len(contract.params):
            problems.append(
                f"{positional} positional argument(s), contract takes at most "
                f"{len(contract.params)}"
            )
        unknown = [kw for kw in keywords if kw not in contract.params]
        if unknown:
            problems.append(f"unknown keyword(s) {unknown}")
        covered = set(contract.params[:positional]) | set(keywords)
        missing = [
            param for param in contract.params[: contract.required] if param not in covered
        ]
        if missing:
            problems.append(f"missing required argument(s) {missing}")
        duplicated = [kw for kw in keywords if kw in contract.params[:positional]]
        if duplicated:
            problems.append(f"argument(s) {duplicated} passed both positionally and by keyword")
        return [
            Finding(
                context.path,
                node.lineno,
                "shape-callsite-arity",
                "error",
                f"call to {func.attr} rejected by the batched contract ({problem}); "
                f"contract: {contract.shape_law}",
            )
            for problem in problems
        ]
