"""Fork/pickle safety: nothing unpicklable may flow into a process boundary.

The process cohort backend (PR 4) ships work to spawned workers through
multiprocessing queues; everything placed on such a queue is pickled.  A
lambda reward hook, a generator of jobs, a function defined inside the
dispatching method, an open file handle, or an object dragging a
``threading.Lock`` along all pickle either not at all or — worse — into a
*copy* that silently stops synchronising with the parent.  These failures
surface deep in a worker's traceback (or not at all); this checker moves
them to lint time.

Dispatch points (the pickle boundaries):

* ``pickle.dumps`` / ``pickle.dump`` calls anywhere,
* ``<queue>.put(...)`` / ``put_nowait(...)`` in modules that import
  ``multiprocessing`` (a thread-pool ``queue.Queue`` is not a pickle
  boundary, so modules without multiprocessing are exempt),
* ``multiprocessing.Process(target=..., args=...)`` construction.

Each argument expression flowing into a dispatch point is walked for
lambdas, generator expressions, names bound to nested ``def``s, names bound
to ``open(...)``, and ``self.<attr>``/names bound to threading primitives.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set

from repro.analysis.core import Checker, FileContext, ImportResolver
from repro.analysis.findings import Finding

__all__ = ["PickleSafetyChecker"]

_LOCK_TYPES = {
    "threading.Lock",
    "threading.RLock",
    "threading.Condition",
    "threading.Event",
    "threading.Semaphore",
    "threading.BoundedSemaphore",
}

_PICKLE_CALLS = {"pickle.dumps", "pickle.dump"}


def _receiver_text(node: ast.AST) -> str:
    parts: List[str] = []
    while True:
        if isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        elif isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.Name):
            parts.append(node.id)
            break
        else:
            break
    return ".".join(reversed(parts))


class _FunctionBindings:
    """What the names local to one function are bound to, by unsafe kind."""

    def __init__(self, node: ast.AST, resolver: ImportResolver) -> None:
        self.kinds: Dict[str, str] = {}
        for stmt in ast.walk(node):
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)) and stmt is not node:
                self.kinds[stmt.name] = "pickle-local-function"
            elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if not isinstance(target, ast.Name):
                    continue
                kind = self._value_kind(stmt.value, resolver)
                if kind is not None:
                    self.kinds[target.id] = kind

    @staticmethod
    def _value_kind(value: ast.AST, resolver: ImportResolver) -> Optional[str]:
        if isinstance(value, ast.Lambda):
            return "pickle-lambda"
        if isinstance(value, ast.GeneratorExp):
            return "pickle-generator"
        if isinstance(value, ast.Call):
            dotted = resolver.dotted_name(value.func)
            if dotted == "open":
                return "pickle-open-handle"
            if dotted in _LOCK_TYPES:
                return "pickle-lock"
        return None


class _ClassLocks(ast.NodeVisitor):
    """``self.<attr>`` names bound to threading primitives, per class."""

    def __init__(self, tree: ast.Module, resolver: ImportResolver) -> None:
        self.lock_attrs: Set[str] = set()
        self._resolver = resolver
        self.visit(tree)

    def visit_Assign(self, node: ast.Assign) -> None:
        if isinstance(node.value, ast.Call):
            dotted = self._resolver.dotted_name(node.value.func)
            if dotted in _LOCK_TYPES:
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        self.lock_attrs.add(target.attr)
        self.generic_visit(node)


_KIND_MESSAGES = {
    "pickle-lambda": "a lambda cannot be pickled across the process boundary",
    "pickle-generator": "a generator cannot be pickled across the process boundary",
    "pickle-local-function": (
        "a function defined inside the dispatching scope cannot be pickled "
        "(only module-level functions can)"
    ),
    "pickle-open-handle": (
        "an open file handle cannot be pickled; pass the path and reopen in the worker"
    ),
    "pickle-lock": (
        "a threading primitive pickles into a detached copy (or not at all); "
        "share state through queues, not captured locks"
    ),
}


class PickleSafetyChecker(Checker):
    name = "pickle-safety"
    rules = {
        "pickle-lambda": "lambda flows into a process-boundary dispatch",
        "pickle-generator": "generator expression flows into a process-boundary dispatch",
        "pickle-local-function": "nested function flows into a process-boundary dispatch",
        "pickle-open-handle": "open file handle flows into a process-boundary dispatch",
        "pickle-lock": "threading primitive flows into a process-boundary dispatch",
    }

    def check(self, context: FileContext) -> List[Finding]:
        resolver = context.resolver
        uses_multiprocessing = any(
            dotted == "multiprocessing" or dotted.startswith("multiprocessing.")
            for dotted in resolver.aliases.values()
        )
        lock_attrs = _ClassLocks(context.tree, resolver).lock_attrs
        findings: List[Finding] = []

        for scope in ast.walk(context.tree):
            if not isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            bindings = _FunctionBindings(scope, resolver)
            for node in ast.walk(scope):
                if not isinstance(node, ast.Call):
                    continue
                payloads = self._dispatch_payloads(node, resolver, uses_multiprocessing)
                if payloads is None:
                    continue
                for payload in payloads:
                    findings.extend(
                        self._scan_payload(context, payload, bindings, lock_attrs)
                    )
        return findings

    @staticmethod
    def _dispatch_payloads(
        node: ast.Call, resolver: ImportResolver, uses_multiprocessing: bool
    ) -> Optional[List[ast.AST]]:
        """The argument expressions that get pickled, if this call dispatches."""
        dotted = resolver.dotted_name(node.func)
        if dotted in _PICKLE_CALLS:
            return list(node.args[:1])
        if isinstance(node.func, ast.Attribute):
            if (
                uses_multiprocessing
                and node.func.attr in ("put", "put_nowait")
                and "queue" in _receiver_text(node.func.value).lower()
            ):
                return list(node.args)
        if dotted is not None and (
            dotted == "multiprocessing.Process" or dotted.endswith(".Process")
        ):
            payloads: List[ast.AST] = []
            for keyword in node.keywords:
                if keyword.arg in ("target", "args", "kwargs"):
                    payloads.append(keyword.value)
            return payloads or None
        return None

    def _scan_payload(
        self,
        context: FileContext,
        payload: ast.AST,
        bindings: _FunctionBindings,
        lock_attrs: Set[str],
    ) -> List[Finding]:
        findings: List[Finding] = []

        def emit(node: ast.AST, rule: str) -> None:
            findings.append(
                Finding(
                    context.path,
                    getattr(node, "lineno", 1),
                    rule,
                    "error",
                    f"process-boundary dispatch payload: {_KIND_MESSAGES[rule]}",
                )
            )

        for node in ast.walk(payload):
            if isinstance(node, ast.Lambda):
                emit(node, "pickle-lambda")
            elif isinstance(node, ast.GeneratorExp):
                emit(node, "pickle-generator")
            elif isinstance(node, ast.Name) and node.id in bindings.kinds:
                emit(node, bindings.kinds[node.id])
            elif (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and node.attr in lock_attrs
            ):
                emit(node, "pickle-lock")
        return findings
