"""Future resolution: every created Future reaches resolution on every path.

PR 4's serving audit found the deadlock class this checker mechanises: a
``Future`` is created and admitted (stored in an in-flight map, returned to a
caller), then some path — an early return, an exception branch, a
``shutdown(drain=...)`` leg — exits without ``set_result``/``set_exception``,
and a client blocks forever on ``result()``.

The analysis is a per-function structured walk with a tiny status lattice
per created future — UNRESOLVED, MAYBE (resolved on some paths), DONE — plus
an *escaped* bit.  Joins happen at ``if``/``else`` merge points, ``try``
handlers join against both the body entry and its end (the body may fail at
any point), and loop bodies join with the zero-iteration path.  A future
that *escapes* — returned, stored on ``self``/a container, captured by a
nested function, or passed to code the analysis cannot see — transfers
responsibility and is never reported (false negatives over false positives).

The interprocedural part: passing a future to a *known* function consults
that function's parameter-resolution summary (computed with the same walk,
iterated so helper-of-helper chains settle), so ``self._finish(fut)`` in
another module counts as resolution exactly when ``_finish`` resolves its
parameter on every path.

``raise`` exits are deliberately ignored: a local future that was never
handed out cannot strand a waiter when the creator itself unwinds.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Tuple

from repro.analysis.core import Checker, FileContext
from repro.analysis.findings import Finding
from repro.analysis.summaries import display_name

__all__ = ["FutureResolutionChecker"]

#: constructors that create a future this checker owns
_FUTURE_TYPES = {
    "concurrent.futures.Future",
    "concurrent.futures._base.Future",
    "asyncio.Future",
}

#: receiver methods that resolve a future
_RESOLVERS = {"set_result", "set_exception", "cancel"}

UNRES, MAYBE, DONE = 0, 1, 2


class _VarState:
    __slots__ = ("status", "escaped", "line")

    def __init__(self, status: int = UNRES, escaped: bool = False, line: int = 0) -> None:
        self.status = status
        self.escaped = escaped
        self.line = line

    def copy(self) -> "_VarState":
        return _VarState(self.status, self.escaped, self.line)


Env = Dict[str, _VarState]


def _copy_env(env: Env) -> Env:
    return {name: state.copy() for name, state in env.items()}


def _join_status(a: int, b: int) -> int:
    return a if a == b else MAYBE


def _join_env(into: Env, other: Env) -> None:
    for name, state in into.items():
        that = other.get(name)
        if that is None:
            continue
        state.status = _join_status(state.status, that.status)
        state.escaped = state.escaped or that.escaped


class _Walk:
    """One structured pass over a function body, tracking future states."""

    def __init__(
        self,
        project,
        resolver,
        targets_by_node: Dict[int, List[str]],
        param_table: Dict[str, Dict[str, Tuple[int, bool]]],
        track_creations: bool,
    ) -> None:
        self.project = project
        self.resolver = resolver
        self.targets_by_node = targets_by_node
        self.param_table = param_table
        self.track_creations = track_creations
        self.exit_envs: List[Env] = []
        #: creation line -> (worst status seen at an exit, witness exit line)
        self.leaks: Dict[int, Tuple[int, int]] = {}

    # ------------------------------------------------------------ entry point
    def run(self, node, tracked_params: List[str]) -> None:
        env: Env = {name: _VarState() for name in tracked_params}
        if self.block(node.body, env):
            last = node.body[-1] if node.body else node
            self.exit(env, getattr(last, "end_lineno", getattr(last, "lineno", 0)))

    def exit(self, env: Env, line: int) -> None:
        self.exit_envs.append(_copy_env(env))
        for state in env.values():
            if state.line and not state.escaped and state.status != DONE:
                worst, _ = self.leaks.get(state.line, (DONE, 0))
                if state.status < worst:
                    self.leaks[state.line] = (state.status, line)

    # ------------------------------------------------------------- statements
    def block(self, stmts, env: Env) -> bool:
        for stmt in stmts:
            if not self.stmt(stmt, env):
                return False
        return True

    def stmt(self, node, env: Env) -> bool:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)):
            self._capture_scan(node, env)
            return True
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            return self._assign(node, env)
        if isinstance(node, ast.AugAssign):
            self.expr(node.value, env)
            return True
        if isinstance(node, ast.Expr):
            self.expr(node.value, env)
            return True
        if isinstance(node, ast.Return):
            if node.value is not None:
                if isinstance(node.value, ast.Name) and node.value.id in env:
                    env[node.value.id].escaped = True
                else:
                    self.expr(node.value, env)
            self.exit(env, node.lineno)
            return False
        if isinstance(node, ast.Raise):
            if node.exc is not None:
                self.expr(node.exc, env)
            return False  # unwinding creator cannot strand a waiter
        if isinstance(node, ast.If):
            self.expr(node.test, env)
            then_env, else_env = _copy_env(env), _copy_env(env)
            then_cont = self.block(node.body, then_env)
            else_cont = self.block(node.orelse, else_env)
            if then_cont and else_cont:
                _join_env(then_env, else_env)
                self._replace(env, then_env)
            elif then_cont:
                self._replace(env, then_env)
            elif else_cont:
                self._replace(env, else_env)
            else:
                return False
            return True
        if isinstance(node, (ast.For, ast.AsyncFor)):
            self.expr(node.iter, env)
            body_env = _copy_env(env)
            if self.block(node.body, body_env):
                _join_env(env, body_env)  # zero-or-more iterations
            if node.orelse:
                return self.block(node.orelse, env)
            return True
        if isinstance(node, ast.While):
            self.expr(node.test, env)
            body_env = _copy_env(env)
            if self.block(node.body, body_env):
                _join_env(env, body_env)
            if node.orelse:
                return self.block(node.orelse, env)
            return True
        if isinstance(node, ast.Try):
            body_env = _copy_env(env)
            body_cont = self.block(node.body, body_env)
            if body_cont and node.orelse:
                body_cont = self.block(node.orelse, body_env)
            continuing: List[Env] = []
            for handler in node.handlers:
                # the body may fail at any point: the handler joins the state
                # before the body with the state after it
                handler_env = _copy_env(env)
                _join_env(handler_env, body_env)
                if self.block(handler.body, handler_env):
                    continuing.append(handler_env)
            if body_cont:
                continuing.append(body_env)
            if continuing:
                merged = continuing[0]
                for other in continuing[1:]:
                    _join_env(merged, other)
                self._replace(env, merged)
            if node.finalbody:
                if not self.block(node.finalbody, env):
                    return False
            return bool(continuing)
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                self.expr(item.context_expr, env)
            return self.block(node.body, env)
        if isinstance(node, (ast.Break, ast.Continue, ast.Pass, ast.Global, ast.Nonlocal)):
            return True  # break/continue approximated as fallthrough (join-safe)
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            return True
        if isinstance(node, (ast.Assert, ast.Delete)):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self.expr(child, env)
            return True
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self.expr(child, env)
        return True

    def _assign(self, node, env: Env) -> bool:
        value = node.value
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        if value is None:
            return True
        if self._is_future_ctor(value):
            name_targets = [t for t in targets if isinstance(t, ast.Name)]
            if name_targets and self.track_creations and len(name_targets) == len(targets):
                env[name_targets[0].id] = _VarState(UNRES, False, node.lineno)
            # self.attr = Future(): ownership moves to the object; out of scope
            return True
        self.expr(value, env)
        for target in targets:
            if isinstance(target, ast.Name):
                env.pop(target.id, None)  # rebinding ends tracking
            else:
                self.expr(target, env)
        return True

    def _replace(self, env: Env, new: Env) -> None:
        for name, state in env.items():
            that = new.get(name)
            if that is not None:
                state.status = that.status
                state.escaped = that.escaped

    # ------------------------------------------------------------ expressions
    def expr(self, node, env: Env) -> None:
        if node is None:
            return
        if isinstance(node, ast.Call):
            self._call(node, env)
            return
        if isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name) and node.value.id in env:
                return  # attribute read on the future itself: benign
            self.expr(node.value, env)
            return
        if isinstance(node, ast.Name):
            state = env.get(node.id)
            if state is not None:
                state.escaped = True  # stored/compared/yielded: handed off
            return
        if isinstance(node, (ast.Lambda, ast.GeneratorExp)):
            self._capture_scan(node, env)
            return
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self.expr(child, env)

    def _call(self, node: ast.Call, env: Env) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in env
        ):
            if func.attr in _RESOLVERS:
                env[func.value.id].status = DONE
            # fut.done()/fut.result()/... are benign receiver uses either way
            for value in list(node.args) + [kw.value for kw in node.keywords]:
                self.expr(value, env)
            return
        targets = self.targets_by_node.get(id(node), [])
        slots: List[Tuple[object, ast.expr]] = list(enumerate(node.args))
        slots += [(kw.arg, kw.value) for kw in node.keywords if kw.arg is not None]
        for slot, value in slots:
            if isinstance(value, ast.Name) and value.id in env:
                self._arg_effect(env[value.id], targets, slot)
            else:
                self.expr(value, env)
        if isinstance(func, ast.Attribute):
            self.expr(func.value, env)

    def _arg_effect(self, state: _VarState, targets: List[str], slot: object) -> None:
        statuses: List[Tuple[int, bool]] = []
        for target in targets:
            decl = self.project.functions.get(target)
            if decl is None:
                continue
            params = decl.params
            offset = 1 if decl.cls is not None else 0
            if isinstance(slot, int):
                index = slot + offset
                name: Optional[str] = params[index] if index < len(params) else None
            else:
                name = slot if slot in params else None
            if name is None:
                continue
            entry = self.param_table.get(target, {}).get(name)
            if entry is not None:
                statuses.append(entry)
        if not statuses:
            state.escaped = True  # handed to code the analysis cannot see
            return
        if all(status == DONE for status, _ in statuses):
            state.status = max(state.status, DONE)
        elif any(status >= MAYBE for status, _ in statuses):
            state.status = max(state.status, MAYBE)
        if any(escaped for _, escaped in statuses):
            state.escaped = True

    def _capture_scan(self, node, env: Env) -> None:
        """A nested def/lambda capturing a tracked future takes ownership."""
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name) and sub.id in env:
                env[sub.id].escaped = True

    def _is_future_ctor(self, value) -> bool:
        if not isinstance(value, ast.Call):
            return False
        dotted = self.resolver.dotted_name(value.func)
        if dotted is None:
            return False
        return self.project.canonicalize(dotted) in _FUTURE_TYPES


class FutureResolutionChecker(Checker):
    name = "future-resolution"
    rules = {
        "future-unresolved": "a created Future can reach an exit without set_result/set_exception",
    }

    def __init__(self) -> None:
        self._project = None

    def begin_project(self, project) -> None:
        self._project = project

    def check(self, context: FileContext) -> List[Finding]:
        return []

    def finalize(self) -> List[Finding]:
        if self._project is None:
            return []
        project = self._project
        summaries = project.summaries()
        graph = project.graph()

        def targets_for(qual: str) -> Dict[int, List[str]]:
            summary = summaries[qual]
            return {
                id(site.node): targets
                for site, targets in zip(summary.calls, graph.targets[qual])
            }

        def resolver_for(qual: str):
            return project.modules[summaries[qual].decl.module].context.resolver

        # Parameter-resolution summaries, iterated so helper chains settle.
        table: Dict[str, Dict[str, Tuple[int, bool]]] = {}
        for _ in range(3):
            next_table: Dict[str, Dict[str, Tuple[int, bool]]] = {}
            for qual, summary in summaries.items():
                decl = summary.decl
                params = [p for p in decl.params if p != "self"]
                if not params:
                    next_table[qual] = {}
                    continue
                walk = _Walk(project, resolver_for(qual), targets_for(qual), table, False)
                walk.run(decl.node, params)
                entry: Dict[str, Tuple[int, bool]] = {}
                for param in params:
                    statuses = [env[param].status for env in walk.exit_envs if param in env]
                    escaped = any(env[param].escaped for env in walk.exit_envs if param in env)
                    if statuses:
                        combined = statuses[0]
                        for status in statuses[1:]:
                            combined = _join_status(combined, status)
                    else:
                        combined = UNRES
                    entry[param] = (combined, escaped)
                next_table[qual] = entry
            if next_table == table:
                break
            table = next_table

        findings: List[Finding] = []
        for qual, summary in sorted(summaries.items()):
            decl = summary.decl
            walk = _Walk(project, resolver_for(qual), targets_for(qual), table, True)
            walk.run(decl.node, [])
            for line, (status, exit_line) in sorted(walk.leaks.items()):
                path_word = "some paths" if status == MAYBE else "every path"
                findings.append(
                    Finding(
                        summary.path,
                        line,
                        "future-unresolved",
                        "error",
                        f"Future created in {display_name(project, qual)} can reach the "
                        f"exit at line {exit_line} unresolved on {path_word}; every "
                        "future must reach set_result/set_exception (or be handed off) "
                        "on all paths, including exception and shutdown legs",
                    )
                )
        return findings
