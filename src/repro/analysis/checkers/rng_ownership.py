"""RNG stream ownership: job bodies consume streams, parents derive them.

The reproduction's cross-backend identity rests on PR 4's contract:
randomness used by a dispatched job (a ``pool.submit`` callable, a
``Thread``/``Process`` target, a done-callback) must be *derived in the
parent* via the ``repro.common.rng`` spawn tree — ``base.spawn((seed,
index))`` per job — and passed in.  A job that builds its own generator
either re-seeds ad hoc (collision-prone, engine-dependent) or, worse, calls
``get_rng()`` and silently draws from a *different process's* global stream.
And one generator reaching two concurrent consumers makes draw order depend
on scheduling.

Both rules run on the whole-program engine: dispatch sites and the functions
reachable from their job bodies come from the call-graph fixpoint, so the
construction can hide any number of calls below the dispatched callable and
still be caught.

* ``rng-job-construction`` — a generator is constructed (or ``get_rng()``
  called) inside a function reachable from a dispatched job body.
* ``rng-shared-stream`` — one generator variable is passed at a dispatch
  site inside a loop without a per-iteration ``spawn``, or the same
  generator variable feeds two distinct dispatch sites: two concurrent
  consumers would share one stream.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Tuple

from repro.analysis.core import Checker, FileContext
from repro.analysis.findings import Finding
from repro.analysis.summaries import display_name

__all__ = ["RngOwnershipChecker"]

#: the sanctioned module: its own internals may construct raw generators
_SANCTIONED_MODULE = "repro.common.rng"


class RngOwnershipChecker(Checker):
    name = "rng-ownership"
    rules = {
        "rng-job-construction": "generator constructed inside a dispatched job body",
        "rng-shared-stream": "one generator reachable from two concurrent consumers",
    }

    def __init__(self) -> None:
        self._project = None

    def begin_project(self, project) -> None:
        self._project = project

    def check(self, context: FileContext) -> List[Finding]:
        return []

    def finalize(self) -> List[Finding]:
        if self._project is None:
            return []
        project = self._project
        summaries = project.summaries()
        graph = project.graph()
        findings: List[Finding] = []

        # ---- construction inside job bodies ------------------------------
        for qual, witness in sorted(graph.job_reachable.items()):
            summary = summaries.get(qual)
            if summary is None or summary.decl.module == _SANCTIONED_MODULE:
                continue
            for creation in summary.rng_creations:
                findings.append(
                    Finding(
                        summary.path,
                        creation.line,
                        "rng-job-construction",
                        "error",
                        f"`{creation.dotted}` constructed in "
                        f"{display_name(project, qual)}, which runs inside a "
                        f"dispatched job body ({witness}); derive the stream in the "
                        "parent via rng.spawn((base, index)) and pass it in",
                    )
                )

        # ---- one stream, several concurrent consumers --------------------
        # (function qual, rng var) -> dispatch lines it was passed at
        consumers: Dict[Tuple[str, str], List[int]] = {}
        for dispatch in graph.dispatches:
            summary = summaries[dispatch.caller]
            for name_node in _rng_args(dispatch.site.node):
                binding = summary.rng_locals.get(name_node.id)
                if binding is None:
                    continue
                key = (dispatch.caller, name_node.id)
                consumers.setdefault(key, []).append(dispatch.site.line)
                if dispatch.site.in_loop and not (binding.via == "spawn" and binding.in_loop):
                    findings.append(
                        Finding(
                            summary.path,
                            dispatch.site.line,
                            "rng-shared-stream",
                            "error",
                            f"`{name_node.id}` (bound at line {binding.line}) is passed "
                            "to a dispatch inside a loop, so every iteration's job "
                            "shares one stream; derive a per-job stream with "
                            "spawn((base, index)) inside the loop",
                        )
                    )
        for (caller, name), lines in sorted(consumers.items()):
            distinct = sorted(set(lines))
            if len(distinct) < 2:
                continue
            summary = summaries[caller]
            findings.append(
                Finding(
                    summary.path,
                    distinct[1],
                    "rng-shared-stream",
                    "error",
                    f"`{name}` is dispatched to concurrent consumers at lines "
                    f"{distinct}; two job bodies would share one generator — spawn "
                    "a child stream per dispatch instead",
                )
            )
        return findings


def _rng_args(node: ast.Call) -> List[ast.Name]:
    """Top-level Name arguments of a dispatch call (one level into tuples).

    Only *top-level* names count: inside ``base.spawn((seed, i))`` the
    receiver ``base`` is the parent stream being forked, not a payload.
    """
    names: List[ast.Name] = []
    values = list(node.args) + [kw.value for kw in node.keywords]
    flattened: List[ast.expr] = []
    for value in values:
        if isinstance(value, (ast.Tuple, ast.List)):
            flattened.extend(value.elts)
        else:
            flattened.append(value)
    for value in flattened:
        if isinstance(value, ast.Name):
            names.append(value)
    return names
