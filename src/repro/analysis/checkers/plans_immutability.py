"""Plan immutability: compiled execution plans are frozen outside their module.

:mod:`repro.ppl.inference.plans` compiles a hot trace type into an
:class:`~repro.ppl.inference.plans.EnginePlan` — an immutable schedule of
:class:`~repro.ppl.inference.plans.PlanStep` rows whose arrays (address
embeddings, prior geometry, smoothing vectors) are **shared by every cohort
that leases the plan**, concurrently across worker threads.  A single
attribute write from a consumer would silently corrupt every other cohort on
the same plan, and the frozen-dataclass guard only catches plain assignment
at runtime, mid-request; ``object.__setattr__`` bypasses it entirely.

This checker moves the guard to lint time and makes it module-scoped: only
``repro/ppl/inference/plans.py`` (the compiler, which legitimately uses
``object.__setattr__`` on not-yet-published instances) may write plan
attributes.  Everywhere else,

* ``plan-attribute-write`` — ``x.attr = ...`` / ``x.attr += ...`` where ``x``
  is plan-typed: bound from ``EnginePlan(...)``/``PlanStep(...)``/
  ``compile_plan(...)``, unpacked from a ``...lease(...)`` call, annotated as
  ``EnginePlan``/``PlanStep``, iterated from ``<plan>.steps``, or simply
  named ``plan``/``*_plan``/``plan_step`` (plans are the only objects this
  repo spells that way — the naming convention is part of the contract).
* ``plan-setattr-bypass`` — ``object.__setattr__(x, ...)`` / ``setattr(x,
  ...)`` on a plan-typed ``x``: the frozen-dataclass escape hatch used
  outside the owning module.

Reads, and writes *into* leased scratch buffers (``PlanScratch`` is the
designated mutable companion), are untouched — the rule protects exactly the
objects the cache shares.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set

from repro.analysis.core import Checker, FileContext
from repro.analysis.findings import Finding

__all__ = ["PlanImmutabilityChecker"]

#: the one module allowed to construct-and-fill frozen plan objects
_OWNING_MODULE = "repro/ppl/inference/plans.py"

#: frozen plan types and the factory that returns them
_FROZEN_TYPES = {"EnginePlan", "PlanStep"}
_FACTORIES = {"EnginePlan", "PlanStep", "compile_plan"}
_PLANS_MODULE = "repro.ppl.inference.plans"

#: names that mean "a plan" by repo convention (PlanCache.lease unpacking,
#: engine locals, test fixtures) — scratch/cache spellings deliberately absent
_PLAN_NAMES = ("plan", "plan_step", "engine_plan")


def _is_plan_name(name: str) -> bool:
    return name in _PLAN_NAMES or name.endswith("_plan")


class PlanImmutabilityChecker(Checker):
    name = "plan-immutability"
    rules = {
        "plan-attribute-write": (
            "EnginePlan/PlanStep attribute written outside the plans module"
        ),
        "plan-setattr-bypass": (
            "object.__setattr__/setattr on a compiled plan outside the plans module"
        ),
    }

    def relevant(self, path: str) -> bool:
        return path.endswith(".py") and not path.replace("\\", "/").endswith(_OWNING_MODULE)

    def check(self, context: FileContext) -> List[Finding]:
        findings: List[Finding] = []
        for scope in _function_scopes(context.tree):
            plan_vars = _plan_typed_names(scope, context)
            if not plan_vars:
                continue
            for node in ast.walk(scope):
                findings.extend(self._check_node(node, plan_vars, context))
        return findings

    def _check_node(
        self, node: ast.AST, plan_vars: Set[str], context: FileContext
    ) -> List[Finding]:
        findings: List[Finding] = []
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        for target in targets:
            base = _attribute_base(target)
            if base is not None and base in plan_vars:
                findings.append(
                    Finding(
                        context.path,
                        target.lineno,
                        "plan-attribute-write",
                        "error",
                        f"write to {base}.{target.attr}: compiled plans are frozen and "
                        "shared across cohorts — only repro/ppl/inference/plans.py may "
                        "fill plan attributes (use PlanScratch for per-lease mutable state)",
                    )
                )
        if isinstance(node, ast.Call):
            callee = context.resolver.dotted_name(node.func) or ""
            if callee in ("object.__setattr__", "setattr", "builtins.setattr") and node.args:
                first = node.args[0]
                if isinstance(first, ast.Name) and first.id in plan_vars:
                    findings.append(
                        Finding(
                            context.path,
                            node.lineno,
                            "plan-setattr-bypass",
                            "error",
                            f"setattr on plan {first.id!r} bypasses the frozen-dataclass "
                            "guard; plan objects may only be filled inside "
                            "repro/ppl/inference/plans.py",
                        )
                    )
        return findings


def _function_scopes(tree: ast.Module) -> List[ast.AST]:
    """Every function/method body plus the module itself, each one scope."""
    scopes: List[ast.AST] = [tree]
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            scopes.append(node)
    return scopes


def _attribute_base(target: ast.expr) -> Optional[str]:
    """``x`` of a plain ``x.attr`` store target (subscripts are not plan writes)."""
    if isinstance(target, ast.Attribute) and isinstance(target.value, ast.Name):
        return target.value.id
    return None


def _plan_typed_names(scope: ast.AST, context: FileContext) -> Set[str]:
    """Local names in ``scope`` that are (or conventionally hold) plan objects.

    The scope's *own* statements only — nested functions are separate scopes
    in :func:`_function_scopes` and track their own bindings (a name rebound
    inside a closure does not leak plan-ness outward).
    """
    names: Set[str] = set()
    if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
        for arg in scope.args.posonlyargs + scope.args.args + scope.args.kwonlyargs:
            if _is_plan_name(arg.arg):
                names.add(arg.arg)
            elif arg.annotation is not None and _annotation_is_plan(arg.annotation, context):
                names.add(arg.arg)
    for node in ast.walk(scope):
        if isinstance(node, ast.Assign) and _value_is_plan(node.value, context):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        if isinstance(node, ast.Assign) and _value_is_lease(node.value):
            # plan, scratch = cache.lease(...): the first element is the plan
            for target in node.targets:
                if (
                    isinstance(target, (ast.Tuple, ast.List))
                    and target.elts
                    and isinstance(target.elts[0], ast.Name)
                ):
                    names.add(target.elts[0].id)
        if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            if _annotation_is_plan(node.annotation, context):
                names.add(node.target.id)
        if isinstance(node, (ast.For, ast.comprehension)):
            # for step in plan.steps: the iteration variable is a PlanStep
            iter_node = node.iter
            if (
                isinstance(iter_node, ast.Attribute)
                and iter_node.attr == "steps"
                and isinstance(iter_node.value, ast.Name)
                and (iter_node.value.id in names or _is_plan_name(iter_node.value.id))
            ):
                target = node.target
                if isinstance(target, ast.Name):
                    names.add(target.id)
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            if _is_plan_name(node.id):
                names.add(node.id)
    return names


def _annotation_is_plan(annotation: ast.expr, context: FileContext) -> bool:
    dotted = context.resolver.dotted_name(annotation)
    if dotted is None:
        if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
            return annotation.value.rsplit(".", 1)[-1] in _FROZEN_TYPES
        return False
    leaf = dotted.rsplit(".", 1)[-1]
    return leaf in _FROZEN_TYPES and (
        dotted in _FROZEN_TYPES or dotted.startswith(_PLANS_MODULE)
    )


def _value_is_plan(value: ast.expr, context: FileContext) -> bool:
    if not isinstance(value, ast.Call):
        return False
    dotted = context.resolver.dotted_name(value.func)
    if dotted is None:
        return False
    leaf = dotted.rsplit(".", 1)[-1]
    return leaf in _FACTORIES and (dotted in _FACTORIES or dotted.startswith(_PLANS_MODULE))


def _value_is_lease(value: ast.expr) -> bool:
    return (
        isinstance(value, ast.Call)
        and isinstance(value.func, ast.Attribute)
        and value.func.attr == "lease"
    )
