"""RNG discipline: every stochastic draw must flow through ``repro.common.rng``.

The reproduction's end-to-end determinism (seeded posteriors bit-identical
across engines, backends and cohort packings) rests on one rule: randomness
is derived from :class:`repro.common.rng.RandomState` streams, and child
streams are *mixed* (``spawn`` with tuple entropy keys), never constructed
ad hoc.  PR 3's seed-collision bug — ``base + index`` keying silently giving
concurrent requests identical trace streams — is the class of failure these
rules catch at lint time:

* ``rng-module-call`` — ``np.random.rand()`` et al. mutate numpy's hidden
  process-global stream, invisible to ``seed_all``/``temporary_seed``.
* ``rng-direct-construction`` — ``np.random.default_rng(...)`` /
  ``SeedSequence(...)`` outside ``repro/common/rng.py`` bypasses the one
  sanctioned derivation point (and is where additive-seed collisions breed).
* ``rng-construction-in-loop`` — a ``RandomState(...)`` built per loop
  iteration in engine/serving/training code is almost always a hand-rolled
  stream derivation; use ``spawn`` with a mixed key instead.
* ``rng-stdlib-random`` — stdlib ``random`` is a second hidden global stream.
* ``rng-time-entropy`` — wall-clock-seeded streams are unreproducible by
  construction.
"""

from __future__ import annotations

import ast
from typing import List

from repro.analysis.core import Checker, FileContext, ImportResolver
from repro.analysis.findings import Finding

__all__ = ["RngDisciplineChecker"]

#: the sanctioned home of raw generator construction
ALLOWED_FILE = "repro/common/rng.py"

#: generator/seed constructors (flagged as construction, not as stateful calls)
_CONSTRUCTORS = {
    "numpy.random.default_rng",
    "numpy.random.Generator",
    "numpy.random.SeedSequence",
    "numpy.random.RandomState",
    "numpy.random.PCG64",
    "numpy.random.MT19937",
    "numpy.random.Philox",
    "numpy.random.SFC64",
}

#: the repo's own stream type (loop-construction rule only — building one at
#: module/function scope from an explicit seed is the sanctioned pattern)
_REPRO_RANDOM_STATE = "repro.common.rng.RandomState"

#: wall-clock sources that must never feed a seed
_TIME_SOURCES = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
}

#: call targets whose arguments are seed entropy
_SEEDING_TARGETS = {
    "repro.common.rng.RandomState",
    "repro.common.rng.seed_all",
    "repro.common.rng.temporary_seed",
    "numpy.random.default_rng",
    "numpy.random.SeedSequence",
    "numpy.random.RandomState",
    "numpy.random.seed",
}

#: directories whose modules are hot paths for the in-loop construction rule
HOT_PATH_FRAGMENTS = (
    "repro/ppl/",
    "repro/serving/",
    "repro/distributed/",
    "repro/data/",
    "repro/tensor/",
)

_LOOP_NODES = (ast.For, ast.AsyncFor, ast.While, ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)


class _RngVisitor(ast.NodeVisitor):
    def __init__(self, context: FileContext, resolver: ImportResolver) -> None:
        self.context = context
        self.resolver = resolver
        self.findings: List[Finding] = []
        self._loop_depth = 0
        self._in_sanctioned_file = context.in_scope(ALLOWED_FILE)
        self._hot_path = context.in_scope(*HOT_PATH_FRAGMENTS)
        self._in_test_scope = context.in_test_scope()

    def _emit(self, node: ast.AST, rule: str, message: str, severity: str = "error") -> None:
        self.findings.append(
            Finding(self.context.path, getattr(node, "lineno", 1), rule, severity, message)
        )

    # ---------------------------------------------------------------- imports
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "random" or alias.name.startswith("random."):
                self._emit(
                    node,
                    "rng-stdlib-random",
                    "stdlib `random` is a hidden process-global stream invisible to "
                    "seed_all/temporary_seed; draw through repro.common.rng instead",
                )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random" and not node.level:
            self._emit(
                node,
                "rng-stdlib-random",
                "stdlib `random` is a hidden process-global stream invisible to "
                "seed_all/temporary_seed; draw through repro.common.rng instead",
            )
        self.generic_visit(node)

    # ------------------------------------------------------------------ loops
    def generic_visit(self, node: ast.AST) -> None:
        if isinstance(node, _LOOP_NODES):
            self._loop_depth += 1
            super().generic_visit(node)
            self._loop_depth -= 1
        else:
            super().generic_visit(node)

    # ------------------------------------------------------------------ calls
    def visit_Call(self, node: ast.Call) -> None:
        dotted = self.resolver.dotted_name(node.func)
        if dotted is not None:
            self._check_call(node, dotted)
        self.generic_visit(node)

    def _check_call(self, node: ast.Call, dotted: str) -> None:
        if dotted in _SEEDING_TARGETS or dotted.endswith((".reseed", ".spawn")):
            self._check_time_entropy(node, dotted)
        if self._in_sanctioned_file:
            return
        if dotted in _CONSTRUCTORS:
            if self._in_test_scope and (node.args or node.keywords):
                return  # tests/benchmarks may build explicitly-seeded generators
            if self._in_test_scope:
                self._emit(
                    node,
                    "rng-direct-construction",
                    f"seedless `{dotted}` in a test/benchmark draws OS entropy, so "
                    "the run is unrepeatable; pass an explicit seed",
                )
                return
            self._emit(
                node,
                "rng-direct-construction",
                f"`{dotted}` constructed outside repro/common/rng.py; derive streams "
                "via repro.common.rng.RandomState / .spawn (mixed entropy keys) so "
                "they stay reproducible and collision-free",
            )
            return
        if dotted.startswith("numpy.random."):
            member = dotted[len("numpy.random."):]
            if "." not in member:
                self._emit(
                    node,
                    "rng-module-call",
                    f"`{dotted}` draws from numpy's hidden process-global stream; "
                    "use a repro.common.rng.RandomState stream instead",
                )
                return
        if (
            self._hot_path
            and self._loop_depth > 0
            and dotted == _REPRO_RANDOM_STATE
        ):
            self._emit(
                node,
                "rng-construction-in-loop",
                "RandomState constructed inside a loop in a hot-path module; "
                "derive per-iteration streams with rng.spawn((base, index)) "
                "so keys are mixed, not re-seeded ad hoc",
            )

    def _check_time_entropy(self, node: ast.Call, dotted: str) -> None:
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            for sub in ast.walk(arg):
                if isinstance(sub, ast.Call):
                    source = self.resolver.dotted_name(sub.func)
                    if source in _TIME_SOURCES:
                        self._emit(
                            sub,
                            "rng-time-entropy",
                            f"`{source}()` used as seed entropy for `{dotted}`; "
                            "wall-clock seeds are unreproducible — derive from a "
                            "seeded RandomState instead",
                        )


class RngDisciplineChecker(Checker):
    name = "rng-discipline"
    rules = {
        "rng-module-call": "np.random.* stateful module-level call outside repro/common/rng.py",
        "rng-direct-construction": "generator/seed constructed outside repro/common/rng.py",
        "rng-construction-in-loop": "RandomState constructed inside a loop in a hot-path module",
        "rng-stdlib-random": "stdlib `random` imported (second hidden global stream)",
        "rng-time-entropy": "wall-clock time used as seed entropy",
    }

    def check(self, context: FileContext) -> List[Finding]:
        visitor = _RngVisitor(context, context.resolver)
        visitor.visit(context.tree)
        return visitor.findings
