"""Lock discipline: a summary-based static race detector for the whole tree.

The serving subsystem is a web of worker threads, a scheduler thread, a
collector thread and client threads, all touching per-object state guarded by
``with self._lock:`` scopes — and since PR 4 those scopes cross module
boundaries (service -> scheduler -> worker pool).  This checker runs entirely
on the whole-program engine (:mod:`repro.analysis.summaries` +
:mod:`repro.analysis.fixpoint`): per-function summaries record what each
function acquires, writes and calls; the fixpoint propagates held-lock sets
across the call graph, including through callback registrations like
``MicroBatchScheduler(dispatch=self._dispatch_cohort)``.

* ``lock-unlocked-write`` — a mutable ``self._x`` attribute written *inside*
  a lock scope somewhere and *outside* any lock scope somewhere else is a
  lost-update / torn-state candidate.  "Inside" includes locks held on entry:
  a private helper called only with the lock held counts as locked, whichever
  module the call comes from.
* ``lock-order-inversion`` — two locks acquired in opposite orders on two
  paths deadlock under contention.  Edges come from lexical nesting *and*
  from call sites: holding lock A while calling (transitively) into anything
  that acquires lock B adds an A -> B edge, across any number of modules.
* ``lock-blocking-call`` — a blocking primitive (``Queue.get``,
  ``Future.result``, ``sleep``, ``join``, foreign ``wait``) reached while a
  lock is held turns one slow consumer into a system-wide stall.  Reported at
  the blocking call when the function itself holds (or inherits) the lock,
  and at the *call site* when a lock holder calls into a function that may
  block (with the witness chain in the message).

Writes in ``__init__``/``__getstate__``-like methods are construction, not
contention, and are ignored; nested functions and lambdas run on unknown
threads later, so they inherit nothing.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.analysis.core import Checker, FileContext
from repro.analysis.findings import Finding
from repro.analysis.summaries import display_name, short_lock

__all__ = ["LockDisciplineChecker"]

#: methods whose writes are construction/serialisation, not shared-state races
_INIT_LIKE = {"__init__", "__new__", "__getstate__", "__setstate__", "__reduce__", "__copy__", "__deepcopy__"}


class LockDisciplineChecker(Checker):
    name = "lock-discipline"
    rules = {
        "lock-unlocked-write": "attribute written both inside and outside lock scopes",
        "lock-order-inversion": "two locks acquired in opposite orders on different paths",
        "lock-blocking-call": "blocking call (Queue.get/result/sleep/join/foreign wait) under a lock",
    }

    def __init__(self) -> None:
        self._project = None

    def begin_project(self, project) -> None:
        self._project = project

    def check(self, context: FileContext) -> List[Finding]:
        return []  # everything is whole-program: emitted from finalize()

    def finalize(self) -> List[Finding]:
        if self._project is None:
            return []
        project = self._project
        summaries = project.summaries()
        graph = project.graph()
        findings: List[Finding] = []
        findings.extend(self._check_writes(project, summaries, graph))
        findings.extend(self._check_blocking(project, summaries, graph))
        findings.extend(self._check_ordering(project, summaries, graph))
        seen = set()
        unique: List[Finding] = []
        for finding in findings:
            key = (finding.file, finding.line, finding.rule, finding.message)
            if key not in seen:
                seen.add(key)
                unique.append(finding)
        return unique

    # -------------------------------------------------------- unlocked writes
    def _check_writes(self, project, summaries, graph) -> List[Finding]:
        # (class qual, attr) -> [(write, effective held, function qual)]
        by_attr: Dict[Tuple[str, str], List[Tuple[object, frozenset, str]]] = {}
        for qual, summary in summaries.items():
            decl = summary.decl
            if decl.cls is None or decl.name in _INIT_LIKE:
                continue
            if not project.mro_lock_attrs(decl.cls):
                continue  # lock-free classes have no lock discipline to violate
            entry = graph.entry_held.get(qual, frozenset())
            for write in summary.writes:
                effective = write.held if write.deferred else write.held | entry
                by_attr.setdefault((decl.cls, write.attr), []).append((write, effective, qual))
        findings: List[Finding] = []
        for (cls, attr), writes in by_attr.items():
            locked = [entry for entry in writes if entry[1]]
            unlocked = [entry for entry in writes if not entry[1]]
            if not locked or not unlocked:
                continue
            guard = sorted({short_lock(lock) for _, held, _ in locked for lock in held})
            witness_write, _, witness_qual = locked[0]
            class_name = cls.rsplit(".", 1)[-1]
            witness_name = summaries[witness_qual].decl.name
            for write, _, qual in unlocked:
                findings.append(
                    Finding(
                        summaries[qual].path,
                        write.line,
                        "lock-unlocked-write",
                        "error",
                        f"{class_name}.{attr} is written under {guard} (e.g. "
                        f"{witness_name}:{witness_write.line}) but without a lock in "
                        f"{summaries[qual].decl.name}; concurrent writers can lose updates",
                    )
                )
        return findings

    # --------------------------------------------------------- blocking calls
    def _check_blocking(self, project, summaries, graph) -> List[Finding]:
        findings: List[Finding] = []
        for qual, summary in summaries.items():
            entry = graph.entry_held.get(qual, frozenset())
            where = display_name(project, qual)
            for op in summary.blocking:
                effective = op.held | entry
                if not effective:
                    continue
                if op.releases is not None and op.releases in effective:
                    continue  # waiting on the held condition releases it
                findings.append(
                    Finding(
                        summary.path,
                        op.line,
                        "lock-blocking-call",
                        "warning",
                        f"{op.desc} called in {where} while holding "
                        f"{sorted(short_lock(lock) for lock in effective)}; a blocked "
                        "holder stalls every other thread contending for the lock",
                    )
                )
            # Interprocedural: holding a lock while calling into something that
            # may block.  Skip callees that inherit the lock on entry — their
            # own blocking ops are already reported above, at the deeper site.
            for site, targets in zip(summary.calls, graph.targets[qual]):
                if site.deferred:
                    continue
                effective = site.held | entry
                if not effective:
                    continue
                for target in targets:
                    witness = graph.may_block.get(target)
                    if witness is None or graph.entry_held.get(target, frozenset()):
                        continue
                    findings.append(
                        Finding(
                            summary.path,
                            site.line,
                            "lock-blocking-call",
                            "warning",
                            f"{where} calls {display_name(project, target)} "
                            f"(may block: {witness}) while holding "
                            f"{sorted(short_lock(lock) for lock in effective)}; a blocked "
                            "holder stalls every other thread contending for the lock",
                        )
                    )
        return findings

    # ----------------------------------------------------------- lock ordering
    def _check_ordering(self, project, summaries, graph) -> List[Finding]:
        # edges: (outer lock, inner lock) -> representative (file, line, text)
        edges: Dict[Tuple[str, str], Tuple[str, int, str]] = {}

        def add_edge(outer: str, inner: str, file: str, line: int, text: str) -> None:
            if outer != inner:
                edges.setdefault((outer, inner), (file, line, text))

        for qual, summary in summaries.items():
            entry = graph.entry_held.get(qual, frozenset())
            name = display_name(project, qual)
            for acq in summary.acquires:
                for outer in acq.held | entry:
                    add_edge(
                        outer,
                        acq.lock,
                        summary.path,
                        acq.line,
                        f"{name} acquires {short_lock(acq.lock)} while holding {short_lock(outer)}",
                    )
            for site, targets in zip(summary.calls, graph.targets[qual]):
                if site.deferred:
                    continue
                held = site.held | entry
                if not held:
                    continue
                for target in targets:
                    for inner, how in graph.trans_acquires.get(target, {}).items():
                        for outer in held:
                            add_edge(
                                outer,
                                inner,
                                summary.path,
                                site.line,
                                f"{name} calls {display_name(project, target)} "
                                f"({how}) while holding {short_lock(outer)}",
                            )

        findings: List[Finding] = []
        for cycle_edges in _cycles(edges):
            chain = " ; ".join(edges[edge][2] for edge in cycle_edges)
            file, line, _ = edges[cycle_edges[0]]
            findings.append(
                Finding(
                    file,
                    line,
                    "lock-order-inversion",
                    "error",
                    f"lock-order inversion: {chain} — opposite acquisition orders deadlock "
                    "under contention",
                )
            )
        return findings


def _cycles(edges: Dict[Tuple[str, str], object]) -> List[List[Tuple[str, str]]]:
    """Edge groups that participate in a cycle (one group per SCC, sorted)."""
    graph: Dict[str, List[str]] = {}
    for outer, inner in edges:
        graph.setdefault(outer, []).append(inner)
        graph.setdefault(inner, [])
    index: Dict[str, int] = {}
    low: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    sccs: List[List[str]] = []
    counter = [0]

    def strongconnect(root: str) -> None:
        work = [(root, iter(graph[root]))]
        index[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, neighbours = work[-1]
            advanced = False
            for neighbour in neighbours:
                if neighbour not in index:
                    index[neighbour] = low[neighbour] = counter[0]
                    counter[0] += 1
                    stack.append(neighbour)
                    on_stack.add(neighbour)
                    work.append((neighbour, iter(graph[neighbour])))
                    advanced = True
                    break
                if neighbour in on_stack:
                    low[node] = min(low[node], index[neighbour])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                component: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                if len(component) > 1:
                    sccs.append(sorted(component))

    for node in sorted(graph):
        if node not in index:
            strongconnect(node)

    groups: List[List[Tuple[str, str]]] = []
    for component in sccs:
        members = set(component)
        group = sorted(
            (outer, inner) for outer, inner in edges if outer in members and inner in members
        )
        if group:
            groups.append(group)
    return groups
