"""Lock discipline: a lightweight static race detector for the serving tier.

The serving subsystem (PR 2/PR 4) is a web of worker threads, a scheduler
thread, a collector thread and client threads, all touching per-object state
guarded by ``with self._lock:`` scopes.  Every bug class this checker models
was hand-audited in those PRs; the checker re-runs the audit mechanically:

* ``lock-unlocked-write`` — a mutable ``self._x`` attribute written *inside*
  a lock scope somewhere and *outside* any lock scope somewhere else is a
  lost-update / torn-state candidate (the "metrics counter incremented off
  the lock" class).
* ``lock-order-inversion`` — two locks acquired in opposite orders on two
  paths (including cross-class paths like service -> scheduler) deadlock
  under contention.
* ``lock-blocking-call`` — a blocking call (``Queue.get``, ``Future.result``,
  ``sleep``, ``join``, foreign ``wait``) made while holding a lock turns one
  slow consumer into a system-wide stall.

Scope model: locks are per-class ``self.<attr>`` bindings of
``threading.Lock/RLock/Condition`` (a ``Condition(self.other)`` aliases the
lock it wraps, so ``with self._idle:`` counts as holding ``self._lock``).
Private helper methods called *only* from inside lock scopes inherit those
locks — ``_pick_worker`` style helpers don't need suppressions.  Writes in
``__init__``/``__getstate__``-like methods are construction, not contention,
and are ignored; nested functions and lambdas run on unknown threads later,
so they inherit nothing.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.analysis.core import Checker, FileContext, ImportResolver
from repro.analysis.findings import Finding
from repro.analysis.suppressions import is_suppressed

__all__ = ["LockDisciplineChecker"]

#: threading primitives that guard a ``with`` scope
_LOCK_TYPES = {"threading.Lock", "threading.RLock", "threading.Condition"}

#: methods whose writes are construction/serialisation, not shared-state races
_INIT_LIKE = {"__init__", "__new__", "__getstate__", "__setstate__", "__reduce__", "__copy__", "__deepcopy__"}

#: container methods that mutate their receiver
_MUTATORS = {
    "append", "extend", "insert", "remove", "pop", "popitem", "clear", "update",
    "setdefault", "add", "discard", "appendleft", "extendleft", "popleft",
    "move_to_end", "set",
}


def _self_attr(node: ast.AST) -> Optional[str]:
    """``self.attr`` (optionally through subscripts) -> ``attr``."""
    while isinstance(node, ast.Subscript):
        node = node.value
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _receiver_text(node: ast.AST) -> str:
    """Best-effort dotted text of a call receiver, for name-based heuristics."""
    parts: List[str] = []
    while True:
        if isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        elif isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.Name):
            parts.append(node.id)
            break
        else:
            break
    return ".".join(reversed(parts))


@dataclass
class _Write:
    attr: str
    method: str
    line: int
    held: FrozenSet[str]
    nested: bool


@dataclass
class _CallSite:
    callee: str          # same-class private method name
    caller: str
    line: int
    held: FrozenSet[str]
    nested: bool


@dataclass
class _Acquisition:
    lock: str            # canonical lock attr acquired
    held: FrozenSet[str]  # locks already held at that point
    method: str
    line: int


@dataclass
class _AttrCall:
    """A ``self.<attr>.<method>()`` call — the cross-class edge material."""

    attr: str
    method: str
    line: int
    held: FrozenSet[str]
    caller: str
    nested: bool


@dataclass
class _ClassInfo:
    name: str
    file: str
    lock_attrs: Set[str] = field(default_factory=set)
    aliases: Dict[str, str] = field(default_factory=dict)  # condition attr -> wrapped lock
    writes: List[_Write] = field(default_factory=list)
    call_sites: List[_CallSite] = field(default_factory=list)
    acquisitions: List[_Acquisition] = field(default_factory=list)
    attr_calls: List[_AttrCall] = field(default_factory=list)
    attr_types: Dict[str, Set[str]] = field(default_factory=dict)  # self.attr -> class names
    method_names: Set[str] = field(default_factory=set)

    def canonical(self, attr: str) -> str:
        return self.aliases.get(attr, attr)

    def inherited_locks(self) -> Dict[str, FrozenSet[str]]:
        """Locks guaranteed held on entry to each private helper method.

        Fixpoint over the intra-class call graph: a private method inherits
        the intersection of the lock sets held at every one of its same-class
        call sites (public methods and uncalled helpers inherit nothing —
        external callers are unknowable).
        """
        inherited: Dict[str, FrozenSet[str]] = {name: frozenset() for name in self.method_names}
        sites_by_callee: Dict[str, List[_CallSite]] = {}
        for site in self.call_sites:
            sites_by_callee.setdefault(site.callee, []).append(site)
        for _ in range(8):  # call chains in this repo are shallow; 8 is generous
            changed = False
            for method in self.method_names:
                if not method.startswith("_") or method.startswith("__"):
                    continue
                sites = sites_by_callee.get(method)
                if not sites:
                    continue
                contexts = []
                for site in sites:
                    if site.nested:
                        contexts.append(frozenset())
                    else:
                        contexts.append(site.held | inherited.get(site.caller, frozenset()))
                combined: FrozenSet[str] = frozenset.intersection(*contexts)
                if combined != inherited[method]:
                    inherited[method] = combined
                    changed = True
            if not changed:
                break
        return inherited


class _ClassVisitor:
    """Walks one class body, tracking the lexical ``with self.<lock>`` stack."""

    def __init__(
        self, info: _ClassInfo, resolver: ImportResolver, findings: List[Finding], path: str
    ) -> None:
        self.info = info
        self.resolver = resolver
        self.findings = findings
        self.path = path

    # ------------------------------------------------------------- first pass
    def collect_locks(self, node: ast.ClassDef) -> None:
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Assign) or not isinstance(sub.value, ast.Call):
                continue
            dotted = self.resolver.dotted_name(sub.value.func)
            if dotted not in _LOCK_TYPES:
                continue
            for target in sub.targets:
                attr = _self_attr(target)
                if attr is None:
                    continue
                if dotted == "threading.Condition" and sub.value.args:
                    wrapped = _self_attr(sub.value.args[0])
                    if wrapped is not None:
                        self.info.aliases[attr] = wrapped
                        self.info.lock_attrs.add(wrapped)
                        continue
                self.info.lock_attrs.add(attr)

    def collect_attr_types(self, node: ast.ClassDef, class_names: Set[str]) -> None:
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Assign) or not isinstance(sub.value, ast.Call):
                continue
            func = sub.value.func
            type_name = func.attr if isinstance(func, ast.Attribute) else (
                func.id if isinstance(func, ast.Name) else None
            )
            if type_name is None or type_name not in class_names:
                continue
            for target in sub.targets:
                attr = _self_attr(target)
                if attr is not None:
                    self.info.attr_types.setdefault(attr, set()).add(type_name)

    # ------------------------------------------------------------ second pass
    def walk_methods(self, node: ast.ClassDef) -> None:
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.info.method_names.add(stmt.name)
                for child in stmt.body:
                    self._walk(child, stmt.name, frozenset(), nested=False)

    def _walk(self, node: ast.AST, method: str, held: FrozenSet[str], nested: bool) -> None:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            acquired = list(held)
            for item in node.items:
                self._walk(item.context_expr, method, held, nested)
                attr = _self_attr(item.context_expr)
                if attr is not None and self.info.canonical(attr) in self.info.lock_attrs:
                    lock = self.info.canonical(attr)
                    if lock not in acquired:
                        self.info.acquisitions.append(
                            _Acquisition(lock, frozenset(acquired), method, item.context_expr.lineno)
                        )
                        acquired.append(lock)
            inner = frozenset(acquired)
            for child in node.body:
                self._walk(child, method, inner, nested)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            # A nested function runs later, on an unknown thread: no lock context.
            body = node.body if isinstance(node.body, list) else [node.body]
            for child in body:
                self._walk(child, method, frozenset(), nested=True)
            return
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                self._record_write(target, method, held, nested)
            if node.value is not None:
                self._walk(node.value, method, held, nested)
            return
        if isinstance(node, ast.Delete):
            for target in node.targets:
                self._record_write(target, method, held, nested)
            return
        if isinstance(node, ast.Call):
            self._record_call(node, method, held, nested)
            for child in ast.iter_child_nodes(node):
                self._walk(child, method, held, nested)
            return
        for child in ast.iter_child_nodes(node):
            self._walk(child, method, held, nested)

    def _record_write(self, target: ast.AST, method: str, held: FrozenSet[str], nested: bool) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._record_write(element, method, held, nested)
            return
        if isinstance(target, ast.Starred):
            self._record_write(target.value, method, held, nested)
            return
        attr = _self_attr(target)
        if attr is None or self.info.canonical(attr) in self.info.lock_attrs:
            return
        self.info.writes.append(_Write(attr, method, target.lineno, held, nested))

    def _record_call(self, node: ast.Call, method: str, held: FrozenSet[str], nested: bool) -> None:
        func = node.func
        # self._helper(...) — intra-class call site (lock inheritance)
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "self"
        ):
            self.info.call_sites.append(_CallSite(func.attr, method, node.lineno, held, nested))
        if isinstance(func, ast.Attribute):
            receiver = func.value
            receiver_attr = _self_attr(receiver)
            # self.attr.method(...) — mutation and cross-class edge material
            if receiver_attr is not None:
                if func.attr in _MUTATORS and self.info.canonical(receiver_attr) not in self.info.lock_attrs:
                    self.info.writes.append(
                        _Write(receiver_attr, method, node.lineno, held, nested)
                    )
                if not nested:
                    self.info.attr_calls.append(
                        _AttrCall(receiver_attr, func.attr, node.lineno, held, method, nested)
                    )
            if held and not nested:
                self._check_blocking(node, func, method, held)

    def _check_blocking(
        self, node: ast.Call, func: ast.Attribute, method: str, held: FrozenSet[str]
    ) -> None:
        receiver = _receiver_text(func.value)
        dotted = self.resolver.dotted_name(func)
        blocking: Optional[str] = None
        if dotted == "time.sleep":
            blocking = "time.sleep"
        elif func.attr == "result":
            blocking = "Future.result"
        elif func.attr == "join" and isinstance(func.value, (ast.Name, ast.Attribute)):
            blocking = "join"
        elif func.attr == "get" and "queue" in receiver.lower():
            blocking = "Queue.get"
        elif func.attr == "wait":
            attr = _self_attr(func.value)
            if attr is None or self.info.canonical(attr) not in held:
                blocking = "wait on a foreign object"
        if blocking is not None:
            self.findings.append(
                Finding(
                    self.path,
                    node.lineno,
                    "lock-blocking-call",
                    "warning",
                    f"{blocking} called in {self.info.name}.{method} while holding "
                    f"{sorted(held)}; a blocked holder stalls every other thread "
                    "contending for the lock",
                )
            )


class LockDisciplineChecker(Checker):
    name = "lock-discipline"
    rules = {
        "lock-unlocked-write": "attribute written both inside and outside lock scopes",
        "lock-order-inversion": "two locks acquired in opposite orders on different paths",
        "lock-blocking-call": "blocking call (Queue.get/result/sleep/join/foreign wait) under a lock",
    }

    def __init__(self) -> None:
        self._classes: List[_ClassInfo] = []
        self._suppressions: Dict[str, Dict[int, Set[str]]] = {}

    def check(self, context: FileContext) -> List[Finding]:
        findings: List[Finding] = []
        resolver = ImportResolver(context.tree)
        self._suppressions[context.path] = context.suppressions
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            info = _ClassInfo(node.name, context.path)
            visitor = _ClassVisitor(info, resolver, findings, context.path)
            visitor.collect_locks(node)
            if not info.lock_attrs:
                continue  # lock-free classes have no lock discipline to violate
            visitor.walk_methods(node)
            self._classes.append((info, node, resolver))  # type: ignore[arg-type]
            findings.extend(self._check_writes(info))
        return findings

    def _check_writes(self, info: _ClassInfo) -> List[Finding]:
        inherited = info.inherited_locks()

        def effective(write: _Write) -> FrozenSet[str]:
            if write.nested:
                return write.held
            return write.held | inherited.get(write.method, frozenset())

        findings: List[Finding] = []
        by_attr: Dict[str, List[_Write]] = {}
        for write in info.writes:
            if write.method in _INIT_LIKE:
                continue
            by_attr.setdefault(write.attr, []).append(write)
        for attr, writes in by_attr.items():
            locked = [w for w in writes if effective(w)]
            unlocked = [w for w in writes if not effective(w)]
            if not locked or not unlocked:
                continue
            guard = sorted({lock for w in locked for lock in effective(w)})
            witness = locked[0]
            for write in unlocked:
                findings.append(
                    Finding(
                        info.file,
                        write.line,
                        "lock-unlocked-write",
                        "error",
                        f"{info.name}.{attr} is written under {guard} (e.g. "
                        f"{witness.method}:{witness.line}) but without a lock in "
                        f"{write.method}; concurrent writers can lose updates",
                    )
                )
        return findings

    # ------------------------------------------------------------- cross-file
    def finalize(self) -> List[Finding]:
        infos: List[_ClassInfo] = [entry[0] for entry in self._classes]  # type: ignore[misc]
        class_by_name: Dict[str, _ClassInfo] = {info.name: info for info in infos}
        # attribute types need the full class-name universe, so resolve now
        names = set(class_by_name)
        for info, node, resolver in self._classes:  # type: ignore[misc]
            _ClassVisitor(info, resolver, [], info.file).collect_attr_types(node, names)

        def lock_node(info: _ClassInfo, lock: str) -> str:
            return f"{info.name}.{lock}"

        # edges: (outer lock, inner lock) -> representative (file, line, text)
        edges: Dict[Tuple[str, str], Tuple[str, int, str]] = {}

        def add_edge(outer: str, inner: str, file: str, line: int, text: str) -> None:
            if outer != inner:
                edges.setdefault((outer, inner), (file, line, text))

        for info in infos:
            inherited = info.inherited_locks()
            for acq in info.acquisitions:
                held = acq.held | inherited.get(acq.method, frozenset())
                for outer in held:
                    add_edge(
                        lock_node(info, outer),
                        lock_node(info, acq.lock),
                        info.file,
                        acq.line,
                        f"{info.name}.{acq.method} acquires {acq.lock} while holding {outer}",
                    )
            # cross-class: self.attr.m() under a held lock enters attr's class
            for call in info.attr_calls:
                held = call.held | inherited.get(call.caller, frozenset())
                if not held:
                    continue
                for type_name in info.attr_types.get(call.attr, ()):
                    target = class_by_name.get(type_name)
                    if target is None:
                        continue
                    target_inherited = target.inherited_locks()
                    target_locks = {
                        acq.lock
                        for acq in target.acquisitions
                        if acq.method == call.method
                    } | target_inherited.get(call.method, frozenset())
                    for inner in target_locks:
                        for outer in held:
                            add_edge(
                                lock_node(info, outer),
                                lock_node(target, inner),
                                info.file,
                                call.line,
                                f"{info.name}.{call.caller} calls {type_name}."
                                f"{call.method} (acquires {inner}) while holding {outer}",
                            )

        findings: List[Finding] = []
        for cycle_edges in _cycles(edges):
            chain = " ; ".join(edges[edge][2] for edge in cycle_edges)
            file, line, _ = edges[cycle_edges[0]]
            finding = Finding(
                file,
                line,
                "lock-order-inversion",
                "error",
                f"lock-order inversion: {chain} — opposite acquisition orders deadlock "
                "under contention",
            )
            suppressions = self._suppressions.get(file, {})
            if not is_suppressed(suppressions, line, finding.rule):
                findings.append(finding)
        return findings


def _cycles(edges: Dict[Tuple[str, str], object]) -> List[List[Tuple[str, str]]]:
    """Edge groups that participate in a cycle (one group per SCC, sorted)."""
    graph: Dict[str, List[str]] = {}
    for outer, inner in edges:
        graph.setdefault(outer, []).append(inner)
        graph.setdefault(inner, [])
    index: Dict[str, int] = {}
    low: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    sccs: List[List[str]] = []
    counter = [0]

    def strongconnect(root: str) -> None:
        work = [(root, iter(graph[root]))]
        index[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, neighbours = work[-1]
            advanced = False
            for neighbour in neighbours:
                if neighbour not in index:
                    index[neighbour] = low[neighbour] = counter[0]
                    counter[0] += 1
                    stack.append(neighbour)
                    on_stack.add(neighbour)
                    work.append((neighbour, iter(graph[neighbour])))
                    advanced = True
                    break
                if neighbour in on_stack:
                    low[node] = min(low[node], index[neighbour])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                component: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                if len(component) > 1:
                    sccs.append(sorted(component))

    for node in sorted(graph):
        if node not in index:
            strongconnect(node)

    groups: List[List[Tuple[str, str]]] = []
    for component in sccs:
        members = set(component)
        group = sorted(
            (outer, inner) for outer, inner in edges if outer in members and inner in members
        )
        if group:
            groups.append(group)
    return groups
