"""Checker registry: every invariant family the linter enforces."""

from __future__ import annotations

from typing import List

from repro.analysis.core import Checker
from repro.analysis.checkers.rng import RngDisciplineChecker
from repro.analysis.checkers.locks import LockDisciplineChecker
from repro.analysis.checkers.shapes import ShapeContractChecker
from repro.analysis.checkers.pickle_safety import PickleSafetyChecker
from repro.analysis.checkers.rng_ownership import RngOwnershipChecker
from repro.analysis.checkers.futures import FutureResolutionChecker
from repro.analysis.checkers.determinism import DeterministicIterationChecker
from repro.analysis.checkers.plans_immutability import PlanImmutabilityChecker

__all__ = [
    "all_checkers",
    "RngDisciplineChecker",
    "LockDisciplineChecker",
    "ShapeContractChecker",
    "PickleSafetyChecker",
    "RngOwnershipChecker",
    "FutureResolutionChecker",
    "DeterministicIterationChecker",
    "PlanImmutabilityChecker",
]


def all_checkers() -> List[Checker]:
    """Fresh instances of every registered checker (they carry run state)."""
    return [
        RngDisciplineChecker(),
        LockDisciplineChecker(),
        ShapeContractChecker(),
        PickleSafetyChecker(),
        RngOwnershipChecker(),
        FutureResolutionChecker(),
        DeterministicIterationChecker(),
        PlanImmutabilityChecker(),
    ]
