"""Checker registry: every invariant family the linter enforces."""

from __future__ import annotations

from typing import List

from repro.analysis.core import Checker
from repro.analysis.checkers.rng import RngDisciplineChecker
from repro.analysis.checkers.locks import LockDisciplineChecker
from repro.analysis.checkers.shapes import ShapeContractChecker
from repro.analysis.checkers.pickle_safety import PickleSafetyChecker

__all__ = [
    "all_checkers",
    "RngDisciplineChecker",
    "LockDisciplineChecker",
    "ShapeContractChecker",
    "PickleSafetyChecker",
]


def all_checkers() -> List[Checker]:
    """Fresh instances of every registered checker (they carry run state)."""
    return [
        RngDisciplineChecker(),
        LockDisciplineChecker(),
        ShapeContractChecker(),
        PickleSafetyChecker(),
    ]
