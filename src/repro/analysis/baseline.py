"""Committed baseline: the reviewed debt the gate tolerates, and nothing else.

A finding's baseline identity is ``(file, rule, message)`` — deliberately
*not* the line number, so unrelated edits that shift code never invalidate
the baseline, while any change to what the finding says (a new attribute, a
different lock set) correctly shows up as new.  Identities are counted with
multiplicity: two identical findings in one file need two baseline entries.

``diff_against_baseline`` splits a run into *new* findings (fail the gate)
and *stale* baseline entries (fixed debt that should be removed from the
file — reported so the baseline shrinks monotonically instead of fossilising).
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Dict, List, Sequence, Tuple

from repro.analysis.findings import Finding

__all__ = ["load_baseline", "save_baseline", "diff_against_baseline", "BASELINE_VERSION"]

BASELINE_VERSION = 1

_Key = Tuple[str, str, str]


def load_baseline(path: str) -> Counter:
    """Baseline file -> multiset of finding identities."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict) or "findings" not in payload:
        raise ValueError(f"{path} is not a baseline file (missing 'findings')")
    keys: Counter = Counter()
    for entry in payload["findings"]:
        keys[(entry["file"], entry["rule"], entry["message"])] += 1
    return keys


def save_baseline(path: str, findings: Sequence[Finding]) -> None:
    """Write the current findings as the new accepted baseline."""
    payload = {
        "version": BASELINE_VERSION,
        "findings": [finding.to_dict() for finding in findings],
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")


def diff_against_baseline(
    findings: Sequence[Finding], baseline: Counter
) -> Tuple[List[Finding], List[_Key]]:
    """(new findings not covered by the baseline, stale baseline entries)."""
    remaining = Counter(baseline)
    new: List[Finding] = []
    for finding in findings:
        key = finding.baseline_key
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
        else:
            new.append(finding)
    stale: List[_Key] = []
    for key, count in sorted(remaining.items()):
        stale.extend([key] * count)
    return new, stale
