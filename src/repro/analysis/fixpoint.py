"""Call-graph resolution and the interprocedural fixpoint passes.

Built once per analysis run from the :class:`~repro.analysis.project.Project`
and the per-function summaries, this module answers the questions that cross
function boundaries:

* **call targets** — ``self.m()`` resolves through the class hierarchy;
  ``self.attr.m()`` through inferred attribute types; dotted names through
  imports and ``__init__.py`` re-exports; bare names through module bindings
  and nested-function scopes.  Two callable-argument flows close the loop on
  the serving tier's callback patterns: a constructor argument stored on
  ``self`` (``MicroBatchScheduler(dispatch=...)`` then ``self._dispatch(...)``)
  and a callable parameter invoked by name.
* **entry-held locks** — which locks are held at *every* call site of a
  private function (TOP-initialised intersection fixpoint; public functions
  and nested ``def``s get the empty set — external callers are unknowable,
  and deferred bodies run on unknown threads).
* **may-block** — whether calling a function can reach a blocking primitive,
  with a human-readable witness chain.
* **transitive acquisitions** — every lock a call into a function may take,
  for cross-module lock-order edges.
* **dispatch reachability** — functions handed to ``Thread(target=...)``,
  ``pool.submit(...)``, ``apply_async`` and friends are *job bodies*; the set
  of functions reachable from them is where RNG construction is forbidden
  (streams must be spawned in the parent and passed in).

Everything here is a fixpoint over the summaries — no AST is re-walked.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis.project import Project
from repro.analysis.summaries import (
    CallSite,
    FunctionSummary,
    display_name,
    short_lock,
)

__all__ = ["CallGraph", "DispatchSite", "DISPATCH_METHODS"]

#: receiver methods that enqueue a callable for later, concurrent execution
DISPATCH_METHODS = {"submit", "apply_async", "map_async", "starmap_async", "add_done_callback"}

#: constructors whose ``target=`` runs on a new thread/process
_THREAD_CLASS_BASENAMES = {"Thread", "Process"}

_MAX_ROUNDS = 30


@dataclass
class DispatchSite:
    """One point where a callable is handed off for concurrent execution."""

    caller: str               # qualname of the dispatching function
    site: CallSite
    roots: List[str]          # resolved job-body qualnames
    path: str


class CallGraph:
    """Resolved call edges plus every fixpoint fact the checkers consume."""

    def __init__(self, project: Project, summaries: Dict[str, FunctionSummary]) -> None:
        self.project = project
        self.summaries = summaries
        #: per function, per call site (aligned with summary.calls): target qualnames
        self.targets: Dict[str, List[List[str]]] = {}
        self._attr_callables: Dict[Tuple[str, str], Set[str]] = {}
        self._param_callables: Dict[Tuple[str, str], Set[str]] = {}
        self._resolve_all()
        self.dispatches: List[DispatchSite] = self._find_dispatches()
        self.entry_held: Dict[str, FrozenSet[str]] = self._fix_entry_held()
        self.may_block: Dict[str, str] = self._fix_may_block()
        self.trans_acquires: Dict[str, Dict[str, str]] = self._fix_acquires()
        self.job_reachable: Dict[str, str] = self._reach_from_dispatches()

    # ------------------------------------------------------------- resolution
    def _resolve_all(self) -> None:
        for qual, summary in self.summaries.items():
            self.targets[qual] = [self._resolve_site(qual, site) for site in summary.calls]
        # Callable-argument flows need resolved constructor/call sites, so they
        # come second; then a single re-resolution pass picks them up.
        self._collect_attr_callables()
        self._collect_param_callables()
        for qual, summary in self.summaries.items():
            resolved = self.targets[qual]
            for index, site in enumerate(summary.calls):
                if not resolved[index]:
                    resolved[index] = self._resolve_site(qual, site, flows=True)

    def _resolve_site(self, caller: str, site: CallSite, flows: bool = False) -> List[str]:
        decl = self.summaries[caller].decl
        if site.kind == "self" and decl.cls is not None:
            method = self.project.resolve_method(decl.cls, str(site.target))
            if method is not None:
                return [method]
            if flows:
                return sorted(self._attr_callables.get((decl.cls, str(site.target)), ()))
            return []
        if site.kind == "attr" and decl.cls is not None:
            attr, method = site.target  # type: ignore[misc]
            model = self.project.classes.get(decl.cls)
            found: List[str] = []
            if model is not None:
                for type_qual in sorted(model.attr_types.get(attr, ())):
                    resolved = self.project.resolve_method(type_qual, method)
                    if resolved is not None:
                        found.append(resolved)
            return found
        if site.kind == "dotted":
            return self._resolve_dotted(caller, decl, str(site.target), flows)
        return []

    def _resolve_dotted(self, caller: str, decl, dotted: str, flows: bool) -> List[str]:
        if "." not in dotted:
            nested = f"{caller}.<locals>.{dotted}"
            if nested in self.project.functions:
                return [nested]
            local = f"{decl.module}.{dotted}"
            if local in self.project.functions:
                return [local]
            if flows and dotted in decl.params:
                return sorted(self._param_callables.get((caller, dotted), ()))
        canonical = self.project.canonicalize(dotted)
        if canonical in self.project.functions:
            return [canonical]
        if canonical in self.project.classes:
            init = f"{canonical}.__init__"
            if init in self.project.functions:
                return [init]
        return []

    def _resolve_ref(self, caller: str, ref: Tuple[str, str]) -> List[str]:
        """A bare callable *reference* (not a call) -> function qualnames."""
        kind, payload = ref
        decl = self.summaries[caller].decl
        if kind == "self" and decl.cls is not None:
            method = self.project.resolve_method(decl.cls, payload)
            return [method] if method is not None else []
        if kind in ("name", "dotted"):
            return self._resolve_dotted(caller, decl, payload, flows=False)
        return []

    def _collect_attr_callables(self) -> None:
        """``C(dispatch=self._cb)`` + ``self._dispatch = dispatch`` => flow."""
        interesting = {
            f"{qual}.__init__": qual
            for qual, model in self.project.classes.items()
            if model.attr_from_param
        }
        if not interesting:
            return
        for caller, summary in self.summaries.items():
            for site, targets in zip(summary.calls, self.targets[caller]):
                for target in targets:
                    class_qual = interesting.get(target)
                    if class_qual is None:
                        continue
                    model = self.project.classes[class_qual]
                    init_params = self.project.functions[target].params  # incl. self
                    for attr, param in model.attr_from_param.items():
                        resolved = self._ctor_arg(caller, site, init_params, param)
                        if resolved:
                            self._attr_callables.setdefault((class_qual, attr), set()).update(resolved)

    def _ctor_arg(
        self, caller: str, site: CallSite, init_params: List[str], param: str
    ) -> List[str]:
        for slot, ref in site.arg_refs:
            if slot == param:
                return self._resolve_ref(caller, ref)
            if isinstance(slot, int):
                index = slot + 1  # positional args skip the bound self
                if index < len(init_params) and init_params[index] == param:
                    return self._resolve_ref(caller, ref)
        return []

    def _collect_param_callables(self) -> None:
        """``f(cb)`` where ``f`` later calls ``cb(...)`` by parameter name."""
        for caller, summary in self.summaries.items():
            for site, targets in zip(summary.calls, self.targets[caller]):
                if not site.arg_refs:
                    continue
                for target in targets:
                    target_decl = self.project.functions.get(target)
                    if target_decl is None:
                        continue
                    params = target_decl.params
                    offset = 1 if target_decl.cls is not None else 0
                    for slot, ref in site.arg_refs:
                        if isinstance(slot, int):
                            index = slot + offset
                            name = params[index] if index < len(params) else None
                        else:
                            name = slot if slot in params else None
                        if name is None:
                            continue
                        resolved = self._resolve_ref(caller, ref)
                        if resolved:
                            self._param_callables.setdefault((target, name), set()).update(resolved)

    # -------------------------------------------------------------- dispatches
    def _find_dispatches(self) -> List[DispatchSite]:
        dispatches: List[DispatchSite] = []
        for caller, summary in self.summaries.items():
            for site in summary.calls:
                slot = self._dispatch_callable_slot(site)
                if slot is None:
                    continue
                roots: List[str] = []
                for ref_slot, ref in site.arg_refs:
                    if ref_slot == slot:
                        roots.extend(self._resolve_ref(caller, ref))
                dispatches.append(DispatchSite(caller, site, sorted(set(roots)), summary.path))
        return dispatches

    @staticmethod
    def _dispatch_callable_slot(site: CallSite) -> Optional[object]:
        """The arg slot carrying the job body, if this call dispatches one."""
        if site.kind == "attr":
            _, method = site.target  # type: ignore[misc]
            if method in DISPATCH_METHODS:
                return 0
            if method in _THREAD_CLASS_BASENAMES:
                return "target"
        elif site.kind == "self":
            if site.target in DISPATCH_METHODS:
                return 0
        elif site.kind == "dotted":
            basename = str(site.target).rsplit(".", 1)[-1]
            if basename in DISPATCH_METHODS:
                return 0
            if basename in _THREAD_CLASS_BASENAMES:
                return "target"
        return None

    # --------------------------------------------------------------- fixpoints
    def _edges(self):
        """(caller, site, targets) triples, summaries aligned with targets."""
        for caller, summary in self.summaries.items():
            for site, targets in zip(summary.calls, self.targets[caller]):
                if targets:
                    yield caller, site, targets

    def _is_private(self, qual: str) -> bool:
        decl = self.project.functions.get(qual)
        if decl is None or "<locals>" in qual:
            return False
        return decl.name.startswith("_") and not decl.name.startswith("__")

    def _fix_entry_held(self) -> Dict[str, FrozenSet[str]]:
        dispatch_roots = {root for dispatch in self.dispatches for root in dispatch.roots}
        empty: FrozenSet[str] = frozenset()
        # TOP is modelled as None: optimistic "called from everywhere locked",
        # narrowed by intersection over actual call sites.
        entry: Dict[str, Optional[FrozenSet[str]]] = {}
        for qual in self.summaries:
            if self._is_private(qual) and qual not in dispatch_roots:
                entry[qual] = None
            else:
                entry[qual] = empty
        for _ in range(_MAX_ROUNDS):
            incoming: Dict[str, FrozenSet[str]] = {}
            for caller, site, targets in self._edges():
                if site.deferred:
                    contribution: Optional[FrozenSet[str]] = empty
                else:
                    caller_entry = entry.get(caller, empty)
                    if caller_entry is None:
                        continue  # TOP caller: no constraint yet
                    contribution = site.held | caller_entry
                for target in targets:
                    if target in incoming:
                        incoming[target] = incoming[target] & contribution
                    else:
                        incoming[target] = contribution
            changed = False
            for target, combined in incoming.items():
                if entry.get(target) != combined and self._is_private(target) and target not in dispatch_roots:
                    entry[target] = combined
                    changed = True
            if not changed:
                break
        return {qual: value if value is not None else empty for qual, value in entry.items()}

    def _fix_may_block(self) -> Dict[str, str]:
        witness: Dict[str, str] = {}
        for qual, summary in self.summaries.items():
            for op in summary.blocking:
                if op.releases is None:
                    witness[qual] = f"{op.desc} at line {op.line}"
                    break
        for _ in range(_MAX_ROUNDS):
            changed = False
            for caller, site, targets in self._edges():
                if site.deferred or caller in witness:
                    continue
                for target in targets:
                    if target in witness:
                        witness[caller] = (
                            f"calls {display_name(self.project, target)}, "
                            f"which may block: {witness[target]}"
                        )
                        changed = True
                        break
            if not changed:
                break
        return witness

    def _fix_acquires(self) -> Dict[str, Dict[str, str]]:
        acquires: Dict[str, Dict[str, str]] = {}
        for qual, summary in self.summaries.items():
            table: Dict[str, str] = {}
            for acq in summary.acquires:
                table.setdefault(
                    acq.lock,
                    f"{display_name(self.project, qual)} acquires {short_lock(acq.lock)}",
                )
            acquires[qual] = table
        for _ in range(_MAX_ROUNDS):
            changed = False
            for caller, site, targets in self._edges():
                if site.deferred:
                    continue
                table = acquires[caller]
                for target in targets:
                    for lock, how in acquires.get(target, {}).items():
                        if lock not in table:
                            table[lock] = how
                            changed = True
            if not changed:
                break
        return acquires

    def _reach_from_dispatches(self) -> Dict[str, str]:
        reachable: Dict[str, str] = {}
        queue: List[str] = []
        for dispatch in self.dispatches:
            for root in dispatch.roots:
                if root not in reachable:
                    reachable[root] = (
                        f"dispatched as a job body at {dispatch.path}:{dispatch.site.line}"
                    )
                    queue.append(root)
        while queue:
            current = queue.pop()
            summary = self.summaries.get(current)
            if summary is None:
                continue
            for site, targets in zip(summary.calls, self.targets[current]):
                for target in targets:
                    if target not in reachable:
                        reachable[target] = (
                            f"called from {display_name(self.project, current)}, "
                            f"{reachable[current]}"
                        )
                        queue.append(target)
        return reachable
