"""Weight initialisation schemes."""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from repro.common.rng import RandomState, get_rng

__all__ = ["xavier_uniform", "kaiming_uniform", "uniform", "zeros", "orthogonal"]


def _rng(rng: RandomState = None) -> np.random.Generator:
    return (rng or get_rng()).generator


def zeros(shape: Tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape, dtype=np.float64)


def uniform(shape: Tuple[int, ...], low: float, high: float, rng: RandomState = None) -> np.ndarray:
    return _rng(rng).uniform(low, high, size=shape)


def xavier_uniform(shape: Tuple[int, ...], gain: float = 1.0, rng: RandomState = None) -> np.ndarray:
    """Glorot/Xavier uniform initialisation for ``(fan_out, fan_in, ...)`` weights."""
    if len(shape) < 2:
        fan_in = fan_out = shape[0]
    else:
        receptive = int(np.prod(shape[2:])) if len(shape) > 2 else 1
        fan_out = shape[0] * receptive
        fan_in = shape[1] * receptive
    bound = gain * math.sqrt(6.0 / (fan_in + fan_out))
    return _rng(rng).uniform(-bound, bound, size=shape)


def kaiming_uniform(shape: Tuple[int, ...], a: float = math.sqrt(5), rng: RandomState = None) -> np.ndarray:
    """He/Kaiming uniform initialisation (PyTorch's default for Linear/Conv)."""
    if len(shape) < 2:
        fan_in = shape[0]
    else:
        receptive = int(np.prod(shape[2:])) if len(shape) > 2 else 1
        fan_in = shape[1] * receptive
    gain = math.sqrt(2.0 / (1.0 + a**2))
    bound = gain * math.sqrt(3.0 / fan_in)
    return _rng(rng).uniform(-bound, bound, size=shape)


def orthogonal(shape: Tuple[int, int], gain: float = 1.0, rng: RandomState = None) -> np.ndarray:
    """Orthogonal initialisation (useful for recurrent weight matrices)."""
    rows, cols = shape
    flat = _rng(rng).standard_normal((max(rows, cols), min(rows, cols)))
    q, r = np.linalg.qr(flat)
    q = q * np.sign(np.diag(r))
    if rows < cols:
        q = q.T
    return gain * q[:rows, :cols]
