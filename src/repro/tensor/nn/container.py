"""Module containers: Sequential, ModuleList and ModuleDict.

``ModuleDict`` is the key container for the Etalumis inference network: the
address-specific embedding and proposal layers live in dictionaries keyed by
simulator address, and new entries are added dynamically the first time an
address is encountered (Section 4.3) or pre-generated from an offline dataset
(Section 4.4).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterable, Iterator, List, Optional

from repro.tensor.nn.module import Module

__all__ = ["Sequential", "ModuleList", "ModuleDict"]


class Sequential(Module):
    """Apply child modules in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        for index, module in enumerate(modules):
            self.register_module(str(index), module)

    def forward(self, x):
        for module in self._modules.values():
            x = module(x)
        return x

    def __iter__(self) -> Iterator[Module]:
        return iter(self._modules.values())

    def __len__(self) -> int:
        return len(self._modules)

    def __getitem__(self, index: int) -> Module:
        return list(self._modules.values())[index]


class ModuleList(Module):
    """A list of sub-modules registered for parameter traversal."""

    def __init__(self, modules: Optional[Iterable[Module]] = None) -> None:
        super().__init__()
        self._order: List[str] = []
        if modules is not None:
            for module in modules:
                self.append(module)

    def append(self, module: Module) -> "ModuleList":
        name = str(len(self._order))
        self.register_module(name, module)
        self._order.append(name)
        return self

    def __len__(self) -> int:
        return len(self._order)

    def __iter__(self) -> Iterator[Module]:
        return (self._modules[name] for name in self._order)

    def __getitem__(self, index: int) -> Module:
        return self._modules[self._order[index]]


class ModuleDict(Module):
    """A string-keyed dictionary of sub-modules.

    Keys are sanitised so that arbitrary simulator address strings (which can
    contain dots) do not collide with the hierarchical parameter naming used
    by :meth:`Module.named_parameters`.
    """

    def __init__(self, modules: Optional[Dict[str, Module]] = None) -> None:
        super().__init__()
        self._key_map: "OrderedDict[str, str]" = OrderedDict()
        if modules:
            for key, module in modules.items():
                self[key] = module

    @staticmethod
    def _sanitize(key: str) -> str:
        return key.replace(".", "_")

    def __setitem__(self, key: str, module: Module) -> None:
        safe = self._sanitize(key)
        # Disambiguate collisions after sanitisation.
        if safe in self._modules and self._key_map.get(key) != safe:
            suffix = 1
            base = safe
            while safe in self._modules:
                safe = f"{base}__{suffix}"
                suffix += 1
        self._key_map[key] = safe
        self.register_module(safe, module)

    def __getitem__(self, key: str) -> Module:
        return self._modules[self._key_map[key]]

    def __contains__(self, key: str) -> bool:
        return key in self._key_map

    def __len__(self) -> int:
        return len(self._key_map)

    def keys(self):
        return self._key_map.keys()

    def values(self):
        return (self._modules[safe] for safe in self._key_map.values())

    def items(self):
        return ((key, self._modules[safe]) for key, safe in self._key_map.items())

    def get(self, key: str, default=None):
        if key in self:
            return self[key]
        return default
