"""Dense layers and simple activations as modules."""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.tensor import functional as F
from repro.tensor.nn import init
from repro.tensor.nn.module import Module, Parameter
from repro.tensor.tensor import Tensor

__all__ = ["Linear", "ReLU", "Tanh", "Sigmoid", "Flatten", "Dropout", "Embedding"]


class Linear(Module):
    """Affine layer ``y = x W^T + b`` with PyTorch-compatible weight layout."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True, rng=None) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.kaiming_uniform((out_features, in_features), rng=rng))
        if bias:
            bound = 1.0 / math.sqrt(in_features) if in_features > 0 else 0.0
            self.bias: Optional[Parameter] = Parameter(
                init.uniform((out_features,), -bound, bound, rng=rng)
            )
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.weight, self.bias)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Linear(in={self.in_features}, out={self.out_features})"


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class Flatten(Module):
    """Flatten all dimensions after the batch dimension."""

    def forward(self, x: Tensor) -> Tensor:
        return x.reshape(x.shape[0], -1)


class Dropout(Module):
    def __init__(self, p: float = 0.5) -> None:
        super().__init__()
        self.p = p

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, p=self.p, training=self.training)


class Embedding(Module):
    """Learned lookup table, used for simulator-address embeddings."""

    def __init__(self, num_embeddings: int, embedding_dim: int, rng=None) -> None:
        super().__init__()
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        scale = 1.0 / math.sqrt(embedding_dim)
        self.weight = Parameter(init.uniform((num_embeddings, embedding_dim), -scale, scale, rng=rng))

    def forward(self, indices) -> Tensor:
        idx = indices.data if isinstance(indices, Tensor) else np.asarray(indices)
        return F.embedding(self.weight, idx.astype(np.int64))
