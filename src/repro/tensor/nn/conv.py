"""3D convolution and pooling modules for the observation-embedding CNN.

The paper's observation embedding (Section 4.3) is::

    Conv3D(1, 64, 3) - Conv3D(64, 64, 3) - MaxPool3D(2) - Conv3D(64, 128, 3)
    - Conv3D(128, 128, 3) - Conv3D(128, 128, 3) - MaxPool3D(2) - FC(2048, 256)

These modules provide the building blocks; the full stack is assembled in
:mod:`repro.ppl.nn.embeddings` (scaled to the configured observation size).
"""

from __future__ import annotations

import math
from typing import Optional, Tuple, Union

from repro.tensor import functional as F
from repro.tensor.nn import init
from repro.tensor.nn.module import Module, Parameter
from repro.tensor.tensor import Tensor

__all__ = ["Conv3d", "MaxPool3d"]


class Conv3d(Module):
    """3D convolution layer over ``(N, C_in, D, H, W)`` inputs."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: Union[int, Tuple[int, int, int]] = 3,
        stride: Union[int, Tuple[int, int, int]] = 1,
        padding: Union[int, Tuple[int, int, int]] = 0,
        bias: bool = True,
        rng=None,
    ) -> None:
        super().__init__()
        if isinstance(kernel_size, int):
            kernel_size = (kernel_size, kernel_size, kernel_size)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = tuple(kernel_size)
        self.stride = stride
        self.padding = padding
        weight_shape = (out_channels, in_channels) + self.kernel_size
        self.weight = Parameter(init.kaiming_uniform(weight_shape, rng=rng))
        if bias:
            fan_in = in_channels * int(math.prod(self.kernel_size))
            bound = 1.0 / math.sqrt(fan_in) if fan_in > 0 else 0.0
            self.bias: Optional[Parameter] = Parameter(
                init.uniform((out_channels,), -bound, bound, rng=rng)
            )
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv3d(x, self.weight, self.bias, stride=self.stride, padding=self.padding)

    def output_shape(self, input_shape: Tuple[int, int, int]) -> Tuple[int, int, int]:
        """Spatial output shape for a given spatial input shape."""
        def _t(v):
            return (v, v, v) if isinstance(v, int) else tuple(v)

        stride = _t(self.stride)
        padding = _t(self.padding)
        return tuple(
            (input_shape[i] + 2 * padding[i] - self.kernel_size[i]) // stride[i] + 1
            for i in range(3)
        )

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"Conv3d({self.in_channels}, {self.out_channels}, "
            f"kernel={self.kernel_size}, stride={self.stride}, padding={self.padding})"
        )


class MaxPool3d(Module):
    """3D max-pooling layer over ``(N, C, D, H, W)`` inputs."""

    def __init__(
        self,
        kernel_size: Union[int, Tuple[int, int, int]] = 2,
        stride: Optional[Union[int, Tuple[int, int, int]]] = None,
    ) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool3d(x, kernel_size=self.kernel_size, stride=self.stride)

    def output_shape(self, input_shape: Tuple[int, int, int]) -> Tuple[int, int, int]:
        def _t(v):
            return (v, v, v) if isinstance(v, int) else tuple(v)

        kernel = _t(self.kernel_size)
        stride = _t(self.stride)
        return tuple((input_shape[i] - kernel[i]) // stride[i] + 1 for i in range(3))

    def __repr__(self) -> str:  # pragma: no cover
        return f"MaxPool3d(kernel={self.kernel_size}, stride={self.stride})"
