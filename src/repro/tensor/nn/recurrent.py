"""Recurrent layers: LSTM cell and (optionally stacked) LSTM.

The IC inference network uses an LSTM recurrent core that is executed for as
many time steps as the simulator's probabilistic trace length, with a
per-time-step input that concatenates the observation, address and previous-
sample embeddings (Section 4.3).  The hyperparameter search in Figure 2 sweeps
the number of stacked LSTM layers and hidden units, which is why
:class:`LSTM` supports ``num_layers``.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from repro.tensor import functional as F
from repro.tensor.nn import init
from repro.tensor.nn.module import Module, Parameter
from repro.tensor.tensor import Tensor

__all__ = ["LSTMCell", "LSTM"]


class LSTMCell(Module):
    """A single LSTM cell with the standard gate parameterisation.

    Gate order in the packed weight matrices is (input, forget, cell, output),
    matching PyTorch so intuition about forget-gate bias etc. carries over.
    """

    def __init__(self, input_size: int, hidden_size: int, rng=None) -> None:
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        k = 1.0 / math.sqrt(hidden_size) if hidden_size > 0 else 0.0
        self.weight_ih = Parameter(init.uniform((4 * hidden_size, input_size), -k, k, rng=rng))
        self.weight_hh = Parameter(init.uniform((4 * hidden_size, hidden_size), -k, k, rng=rng))
        self.bias_ih = Parameter(init.uniform((4 * hidden_size,), -k, k, rng=rng))
        self.bias_hh = Parameter(init.uniform((4 * hidden_size,), -k, k, rng=rng))

    def forward(
        self, x: Tensor, state: Optional[Tuple[Tensor, Tensor]] = None
    ) -> Tuple[Tensor, Tensor]:
        """One step.  ``x`` is ``(batch, input_size)``; returns ``(h, c)``."""
        batch = x.shape[0]
        if state is None:
            h_prev = Tensor.zeros(batch, self.hidden_size)
            c_prev = Tensor.zeros(batch, self.hidden_size)
        else:
            h_prev, c_prev = state
        gates = F.linear(x, self.weight_ih, self.bias_ih) + F.linear(h_prev, self.weight_hh, self.bias_hh)
        hs = self.hidden_size
        i_gate = gates[:, 0 * hs : 1 * hs].sigmoid()
        f_gate = gates[:, 1 * hs : 2 * hs].sigmoid()
        g_gate = gates[:, 2 * hs : 3 * hs].tanh()
        o_gate = gates[:, 3 * hs : 4 * hs].sigmoid()
        c_new = f_gate * c_prev + i_gate * g_gate
        h_new = o_gate * c_new.tanh()
        return h_new, c_new

    def initial_state(self, batch: int) -> Tuple[Tensor, Tensor]:
        return Tensor.zeros(batch, self.hidden_size), Tensor.zeros(batch, self.hidden_size)


class LSTM(Module):
    """A stack of LSTM cells applied over a sequence.

    The sequence can be provided either as a single ``(T, batch, input)``
    tensor via :meth:`forward`, or step by step via :meth:`step` - the latter
    is how the inference network drives it, because in a Turing-complete model
    the trace length (and hence T) is not known up-front.
    """

    def __init__(self, input_size: int, hidden_size: int, num_layers: int = 1, rng=None) -> None:
        super().__init__()
        if num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.num_layers = num_layers
        from repro.tensor.nn.container import ModuleList

        cells = []
        for layer in range(num_layers):
            in_size = input_size if layer == 0 else hidden_size
            cells.append(LSTMCell(in_size, hidden_size, rng=rng))
        self.cells = ModuleList(cells)

    def initial_state(self, batch: int) -> List[Tuple[Tensor, Tensor]]:
        return [cell.initial_state(batch) for cell in self.cells]

    def step(
        self, x: Tensor, state: Optional[List[Tuple[Tensor, Tensor]]] = None
    ) -> Tuple[Tensor, List[Tuple[Tensor, Tensor]]]:
        """Advance all layers one time step.  Returns top-layer ``h`` and new state."""
        if state is None:
            state = self.initial_state(x.shape[0])
        new_state: List[Tuple[Tensor, Tensor]] = []
        layer_input = x
        for cell, layer_state in zip(self.cells, state):
            h, c = cell(layer_input, layer_state)
            new_state.append((h, c))
            layer_input = h
        return layer_input, new_state

    def forward(
        self, sequence: Sequence[Tensor], state: Optional[List[Tuple[Tensor, Tensor]]] = None
    ) -> Tuple[List[Tensor], List[Tuple[Tensor, Tensor]]]:
        """Run over a whole sequence of per-step inputs ``(batch, input_size)``.

        Returns the list of top-layer hidden states (one per step) and the
        final state.
        """
        outputs: List[Tensor] = []
        if isinstance(sequence, Tensor):
            steps = [sequence[t] for t in range(sequence.shape[0])]
        else:
            steps = list(sequence)
        for x in steps:
            out, state = self.step(x, state)
            outputs.append(out)
        return outputs, state
