"""Neural-network modules built on the autograd tensor library."""

from repro.tensor.nn.module import Module, Parameter
from repro.tensor.nn.linear import Linear, ReLU, Tanh, Sigmoid, Flatten, Dropout, Embedding
from repro.tensor.nn.container import Sequential, ModuleList, ModuleDict
from repro.tensor.nn.conv import Conv3d, MaxPool3d
from repro.tensor.nn.recurrent import LSTM, LSTMCell
from repro.tensor.nn import init

__all__ = [
    "Module",
    "Parameter",
    "Linear",
    "ReLU",
    "Tanh",
    "Sigmoid",
    "Flatten",
    "Dropout",
    "Embedding",
    "Sequential",
    "ModuleList",
    "ModuleDict",
    "Conv3d",
    "MaxPool3d",
    "LSTM",
    "LSTMCell",
    "init",
]
