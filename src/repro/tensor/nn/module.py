"""Module and Parameter base classes for the NN library.

Mirrors the subset of ``torch.nn.Module`` behaviour the Etalumis stack relies
on: named parameter traversal (needed for the allreduce of gradients by name,
Section 4.4.4), recursive train/eval switching, state-dict save/load, and
dynamic registration of sub-modules (the inference network creates new
address-specific embedding and proposal layers at runtime).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.tensor.tensor import Tensor

__all__ = ["Parameter", "Module"]


class Parameter(Tensor):
    """A trainable tensor (always ``requires_grad=True`` when created)."""

    def __init__(self, data, name: Optional[str] = None) -> None:
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for all NN modules."""

    def __init__(self) -> None:
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self.training: bool = True

    # ------------------------------------------------------------ registration
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        object.__setattr__(self, name, value)

    def register_parameter(self, name: str, parameter: Parameter) -> None:
        self._parameters[name] = parameter
        object.__setattr__(self, name, parameter)

    def register_module(self, name: str, module: "Module") -> None:
        self._modules[name] = module
        object.__setattr__(self, name, module)

    add_module = register_module

    # -------------------------------------------------------------- traversal
    def parameters(self) -> List[Parameter]:
        return [p for _, p in self.named_parameters()]

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for mod_name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{mod_name}.")

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        yield prefix.rstrip("."), self
        for mod_name, module in self._modules.items():
            yield from module.named_modules(prefix=f"{prefix}{mod_name}.")

    def modules(self) -> Iterator["Module"]:
        for _, module in self.named_modules():
            yield module

    def num_parameters(self) -> int:
        """Total number of trainable scalars (the paper reports 156M / 171M)."""
        return int(sum(p.size for p in self.parameters()))

    # ------------------------------------------------------------------ modes
    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.grad = None

    # ------------------------------------------------------------- state dict
    def state_dict(self) -> Dict[str, np.ndarray]:
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray], strict: bool = True) -> None:
        own = dict(self.named_parameters())
        missing = [k for k in own if k not in state]
        unexpected = [k for k in state if k not in own]
        if strict and (missing or unexpected):
            raise KeyError(f"state_dict mismatch: missing={missing}, unexpected={unexpected}")
        for name, value in state.items():
            if name in own:
                if own[name].data.shape != np.asarray(value).shape:
                    raise ValueError(
                        f"shape mismatch for {name}: "
                        f"{own[name].data.shape} vs {np.asarray(value).shape}"
                    )
                own[name].data = np.asarray(value, dtype=np.float64).copy()

    # ------------------------------------------------------------------- call
    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        child = ", ".join(self._modules.keys())
        return f"{type(self).__name__}({child})"
