"""A from-scratch reverse-mode autodiff tensor library (PyTorch substitute).

The Etalumis paper trains its inference-compilation network with PyTorch; in
this reproduction the equivalent capability is provided by:

* :mod:`repro.tensor.tensor` — the :class:`Tensor` class and dynamic autograd
  graph,
* :mod:`repro.tensor.functional` — softmax/conv3d/max-pool/… operations,
* :mod:`repro.tensor.nn` — Module/Linear/Conv3d/LSTM/… layers,
* :mod:`repro.tensor.optim` — SGD/Adam/LARC and learning-rate schedules.
"""

from repro.tensor.tensor import Tensor, no_grad, is_grad_enabled
from repro.tensor import functional
from repro.tensor import nn
from repro.tensor import optim

__all__ = ["Tensor", "no_grad", "is_grad_enabled", "functional", "nn", "optim"]
