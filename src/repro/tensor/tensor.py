"""A minimal reverse-mode automatic-differentiation tensor library.

The paper builds its inference-compilation network on PyTorch, exploiting
dynamic computation graphs (the network topology changes with every execution
trace).  PyTorch is not available in this environment, so this module provides
the same capability from scratch on top of numpy:

* :class:`Tensor` wraps an ``ndarray`` and records the operations applied to
  it in a dynamic graph.
* :meth:`Tensor.backward` runs reverse-mode AD over a topological sort of that
  graph, accumulating gradients into ``.grad``.
* Broadcasting is handled by summing gradients back over broadcast dimensions
  (:func:`unbroadcast`).

The design intentionally mirrors the subset of the PyTorch tensor API that the
Etalumis training stack uses (elementwise arithmetic, matmul, reductions,
indexing, concatenation, exp/log/tanh/sigmoid, clamping), so the rest of the
code reads like the original.
"""

from __future__ import annotations

import threading
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = ["Tensor", "no_grad", "is_grad_enabled", "unbroadcast"]

ArrayLike = Union["Tensor", np.ndarray, float, int, list, tuple]

# Grad mode is thread-local (as in torch): the batched/distributed inference
# engines enter no_grad from worker threads, and a process-global flag would
# race — an unlucky interleaving of two threads' enter/exit could leave
# autograd disabled for the whole process.
_grad_mode = threading.local()


def _grad_enabled() -> bool:
    return getattr(_grad_mode, "enabled", True)


class no_grad:
    """Context manager that disables graph construction (like ``torch.no_grad``)."""

    def __enter__(self):
        self._prev = _grad_enabled()
        _grad_mode.enabled = False
        return self

    def __exit__(self, *exc):
        _grad_mode.enabled = self._prev
        return False


def is_grad_enabled() -> bool:
    """Whether new operations record autograd graph nodes (per thread)."""
    return _grad_enabled()


def unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` by summing over broadcast axes."""
    if grad.shape == shape:
        return grad
    # Sum over leading dims added by broadcasting.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over dims that were 1 in the original shape.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


def _as_array(data: ArrayLike, dtype=None) -> np.ndarray:
    if isinstance(data, Tensor):
        data = data.data
    arr = np.asarray(data, dtype=dtype if dtype is not None else None)
    if arr.dtype.kind in "iub" and dtype is None:
        # Keep integer tensors as-is (used for categorical indices); floats default to float64.
        return arr
    if dtype is None and arr.dtype != np.float64 and arr.dtype.kind == "f":
        arr = arr.astype(np.float64)
    return arr


class Tensor:
    """A numpy-backed tensor participating in a dynamic autograd graph."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")
    __array_priority__ = 100.0  # ensure ndarray + Tensor dispatches to Tensor.__radd__

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        dtype=None,
        name: Optional[str] = None,
    ) -> None:
        self.data: np.ndarray = _as_array(data, dtype=dtype)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad: bool = bool(requires_grad) and _grad_enabled()
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple["Tensor", ...] = ()
        self.name = name

    # ------------------------------------------------------------------ basics
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        """Return a tensor sharing data but detached from the graph."""
        return Tensor(self.data, requires_grad=False)

    def clone(self) -> "Tensor":
        out = _make(self.data.copy(), (self,))
        if out.requires_grad:
            def _bw(grad):
                _accumulate(self, grad)
            out._backward = _bw
        return out

    def zero_grad(self) -> None:
        self.grad = None

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({np.array2string(self.data, precision=4, threshold=8)}{grad_flag})"

    # --------------------------------------------------------------- backward
    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Run reverse-mode AD from this tensor.

        ``grad`` defaults to ones (scalar outputs are the common case: the
        minibatch loss in Algorithm 1).
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            grad_arr = np.ones_like(self.data, dtype=np.float64)
        else:
            grad_arr = _as_array(grad).astype(np.float64, copy=False)
            grad_arr = np.broadcast_to(grad_arr, self.data.shape).copy()

        topo: List[Tensor] = []
        visited = set()

        def build(node: "Tensor") -> None:
            stack = [(node, iter(node._parents))]
            seen_on_stack = {id(node)}
            if id(node) in visited:
                return
            while stack:
                current, it = stack[-1]
                advanced = False
                for parent in it:
                    if id(parent) not in visited and parent.requires_grad:
                        if id(parent) in seen_on_stack:
                            continue
                        stack.append((parent, iter(parent._parents)))
                        seen_on_stack.add(id(parent))
                        advanced = True
                        break
                if not advanced:
                    visited.add(id(current))
                    topo.append(current)
                    stack.pop()
                    seen_on_stack.discard(id(current))

        build(self)

        _accumulate(self, grad_arr)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------- arithmetic
    def __add__(self, other: ArrayLike) -> "Tensor":
        other_t = _ensure_tensor(other)
        out = _make(self.data + other_t.data, (self, other_t))
        if out.requires_grad:
            a, b = self, other_t
            def _bw(grad):
                if a.requires_grad:
                    _accumulate(a, unbroadcast(grad, a.shape))
                if b.requires_grad:
                    _accumulate(b, unbroadcast(grad, b.shape))
            out._backward = _bw
        return out

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        out = _make(-self.data, (self,))
        if out.requires_grad:
            a = self
            def _bw(grad):
                _accumulate(a, -grad)
            out._backward = _bw
        return out

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return self + (-_ensure_tensor(other))

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return _ensure_tensor(other) + (-self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other_t = _ensure_tensor(other)
        out = _make(self.data * other_t.data, (self, other_t))
        if out.requires_grad:
            a, b = self, other_t
            def _bw(grad):
                if a.requires_grad:
                    _accumulate(a, unbroadcast(grad * b.data, a.shape))
                if b.requires_grad:
                    _accumulate(b, unbroadcast(grad * a.data, b.shape))
            out._backward = _bw
        return out

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other_t = _ensure_tensor(other)
        out = _make(self.data / other_t.data, (self, other_t))
        if out.requires_grad:
            a, b = self, other_t
            def _bw(grad):
                if a.requires_grad:
                    _accumulate(a, unbroadcast(grad / b.data, a.shape))
                if b.requires_grad:
                    _accumulate(b, unbroadcast(-grad * a.data / (b.data ** 2), b.shape))
            out._backward = _bw
        return out

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return _ensure_tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise TypeError("tensor exponents are not supported; use exp/log composition")
        out = _make(self.data ** exponent, (self,))
        if out.requires_grad:
            a = self
            def _bw(grad):
                _accumulate(a, grad * exponent * (a.data ** (exponent - 1)))
            out._backward = _bw
        return out

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        other_t = _ensure_tensor(other)
        out = _make(self.data @ other_t.data, (self, other_t))
        if out.requires_grad:
            a, b = self, other_t
            def _bw(grad):
                if a.requires_grad:
                    if b.data.ndim == 1:
                        ga = np.outer(grad, b.data) if a.data.ndim == 2 else grad * b.data
                    else:
                        ga = grad @ np.swapaxes(b.data, -1, -2)
                    _accumulate(a, unbroadcast(np.asarray(ga), a.shape))
                if b.requires_grad:
                    if a.data.ndim == 1:
                        gb = np.outer(a.data, grad) if b.data.ndim == 2 else grad * a.data
                    else:
                        gb = np.swapaxes(a.data, -1, -2) @ grad
                    _accumulate(b, unbroadcast(np.asarray(gb), b.shape))
            out._backward = _bw
        return out

    # ------------------------------------------------------------- comparisons
    def __gt__(self, other: ArrayLike):
        return Tensor(self.data > _ensure_tensor(other).data)

    def __lt__(self, other: ArrayLike):
        return Tensor(self.data < _ensure_tensor(other).data)

    def __ge__(self, other: ArrayLike):
        return Tensor(self.data >= _ensure_tensor(other).data)

    def __le__(self, other: ArrayLike):
        return Tensor(self.data <= _ensure_tensor(other).data)

    # ------------------------------------------------------------- unary math
    def exp(self) -> "Tensor":
        value = np.exp(self.data)
        out = _make(value, (self,))
        if out.requires_grad:
            a = self
            def _bw(grad):
                _accumulate(a, grad * value)
            out._backward = _bw
        return out

    def log(self) -> "Tensor":
        out = _make(np.log(self.data), (self,))
        if out.requires_grad:
            a = self
            def _bw(grad):
                _accumulate(a, grad / a.data)
            out._backward = _bw
        return out

    def sqrt(self) -> "Tensor":
        value = np.sqrt(self.data)
        out = _make(value, (self,))
        if out.requires_grad:
            a = self
            def _bw(grad):
                _accumulate(a, grad * 0.5 / value)
            out._backward = _bw
        return out

    def tanh(self) -> "Tensor":
        value = np.tanh(self.data)
        out = _make(value, (self,))
        if out.requires_grad:
            a = self
            def _bw(grad):
                _accumulate(a, grad * (1.0 - value ** 2))
            out._backward = _bw
        return out

    def sigmoid(self) -> "Tensor":
        value = 1.0 / (1.0 + np.exp(-self.data))
        out = _make(value, (self,))
        if out.requires_grad:
            a = self
            def _bw(grad):
                _accumulate(a, grad * value * (1.0 - value))
            out._backward = _bw
        return out

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out = _make(self.data * mask, (self,))
        if out.requires_grad:
            a = self
            def _bw(grad):
                _accumulate(a, grad * mask)
            out._backward = _bw
        return out

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)
        out = _make(np.abs(self.data), (self,))
        if out.requires_grad:
            a = self
            def _bw(grad):
                _accumulate(a, grad * sign)
            out._backward = _bw
        return out

    def clamp(self, min_value: Optional[float] = None, max_value: Optional[float] = None) -> "Tensor":
        clipped = np.clip(self.data, min_value, max_value)
        mask = np.ones_like(self.data)
        if min_value is not None:
            mask = mask * (self.data >= min_value)
        if max_value is not None:
            mask = mask * (self.data <= max_value)
        out = _make(clipped, (self,))
        if out.requires_grad:
            a = self
            def _bw(grad):
                _accumulate(a, grad * mask)
            out._backward = _bw
        return out

    # ------------------------------------------------------------- reductions
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        value = self.data.sum(axis=axis, keepdims=keepdims)
        out = _make(value, (self,))
        if out.requires_grad:
            a = self
            in_shape = a.shape
            def _bw(grad):
                g = grad
                if axis is not None and not keepdims:
                    g = np.expand_dims(g, axis=axis)
                _accumulate(a, np.broadcast_to(g, in_shape).copy())
            out._backward = _bw
        return out

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            count = 1
            for ax in axes:
                count *= self.data.shape[ax]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        value = self.data.max(axis=axis, keepdims=keepdims)
        out = _make(value, (self,))
        if out.requires_grad:
            a = self
            def _bw(grad):
                g = grad
                v = value
                if axis is not None and not keepdims:
                    g = np.expand_dims(g, axis=axis)
                    v = np.expand_dims(v, axis=axis)
                mask = (a.data == v).astype(np.float64)
                mask /= np.maximum(mask.sum(axis=axis, keepdims=True), 1.0)
                _accumulate(a, mask * g)
            out._backward = _bw
        return out

    # ---------------------------------------------------------------- reshape
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out = _make(self.data.reshape(shape), (self,))
        if out.requires_grad:
            a = self
            original = a.shape
            def _bw(grad):
                _accumulate(a, grad.reshape(original))
            out._backward = _bw
        return out

    def view(self, *shape) -> "Tensor":
        return self.reshape(*shape)

    def flatten(self, start_dim: int = 0) -> "Tensor":
        shape = self.shape
        new_shape = shape[:start_dim] + (-1,)
        return self.reshape(*new_shape)

    def transpose(self, *axes) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        out = _make(np.transpose(self.data, axes), (self,))
        if out.requires_grad:
            a = self
            inverse = np.argsort(axes)
            def _bw(grad):
                _accumulate(a, np.transpose(grad, inverse))
            out._backward = _bw
        return out

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def unsqueeze(self, axis: int) -> "Tensor":
        out = _make(np.expand_dims(self.data, axis), (self,))
        if out.requires_grad:
            a = self
            def _bw(grad):
                _accumulate(a, np.squeeze(grad, axis=axis))
            out._backward = _bw
        return out

    def squeeze(self, axis: Optional[int] = None) -> "Tensor":
        out = _make(np.squeeze(self.data, axis=axis), (self,))
        if out.requires_grad:
            a = self
            original = a.shape
            def _bw(grad):
                _accumulate(a, grad.reshape(original))
            out._backward = _bw
        return out

    def __getitem__(self, index) -> "Tensor":
        idx = index.data if isinstance(index, Tensor) else index
        out = _make(self.data[idx], (self,))
        if out.requires_grad:
            a = self
            def _bw(grad):
                full = np.zeros_like(a.data, dtype=np.float64)
                np.add.at(full, idx, grad)
                _accumulate(a, full)
            out._backward = _bw
        return out

    # ------------------------------------------------------------------ joins
    @staticmethod
    def cat(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [_ensure_tensor(t) for t in tensors]
        data = np.concatenate([t.data for t in tensors], axis=axis)
        out = _make(data, tuple(tensors))
        if out.requires_grad:
            sizes = [t.shape[axis] for t in tensors]
            def _bw(grad):
                offset = 0
                for t, size in zip(tensors, sizes):
                    if t.requires_grad:
                        slicer = [slice(None)] * grad.ndim
                        slicer[axis] = slice(offset, offset + size)
                        _accumulate(t, grad[tuple(slicer)])
                    offset += size
            out._backward = _bw
        return out

    @staticmethod
    def stack(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [_ensure_tensor(t) for t in tensors]
        data = np.stack([t.data for t in tensors], axis=axis)
        out = _make(data, tuple(tensors))
        if out.requires_grad:
            def _bw(grad):
                pieces = np.split(grad, len(tensors), axis=axis)
                for t, piece in zip(tensors, pieces):
                    if t.requires_grad:
                        _accumulate(t, np.squeeze(piece, axis=axis))
            out._backward = _bw
        return out

    # -------------------------------------------------------------- factories
    @staticmethod
    def zeros(*shape, requires_grad: bool = False) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return Tensor(np.zeros(shape), requires_grad=requires_grad)

    @staticmethod
    def ones(*shape, requires_grad: bool = False) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return Tensor(np.ones(shape), requires_grad=requires_grad)

    @staticmethod
    def randn(*shape, requires_grad: bool = False, rng=None) -> "Tensor":
        from repro.common.rng import get_rng

        generator = rng.generator if rng is not None else get_rng().generator
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return Tensor(generator.standard_normal(shape), requires_grad=requires_grad)

    @staticmethod
    def from_numpy(array: np.ndarray, requires_grad: bool = False) -> "Tensor":
        return Tensor(array, requires_grad=requires_grad)


def _ensure_tensor(value: ArrayLike) -> Tensor:
    return value if isinstance(value, Tensor) else Tensor(value)


def _make(data: np.ndarray, parents: Tuple[Tensor, ...]) -> Tensor:
    requires = _grad_enabled() and any(p.requires_grad for p in parents)
    out = Tensor(data, requires_grad=False)
    out.requires_grad = requires
    if requires:
        out._parents = parents
    return out


def _accumulate(tensor: Tensor, grad: np.ndarray) -> None:
    grad = np.asarray(grad, dtype=np.float64)
    if grad.shape != tensor.data.shape:
        grad = unbroadcast(grad, tensor.data.shape)
    if tensor.grad is None:
        tensor.grad = grad.copy()
    else:
        tensor.grad = tensor.grad + grad
