"""Optimizers and learning-rate schedules."""

from repro.tensor.optim.optimizer import Optimizer
from repro.tensor.optim.sgd import SGD
from repro.tensor.optim.adam import Adam
from repro.tensor.optim.larc import LARC
from repro.tensor.optim.lr_scheduler import (
    ConstantLR,
    LRScheduler,
    MultiStepLR,
    PolynomialDecayLR,
    scale_learning_rate,
)

__all__ = [
    "Optimizer",
    "SGD",
    "Adam",
    "LARC",
    "LRScheduler",
    "ConstantLR",
    "MultiStepLR",
    "PolynomialDecayLR",
    "scale_learning_rate",
]
