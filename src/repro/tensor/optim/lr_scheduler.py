"""Learning-rate schedules used in Section 7.1.2.

The paper compares: no decay, multi-step (per-epoch) decay, and polynomial
decay of order 1 or 2 computed per iteration, finding order-2 polynomial decay
most effective, decaying from 5.7e-4 to 2e-5 over 12 epochs for the 128k-run.
It also discusses learning-rate scaling with node count, where sub-sqrt
scaling worked better than linear for Adam.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from repro.tensor.optim.optimizer import Optimizer

__all__ = [
    "LRScheduler",
    "ConstantLR",
    "MultiStepLR",
    "PolynomialDecayLR",
    "scale_learning_rate",
]


def scale_learning_rate(base_lr: float, num_ranks: int, mode: str = "sqrt") -> float:
    """Scale a single-rank learning rate to ``num_ranks`` data-parallel ranks.

    ``mode``:
      * ``"linear"`` — Goyal et al. linear scaling,
      * ``"sqrt"`` — square-root scaling,
      * ``"subsqrt"`` — the paper's sub-sqrt choice for Adam (exponent 0.4),
      * ``"none"`` — no scaling.
    """
    if num_ranks < 1:
        raise ValueError("num_ranks must be >= 1")
    if mode == "linear":
        return base_lr * num_ranks
    if mode == "sqrt":
        return base_lr * math.sqrt(num_ranks)
    if mode == "subsqrt":
        return base_lr * num_ranks**0.4
    if mode == "none":
        return base_lr
    raise ValueError(f"unknown learning-rate scaling mode {mode!r}")


class LRScheduler:
    """Base class: call :meth:`step` once per iteration (or epoch)."""

    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.last_step = 0

    def get_lr(self, step: int) -> float:  # pragma: no cover - abstract
        raise NotImplementedError

    def step(self) -> float:
        self.last_step += 1
        lr = self.get_lr(self.last_step)
        self.optimizer.lr = lr
        return lr

    @property
    def current_lr(self) -> float:
        return self.optimizer.lr


class ConstantLR(LRScheduler):
    """No decay."""

    def get_lr(self, step: int) -> float:
        return self.base_lr


class MultiStepLR(LRScheduler):
    """Decay the LR by ``gamma`` at each milestone step (per-epoch decay)."""

    def __init__(self, optimizer: Optimizer, milestones: Sequence[int], gamma: float = 0.1) -> None:
        super().__init__(optimizer)
        self.milestones = sorted(int(m) for m in milestones)
        self.gamma = float(gamma)

    def get_lr(self, step: int) -> float:
        passed = sum(1 for m in self.milestones if step >= m)
        return self.base_lr * (self.gamma**passed)


class PolynomialDecayLR(LRScheduler):
    """Polynomial decay from ``base_lr`` to ``end_lr`` over ``total_steps``.

    ``lr(t) = end + (base - end) * (1 - t/total)^power`` with ``power`` 1 or 2;
    the paper uses order 2, decaying 5.7e-4 -> 2e-5 over 12 epochs.
    """

    def __init__(
        self,
        optimizer: Optimizer,
        total_steps: int,
        end_lr: float = 0.0,
        power: float = 2.0,
    ) -> None:
        super().__init__(optimizer)
        if total_steps <= 0:
            raise ValueError("total_steps must be positive")
        self.total_steps = int(total_steps)
        self.end_lr = float(end_lr)
        self.power = float(power)

    def get_lr(self, step: int) -> float:
        progress = min(step, self.total_steps) / self.total_steps
        return self.end_lr + (self.base_lr - self.end_lr) * (1.0 - progress) ** self.power
