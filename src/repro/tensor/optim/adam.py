"""Adam optimizer (Kingma & Ba, 2014), the paper's baseline optimizer."""

from __future__ import annotations

import math

import numpy as np

from repro.tensor.optim.optimizer import Optimizer

__all__ = ["Adam"]


class Adam(Optimizer):
    """Adam with bias correction and optional decoupled weight decay."""

    def __init__(
        self,
        params,
        lr: float = 1e-3,
        betas=(0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        self.beta1, self.beta2 = float(betas[0]), float(betas[1])
        if not (0.0 <= self.beta1 < 1.0 and 0.0 <= self.beta2 < 1.0):
            raise ValueError("betas must be in [0, 1)")
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)

    def compute_update(self, param) -> np.ndarray:
        """Return the (learning-rate-free) Adam direction for one parameter.

        Exposed separately so that :class:`repro.tensor.optim.larc.LARC` can
        rescale it per layer before application.
        """
        grad = param.grad
        if self.weight_decay:
            grad = grad + self.weight_decay * param.data
        state = self.state.setdefault(id(param), {})
        m = state.get("m")
        v = state.get("v")
        t = state.get("t", 0) + 1
        if m is None:
            m = np.zeros_like(param.data)
            v = np.zeros_like(param.data)
        m = self.beta1 * m + (1.0 - self.beta1) * grad
        v = self.beta2 * v + (1.0 - self.beta2) * (grad * grad)
        state["m"], state["v"], state["t"] = m, v, t
        m_hat = m / (1.0 - self.beta1**t)
        v_hat = v / (1.0 - self.beta2**t)
        return m_hat / (np.sqrt(v_hat) + self.eps)

    def step(self) -> None:
        self._step_count += 1
        for param in self.params:
            if param.grad is None:
                continue
            update = self.compute_update(param)
            param.data = param.data - self.lr * update
