"""Optimizer base class."""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Union

import numpy as np

from repro.tensor.nn.module import Parameter

__all__ = ["Optimizer"]


class Optimizer:
    """Base class for gradient-based optimizers.

    Parameters can be supplied either as a flat list (like
    ``optim.Adam(model.parameters())``) or as ``named_parameters()`` pairs -
    the latter is what the distributed trainer uses so that optimizer state
    can be matched to the per-name gradient allreduce.
    """

    def __init__(self, params: Union[Iterable[Parameter], Iterable], lr: float) -> None:
        params = list(params)
        if params and isinstance(params[0], tuple):
            self._names: List[str] = [name for name, _ in params]
            self.params: List[Parameter] = [p for _, p in params]
        else:
            self.params = list(params)
            self._names = [f"param_{i}" for i in range(len(self.params))]
        if lr < 0:
            raise ValueError("learning rate must be non-negative")
        self.lr = float(lr)
        self.state: Dict[int, Dict[str, np.ndarray]] = {}
        self._step_count = 0

    def add_param_group(self, params: Sequence[Parameter], names: Sequence[str] = None) -> None:
        """Register newly created parameters (dynamic layer growth in online mode)."""
        params = list(params)
        if names is None:
            names = [f"param_{len(self.params) + i}" for i in range(len(params))]
        self.params.extend(params)
        self._names.extend(names)

    def zero_grad(self) -> None:
        for param in self.params:
            param.grad = None

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    @property
    def step_count(self) -> int:
        return self._step_count
