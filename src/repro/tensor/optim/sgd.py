"""Stochastic gradient descent with optional momentum and weight decay."""

from __future__ import annotations

import numpy as np

from repro.tensor.optim.optimizer import Optimizer

__all__ = ["SGD"]


class SGD(Optimizer):
    """Plain / momentum SGD (Algorithm 2's generic parameter update)."""

    def __init__(self, params, lr: float = 1e-3, momentum: float = 0.0, weight_decay: float = 0.0) -> None:
        super().__init__(params, lr)
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)

    def step(self) -> None:
        self._step_count += 1
        for param in self.params:
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                state = self.state.setdefault(id(param), {})
                buf = state.get("momentum_buffer")
                if buf is None:
                    buf = np.zeros_like(param.data)
                buf = self.momentum * buf + grad
                state["momentum_buffer"] = buf
                update = buf
            else:
                update = grad
            param.data = param.data - self.lr * update
