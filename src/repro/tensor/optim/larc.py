"""Layer-wise Adaptive Rate Control (LARC).

The paper's best-converging configuration for the 128k global minibatch is the
"Adam-LARC" optimizer (Ginsburg et al.; You et al. LARS): the base optimizer's
update for each layer is rescaled so that the *local* learning rate is
proportional to ``||w|| / ||update||``, clipped so it never exceeds the global
learning rate.  This stabilises very-large-minibatch training.
"""

from __future__ import annotations

import numpy as np

from repro.tensor.optim.adam import Adam
from repro.tensor.optim.optimizer import Optimizer
from repro.tensor.optim.sgd import SGD

__all__ = ["LARC"]


class LARC(Optimizer):
    """Wrap a base optimizer (Adam or SGD) with layer-wise adaptive rate control.

    Parameters
    ----------
    base:
        The wrapped optimizer; its per-parameter update direction is reused.
    trust_coefficient:
        The eta coefficient in ``lr_local = eta * ||w|| / ||update||``.
    clip:
        If True (default) the local rate is clipped at the global rate
        (LARC-clip mode, the variant the paper uses); otherwise it scales
        freely (LARS-like).
    eps:
        Numerical floor for the update norm.
    """

    def __init__(self, base: Optimizer, trust_coefficient: float = 0.02, clip: bool = True, eps: float = 1e-8) -> None:
        # Note: we intentionally do not call super().__init__ with new params;
        # we mirror the base optimizer's parameter list.
        self.base = base
        self.params = base.params
        self._names = base._names
        self.trust_coefficient = float(trust_coefficient)
        self.clip = bool(clip)
        self.eps = float(eps)
        self._step_count = 0
        self.state = base.state

    @property
    def lr(self) -> float:
        return self.base.lr

    @lr.setter
    def lr(self, value: float) -> None:
        self.base.lr = value

    def zero_grad(self) -> None:
        self.base.zero_grad()

    def add_param_group(self, params, names=None) -> None:
        self.base.add_param_group(params, names)
        self.params = self.base.params
        self._names = self.base._names

    def _direction(self, param) -> np.ndarray:
        if isinstance(self.base, Adam):
            return self.base.compute_update(param)
        if isinstance(self.base, SGD):
            grad = param.grad
            if self.base.weight_decay:
                grad = grad + self.base.weight_decay * param.data
            return grad
        # Generic fallback: raw gradient.
        return param.grad

    def step(self) -> None:
        self._step_count += 1
        self.base._step_count += 1
        global_lr = self.base.lr
        for param in self.params:
            if param.grad is None:
                continue
            update = self._direction(param)
            param_norm = float(np.linalg.norm(param.data))
            update_norm = float(np.linalg.norm(update))
            if param_norm > 0 and update_norm > self.eps:
                local_lr = self.trust_coefficient * param_norm / (update_norm + self.eps)
                if self.clip:
                    effective_lr = min(local_lr, global_lr)
                else:
                    effective_lr = local_lr * global_lr
            else:
                effective_lr = global_lr
            param.data = param.data - effective_lr * update
