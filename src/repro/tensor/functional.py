"""Functional neural-network operations on :class:`repro.tensor.Tensor`.

This module provides the operations that the Etalumis inference-compilation
network needs beyond elementary arithmetic: numerically stable softmax /
log-softmax / logsumexp, the 3D convolution and 3D max-pooling used by the
observation-embedding CNN (Section 4.3), embedding lookups, dropout and the
negative-log-likelihood helpers used by the proposal layers.

The 3D convolution follows the paper's MKL-DNN description in spirit: the
kernel loop is unrolled (27 iterations for a 3x3x3 kernel) and each iteration
is a fully vectorised tensor contraction over the batch and spatial axes, so
numpy's BLAS does the heavy lifting - the Python-loop count is independent of
batch and volume size.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

import numpy as np

from repro.tensor.tensor import Tensor, _accumulate, _make

__all__ = [
    "relu",
    "sigmoid",
    "tanh",
    "softmax",
    "log_softmax",
    "logsumexp",
    "softplus",
    "linear",
    "dropout",
    "embedding",
    "one_hot",
    "gather",
    "conv3d",
    "max_pool3d",
    "nll_loss",
    "mse_loss",
    "erf",
    "normal_cdf",
    "normal_log_pdf",
]


def relu(x: Tensor) -> Tensor:
    return x.relu()


def sigmoid(x: Tensor) -> Tensor:
    return x.sigmoid()


def tanh(x: Tensor) -> Tensor:
    return x.tanh()


def softplus(x: Tensor) -> Tensor:
    """Numerically stable ``log(1 + exp(x))`` with autograd support."""
    value = np.logaddexp(0.0, x.data)
    out = _make(value, (x,))
    if out.requires_grad:
        sig = 1.0 / (1.0 + np.exp(-x.data))
        def _bw(grad):
            _accumulate(x, grad * sig)
        out._backward = _bw
    return out


def logsumexp(x: Tensor, axis: int = -1, keepdims: bool = False) -> Tensor:
    """Numerically stable log-sum-exp along ``axis``."""
    max_val = np.max(x.data, axis=axis, keepdims=True)
    max_val = np.where(np.isfinite(max_val), max_val, 0.0)
    shifted = x.data - max_val
    sum_exp = np.sum(np.exp(shifted), axis=axis, keepdims=True)
    value = np.log(sum_exp) + max_val
    if not keepdims:
        value = np.squeeze(value, axis=axis)
    out = _make(value, (x,))
    if out.requires_grad:
        softmax_val = np.exp(shifted) / sum_exp
        def _bw(grad):
            g = grad if keepdims else np.expand_dims(grad, axis=axis)
            _accumulate(x, g * softmax_val)
        out._backward = _bw
    return out


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Softmax along ``axis`` (stable, with autograd)."""
    shifted = x.data - np.max(x.data, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    value = exp / np.sum(exp, axis=axis, keepdims=True)
    out = _make(value, (x,))
    if out.requires_grad:
        def _bw(grad):
            dot = np.sum(grad * value, axis=axis, keepdims=True)
            _accumulate(x, value * (grad - dot))
        out._backward = _bw
    return out


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Log-softmax along ``axis`` (stable, with autograd)."""
    shifted = x.data - np.max(x.data, axis=axis, keepdims=True)
    log_denominator = np.log(np.sum(np.exp(shifted), axis=axis, keepdims=True))
    value = shifted - log_denominator
    out = _make(value, (x,))
    if out.requires_grad:
        softmax_val = np.exp(value)
        def _bw(grad):
            total = np.sum(grad, axis=axis, keepdims=True)
            _accumulate(x, grad - softmax_val * total)
        out._backward = _bw
    return out


def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Affine map ``x @ weight.T + bias`` with PyTorch weight layout ``(out, in)``."""
    out = x @ weight.T
    if bias is not None:
        out = out + bias
    return out


def dropout(x: Tensor, p: float = 0.5, training: bool = True, rng=None) -> Tensor:
    """Inverted dropout; identity when not training or ``p == 0``."""
    if not training or p <= 0.0:
        return x
    if p >= 1.0:
        raise ValueError("dropout probability must be < 1")
    from repro.common.rng import get_rng

    generator = (rng or get_rng()).generator
    mask = (generator.random(x.shape) >= p).astype(np.float64) / (1.0 - p)
    out = _make(x.data * mask, (x,))
    if out.requires_grad:
        def _bw(grad):
            _accumulate(x, grad * mask)
        out._backward = _bw
    return out


def one_hot(indices: Union[np.ndarray, Sequence[int]], num_classes: int) -> Tensor:
    """One-hot encode integer indices into a float tensor."""
    idx = np.asarray(indices, dtype=np.int64)
    out = np.zeros(idx.shape + (num_classes,), dtype=np.float64)
    np.put_along_axis(out, idx[..., None], 1.0, axis=-1)
    return Tensor(out)


def embedding(weight: Tensor, indices: Union[np.ndarray, Sequence[int]]) -> Tensor:
    """Row lookup into an embedding matrix with sparse-style gradient."""
    idx = np.asarray(indices, dtype=np.int64)
    out = _make(weight.data[idx], (weight,))
    if out.requires_grad:
        def _bw(grad):
            full = np.zeros_like(weight.data)
            np.add.at(full, idx, grad)
            _accumulate(weight, full)
        out._backward = _bw
    return out


def gather(x: Tensor, indices: Union[np.ndarray, Sequence[int]], axis: int = -1) -> Tensor:
    """Select one element per row along ``axis`` (like ``torch.gather`` with 1 index)."""
    idx = np.asarray(indices, dtype=np.int64)
    expanded = np.expand_dims(idx, axis=axis)
    value = np.take_along_axis(x.data, expanded, axis=axis)
    value = np.squeeze(value, axis=axis)
    out = _make(value, (x,))
    if out.requires_grad:
        def _bw(grad):
            full = np.zeros_like(x.data)
            np.put_along_axis(full, expanded, np.expand_dims(grad, axis=axis), axis=axis)
            _accumulate(x, full)
        out._backward = _bw
    return out


def nll_loss(log_probs: Tensor, targets: Union[np.ndarray, Sequence[int]], reduction: str = "mean") -> Tensor:
    """Negative log-likelihood loss over categorical log-probabilities."""
    picked = gather(log_probs, targets, axis=-1)
    loss = -picked
    if reduction == "mean":
        return loss.mean()
    if reduction == "sum":
        return loss.sum()
    if reduction == "none":
        return loss
    raise ValueError(f"unknown reduction {reduction!r}")


def mse_loss(prediction: Tensor, target: Tensor, reduction: str = "mean") -> Tensor:
    """Mean-squared-error loss."""
    target_t = target if isinstance(target, Tensor) else Tensor(target)
    diff = prediction - target_t.detach()
    sq = diff * diff
    if reduction == "mean":
        return sq.mean()
    if reduction == "sum":
        return sq.sum()
    if reduction == "none":
        return sq
    raise ValueError(f"unknown reduction {reduction!r}")


_SQRT_2 = float(np.sqrt(2.0))
_SQRT_2PI = float(np.sqrt(2.0 * np.pi))
_LOG_SQRT_2PI = 0.5 * float(np.log(2.0 * np.pi))


def erf(x: Tensor) -> Tensor:
    """Gauss error function with autograd (d/dx erf = 2/sqrt(pi) exp(-x^2))."""
    from scipy.special import erf as _erf

    value = _erf(x.data)
    out = _make(value, (x,))
    if out.requires_grad:
        deriv = 2.0 / np.sqrt(np.pi) * np.exp(-x.data**2)
        def _bw(grad):
            _accumulate(x, grad * deriv)
        out._backward = _bw
    return out


def normal_cdf(x: Tensor) -> Tensor:
    """Standard-normal CDF Phi(x), differentiable (d Phi/dx = standard normal pdf).

    Needed by the truncated-normal mixture proposal layers, whose
    normalisation constants Phi(beta) - Phi(alpha) must be differentiated with
    respect to the NN-produced means and scales.
    """
    return (erf(x * (1.0 / _SQRT_2)) + 1.0) * 0.5


def normal_log_pdf(x, loc: Tensor, scale: Tensor) -> Tensor:
    """Log density of Normal(loc, scale) at (non-differentiated) values ``x``."""
    x_t = x if isinstance(x, Tensor) else Tensor(x)
    z = (x_t.detach() - loc) / scale
    return z * z * (-0.5) - scale.log() - _LOG_SQRT_2PI


# --------------------------------------------------------------------------- conv3d
def _triple(value: Union[int, Tuple[int, int, int]]) -> Tuple[int, int, int]:
    if isinstance(value, int):
        return (value, value, value)
    value = tuple(value)
    if len(value) != 3:
        raise ValueError("expected an int or a length-3 tuple")
    return value  # type: ignore[return-value]


def conv3d(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    stride: Union[int, Tuple[int, int, int]] = 1,
    padding: Union[int, Tuple[int, int, int]] = 0,
) -> Tensor:
    """3D convolution over a ``(N, C_in, D, H, W)`` input.

    ``weight`` has shape ``(C_out, C_in, kD, kH, kW)`` and ``bias`` shape
    ``(C_out,)``.  The implementation unrolls the (small) kernel loop and uses
    a vectorised ``einsum`` per kernel offset, keeping the number of Python
    iterations at ``kD*kH*kW`` regardless of input size.
    """
    stride = _triple(stride)
    padding = _triple(padding)
    n, c_in, d, h, w = x.shape
    c_out, c_in_w, kd, kh, kw = weight.shape
    if c_in != c_in_w:
        raise ValueError(f"input channels {c_in} do not match weight channels {c_in_w}")

    pd, ph, pw = padding
    sd, sh, sw = stride
    x_pad = np.pad(
        x.data,
        ((0, 0), (0, 0), (pd, pd), (ph, ph), (pw, pw)),
        mode="constant",
    )
    d_pad, h_pad, w_pad = x_pad.shape[2:]
    d_out = (d_pad - kd) // sd + 1
    h_out = (h_pad - kh) // sh + 1
    w_out = (w_pad - kw) // sw + 1
    if d_out <= 0 or h_out <= 0 or w_out <= 0:
        raise ValueError(
            f"conv3d output would be empty for input {(d, h, w)} with kernel {(kd, kh, kw)}"
        )

    out_data = np.zeros((n, c_out, d_out, h_out, w_out), dtype=np.float64)
    for i in range(kd):
        for j in range(kh):
            for k in range(kw):
                patch = x_pad[
                    :,
                    :,
                    i : i + sd * d_out : sd,
                    j : j + sh * h_out : sh,
                    k : k + sw * w_out : sw,
                ]
                out_data += np.einsum("ncdhw,oc->nodhw", patch, weight.data[:, :, i, j, k])
    if bias is not None:
        out_data += bias.data.reshape(1, c_out, 1, 1, 1)

    parents = (x, weight) if bias is None else (x, weight, bias)
    out = _make(out_data, parents)
    if out.requires_grad:
        def _bw(grad):
            if bias is not None and bias.requires_grad:
                _accumulate(bias, grad.sum(axis=(0, 2, 3, 4)))
            if weight.requires_grad:
                grad_w = np.zeros_like(weight.data)
                for i in range(kd):
                    for j in range(kh):
                        for k in range(kw):
                            patch = x_pad[
                                :,
                                :,
                                i : i + sd * d_out : sd,
                                j : j + sh * h_out : sh,
                                k : k + sw * w_out : sw,
                            ]
                            grad_w[:, :, i, j, k] = np.einsum("nodhw,ncdhw->oc", grad, patch)
                _accumulate(weight, grad_w)
            if x.requires_grad:
                grad_x_pad = np.zeros_like(x_pad)
                for i in range(kd):
                    for j in range(kh):
                        for k in range(kw):
                            contribution = np.einsum(
                                "nodhw,oc->ncdhw", grad, weight.data[:, :, i, j, k]
                            )
                            grad_x_pad[
                                :,
                                :,
                                i : i + sd * d_out : sd,
                                j : j + sh * h_out : sh,
                                k : k + sw * w_out : sw,
                            ] += contribution
                grad_x = grad_x_pad[:, :, pd : pd + d, ph : ph + h, pw : pw + w]
                _accumulate(x, grad_x)
        out._backward = _bw
    return out


def max_pool3d(
    x: Tensor,
    kernel_size: Union[int, Tuple[int, int, int]] = 2,
    stride: Optional[Union[int, Tuple[int, int, int]]] = None,
) -> Tensor:
    """3D max pooling over a ``(N, C, D, H, W)`` input.

    ``stride`` defaults to ``kernel_size`` (non-overlapping windows), matching
    the ``MaxPool3D(2)`` layers in the paper's observation embedding.
    """
    kernel = _triple(kernel_size)
    stride_t = _triple(stride) if stride is not None else kernel
    kd, kh, kw = kernel
    sd, sh, sw = stride_t
    n, c, d, h, w = x.shape
    d_out = (d - kd) // sd + 1
    h_out = (h - kh) // sh + 1
    w_out = (w - kw) // sw + 1
    if d_out <= 0 or h_out <= 0 or w_out <= 0:
        raise ValueError(f"max_pool3d output would be empty for input {(d, h, w)}")

    best = np.full((n, c, d_out, h_out, w_out), -np.inf)
    best_offset = np.zeros((n, c, d_out, h_out, w_out), dtype=np.int64)
    offset = 0
    for i in range(kd):
        for j in range(kh):
            for k in range(kw):
                patch = x.data[
                    :,
                    :,
                    i : i + sd * d_out : sd,
                    j : j + sh * h_out : sh,
                    k : k + sw * w_out : sw,
                ]
                better = patch > best
                best = np.where(better, patch, best)
                best_offset = np.where(better, offset, best_offset)
                offset += 1

    out = _make(best, (x,))
    if out.requires_grad:
        def _bw(grad):
            grad_x = np.zeros_like(x.data)
            offset_idx = 0
            for i in range(kd):
                for j in range(kh):
                    for k in range(kw):
                        mask = best_offset == offset_idx
                        grad_x[
                            :,
                            :,
                            i : i + sd * d_out : sd,
                            j : j + sh * h_out : sh,
                            k : k + sw * w_out : sw,
                        ] += grad * mask
                        offset_idx += 1
            _accumulate(x, grad_x)
        out._backward = _bw
    return out
