"""Embedding components of the IC inference network (Section 4.3).

The LSTM core receives, at each time step, a concatenation of three
embeddings:

* an **observation embedding** produced by a 3D convolutional network acting
  as a feature extractor over the detector voxels,
* a learned **address embedding** representing the identity of the random
  choice A_t, and
* an address-specific **sample embedding** encoding the value drawn at the
  previous time step.

The paper's full-size observation CNN is
``Conv3D(1,64,3)-Conv3D(64,64,3)-MaxPool3D(2)-Conv3D(64,128,3)-Conv3D(128,128,3)
-Conv3D(128,128,3)-MaxPool3D(2)-FC(2048,256)``; the default here is a scaled
configuration with the same structure (conv/conv/pool/conv/pool/FC) chosen to
fit the configured observation grid, with the paper architecture available via
:meth:`ObservationEmbedding3DCNN.paper_architecture`.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.distributions import Categorical, Distribution
from repro.tensor import functional as F
from repro.tensor.nn import Conv3d, Flatten, Linear, MaxPool3d, Module, Parameter, ReLU, Sequential
from repro.tensor.tensor import Tensor

__all__ = ["ObservationEmbedding3DCNN", "ObservationEmbeddingFC", "AddressEmbedding", "SampleEmbedding"]


class ObservationEmbedding3DCNN(Module):
    """3D-CNN feature extractor mapping a voxel grid to an embedding vector."""

    def __init__(
        self,
        observation_shape: Tuple[int, int, int],
        embedding_dim: int = 32,
        channels: Sequence[int] = (8, 16),
        kernel_size: int = 3,
        rng=None,
    ) -> None:
        super().__init__()
        self.observation_shape = tuple(observation_shape)
        self.embedding_dim = embedding_dim
        layers = []
        in_channels = 1
        spatial = self.observation_shape
        for index, out_channels in enumerate(channels):
            conv = Conv3d(in_channels, out_channels, kernel_size=kernel_size, padding=1, rng=rng)
            layers.extend([conv, ReLU()])
            spatial = conv.output_shape(spatial)
            # Pool only while the grid is still large enough to halve.
            if all(s >= 2 for s in spatial) and index < len(channels):
                pool = MaxPool3d(2)
                pooled = pool.output_shape(spatial)
                if all(s >= 1 for s in pooled):
                    layers.append(pool)
                    spatial = pooled
            in_channels = out_channels
        layers.append(Flatten())
        flat_dim = in_channels * int(np.prod(spatial))
        layers.append(Linear(flat_dim, embedding_dim, rng=rng))
        layers.append(ReLU())
        self.network = Sequential(*layers)
        self._flat_dim = flat_dim

    @classmethod
    def paper_architecture(cls, embedding_dim: int = 256, rng=None) -> "ObservationEmbedding3DCNN":
        """The full-size architecture from Section 4.3 (20x35x35 voxels)."""
        return cls(
            observation_shape=(20, 35, 35),
            embedding_dim=embedding_dim,
            channels=(64, 64, 128, 128, 128),
            rng=rng,
        )

    def forward(self, observation: Tensor) -> Tensor:
        """Embed a batch of observations.

        Accepts ``(B, D, H, W)`` or ``(D, H, W)`` arrays/tensors and inserts
        the single input channel automatically.
        """
        if not isinstance(observation, Tensor):
            observation = Tensor(np.asarray(observation, dtype=float))
        if observation.ndim == 3:
            observation = observation.reshape(1, *observation.shape)
        if observation.ndim == 4:
            observation = observation.reshape(observation.shape[0], 1, *observation.shape[1:])
        elif observation.ndim != 5:
            raise ValueError(f"expected a 3D/4D/5D observation, got shape {observation.shape}")
        return self.network(observation)


class ObservationEmbeddingFC(Module):
    """A cheap fully-connected observation embedding (for tests and tiny models)."""

    def __init__(self, input_dim: int, embedding_dim: int = 16, hidden_dim: int = 32, rng=None) -> None:
        super().__init__()
        self.input_dim = input_dim
        self.embedding_dim = embedding_dim
        self.network = Sequential(
            Linear(input_dim, hidden_dim, rng=rng), ReLU(), Linear(hidden_dim, embedding_dim, rng=rng), ReLU()
        )

    def forward(self, observation: Tensor) -> Tensor:
        if not isinstance(observation, Tensor):
            observation = Tensor(np.asarray(observation, dtype=float))
        flat = observation.reshape(observation.shape[0], -1) if observation.ndim > 1 else observation.reshape(1, -1)
        return self.network(flat)


class AddressEmbedding(Module):
    """A learned vector representing the identity of one simulator address."""

    def __init__(self, embedding_dim: int, rng=None) -> None:
        super().__init__()
        from repro.tensor.nn import init

        self.embedding_dim = embedding_dim
        scale = 1.0 / np.sqrt(embedding_dim)
        self.vector = Parameter(init.uniform((embedding_dim,), -scale, scale, rng=rng))

    def forward(self, batch_size: int = 1) -> Tensor:
        """Return the embedding broadcast to ``(batch_size, dim)``."""
        return self.vector.reshape(1, self.embedding_dim) * Tensor(np.ones((batch_size, 1)))


class SampleEmbedding(Module):
    """Address-specific embedding of the value drawn at the previous time step.

    The input representation depends on the prior at the *previous* address:
    continuous draws are standardised scalars, categorical draws are one-hot
    vectors.  ``value_dim`` is therefore 1 for continuous and K for
    categorical priors.
    """

    def __init__(self, value_dim: int, embedding_dim: int = 4, rng=None) -> None:
        super().__init__()
        self.value_dim = value_dim
        self.embedding_dim = embedding_dim
        self.layer = Linear(value_dim, embedding_dim, rng=rng)

    def forward(self, values: Tensor) -> Tensor:
        return self.layer(values).relu()

    @staticmethod
    def value_dim_for(distribution: Distribution) -> int:
        if isinstance(distribution, Categorical):
            return distribution.num_categories
        return 1

    @staticmethod
    def encode_values(distribution: Optional[Distribution], values) -> np.ndarray:
        """Encode raw sampled values into the layer's input representation."""
        arr = np.asarray(values)
        if isinstance(distribution, Categorical):
            encoded = np.zeros((arr.size, distribution.num_categories))
            encoded[np.arange(arr.size), arr.astype(np.int64).reshape(-1)] = 1.0
            return encoded
        scalars = arr.astype(float).reshape(-1, 1)
        if distribution is not None:
            mean = float(np.mean(np.atleast_1d(distribution.mean)))
            std = float(np.sqrt(np.mean(np.atleast_1d(distribution.variance))))
            if std > 0 and np.isfinite(std):
                scalars = (scalars - mean) / std
        return scalars
