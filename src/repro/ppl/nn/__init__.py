"""Neural components of inference compilation: embeddings, proposals, the network."""

from repro.ppl.nn.embeddings import (
    AddressEmbedding,
    ObservationEmbedding3DCNN,
    ObservationEmbeddingFC,
    SampleEmbedding,
)
from repro.ppl.nn.proposals import (
    ProposalCategorical,
    ProposalLayer,
    ProposalNormalMixture,
    make_proposal_layer,
)
from repro.ppl.nn.inference_network import InferenceNetwork, ProposalSession
from repro.ppl.nn.preprocessing import collect_address_statistics, pregenerate_layers

__all__ = [
    "AddressEmbedding",
    "ObservationEmbedding3DCNN",
    "ObservationEmbeddingFC",
    "SampleEmbedding",
    "ProposalCategorical",
    "ProposalLayer",
    "ProposalNormalMixture",
    "make_proposal_layer",
    "InferenceNetwork",
    "ProposalSession",
    "collect_address_statistics",
    "pregenerate_layers",
]
