"""Proposal layers of the IC inference network (Section 4.3).

The LSTM output at each time step is fed into *address-specific proposal
layers* which produce the parameters of the proposal distribution q(x_t | ...)
for the latent variable at that address:

* for continuous priors, a **mixture of truncated normal distributions**
  (truncated to the prior support for bounded priors such as Uniform), and
* for categorical priors, a **categorical distribution**.

Each proposal layer offers two views of the same parameterisation:

* :meth:`log_prob` — a differentiable (autograd) log-density of recorded
  values given the LSTM hidden state, used in the training loss
  ``-E[log q_phi(x|y)]`` of Algorithm 1, and
* :meth:`proposal_distribution` — a plain numpy distribution object used at
  inference time by the importance-sampling controller, and
* :meth:`proposal_distributions` — the per-object batched counterpart: one
  forward pass over a ``(B, hidden)`` batch of LSTM outputs yields the B
  per-trace proposal distribution objects at the same address (retained as
  the sequential engine's reference path), and
* :meth:`proposal_batch` — the array-parameterised path the lockstep engine
  (:mod:`repro.ppl.inference.batched`) uses: the same forward pass yields ONE
  :class:`repro.distributions.batched.BatchedDistribution` holding the whole
  group's ``(B, K)`` parameters, whose cheap row views replace the B
  per-trace objects (and their B·K components) on the inference hot path.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (packing imports us)
    from repro.data.packing import PackedStep

from repro.distributions import (
    BatchedCategorical,
    BatchedDistribution,
    BatchedDistributionList,
    BatchedMixtureOfTruncatedNormals,
    Categorical,
    Distribution,
    Mixture,
    Normal,
    TruncatedNormal,
)
from repro.distributions.geometry import (
    MIN_PROPOSAL_SCALE as _MIN_SCALE,
    PriorGeometry,
    prior_bounds,
    prior_geometry,
)
from repro.tensor import functional as F
from repro.tensor.nn import Linear, Module, ReLU, Sequential
from repro.tensor.tensor import Tensor

# PriorGeometry/prior_geometry moved to repro.distributions.geometry (one
# definition shared with data/packing.py and ppl/inference/plans.py); they
# stay re-exported here because this module was their historical home.
__all__ = [
    "PriorGeometry",
    "ProposalLayer",
    "ProposalNormalMixture",
    "ProposalCategorical",
    "make_proposal_layer",
    "prior_geometry",
]


class ProposalLayer(Module):
    """Common interface of address-specific proposal layers."""

    def log_prob(self, hidden: Tensor, values, priors: Sequence[Distribution]) -> Tensor:
        """Differentiable log q(values | hidden) summed over the batch."""
        raise NotImplementedError

    def log_prob_packed(self, hidden: Tensor, step: "PackedStep") -> Tensor:
        """Differentiable log q for one packed training step.

        The vectorised training loss hands the layer a
        :class:`repro.data.packing.PackedStep` whose value/prior arrays were
        precomputed at pack-build time.  The built-in layers override this to
        skip every per-trace Python loop; this base implementation falls back
        to :meth:`log_prob` on the step's retained per-trace objects, so
        custom layers keep working (and so do packs whose prior family does
        not match the layer).  Overrides must evaluate the same floating-point
        expression as :meth:`log_prob` — the ``vectorized_loss=False``
        reference path and its equivalence tests rely on it.
        """
        return self.log_prob(hidden, step.values, step.priors)

    def proposal_distribution(self, hidden: Tensor, prior: Distribution) -> Distribution:
        """A concrete (numpy) proposal distribution for one execution."""
        return self.proposal_distributions(hidden, [prior])[0]

    def proposal_distributions(self, hidden: Tensor, priors: Sequence[Distribution]) -> List[Distribution]:
        """Per-trace proposal distributions for a batch of guided executions.

        ``hidden`` is ``(B, hidden_dim)`` and ``priors`` holds the B priors at
        the shared address (their parameters may differ per trace).
        """
        raise NotImplementedError

    def proposal_batch(self, hidden: Tensor, priors: Sequence[Distribution]) -> BatchedDistribution:
        """One array-parameterised batched distribution for the whole group.

        The lockstep engine's hot path: instead of materialising B per-trace
        objects (plus their component objects), the built-in layers emit a
        single batched object whose ``row(i)`` views are handed to the worker
        slots.  Rows are sample- and density-equivalent (bit-identical) to
        the objects ``proposal_distributions`` would build.  This base
        implementation wraps the per-object list so custom layers that only
        implement ``proposal_distributions`` keep working, just without the
        O(1)-objects win.
        """
        return BatchedDistributionList(self.proposal_distributions(hidden, priors))


class ProposalNormalMixture(ProposalLayer):
    """Mixture-of-(truncated-)normals proposal for continuous latents.

    The layer is a two-layer NN whose outputs parameterise K means, K scales
    and K mixture logits.  Means are produced in a normalised coordinate and
    rescaled to the prior's location/scale (or support, for bounded priors) at
    call time, so the same layer works even if the prior's parameters vary a
    little between traces at the same address.
    """

    def __init__(self, input_dim: int, num_components: int = 5, hidden_dim: int = 32, rng=None) -> None:
        super().__init__()
        self.num_components = num_components
        self.body = Sequential(Linear(input_dim, hidden_dim, rng=rng), ReLU())
        self.head_means = Linear(hidden_dim, num_components, rng=rng)
        self.head_scales = Linear(hidden_dim, num_components, rng=rng)
        self.head_logits = Linear(hidden_dim, num_components, rng=rng)

    # ------------------------------------------------------------- parameters
    def _raw_parameters(self, hidden: Tensor):
        features = self.body(hidden)
        raw_means = self.head_means(features)      # (B, K), in normalised space
        raw_scales = self.head_scales(features)    # (B, K)
        logits = self.head_logits(features)        # (B, K)
        return raw_means, raw_scales, logits

    # Kept as a delegating alias: the geometry derivation lives in
    # repro.distributions.geometry so packing and plan compilation share it.
    _prior_bounds = staticmethod(prior_bounds)

    def _transformed_parameters(self, hidden: Tensor, priors: Sequence[Distribution]):
        """Map raw NN outputs to per-batch-element (means, scales, log_weights)."""
        return self._transformed_from_geometry(hidden, prior_geometry(priors))

    def _transformed_from_geometry(self, hidden: Tensor, geometry: PriorGeometry):
        """The array core of :meth:`_transformed_parameters` (no prior objects)."""
        raw_means, raw_scales, logits = self._raw_parameters(hidden)
        loc_t = Tensor(geometry.locs_column)
        scale_t = Tensor(geometry.scales_column)
        means = loc_t + raw_means.tanh() * scale_t            # keep means near the prior region
        comp_scales = F.softplus(raw_scales) * scale_t + _MIN_SCALE
        log_weights = F.log_softmax(logits, axis=-1)
        return means, comp_scales, log_weights, geometry.lows, geometry.highs, geometry.bounded

    # ----------------------------------------------------------------- training
    def log_prob(self, hidden: Tensor, values, priors: Sequence[Distribution]) -> Tensor:
        values_arr = np.asarray(values, dtype=float).reshape(-1, 1)   # (B, 1)
        return self._log_prob_from_geometry(hidden, values_arr, prior_geometry(priors))

    def log_prob_packed(self, hidden: Tensor, step: "PackedStep") -> Tensor:
        geometry = step.geometry
        if geometry is None:
            # Prior family did not match this layer at pack time: score
            # through the per-object reference path.
            return self.log_prob(hidden, step.values, step.priors)
        return self._log_prob_from_geometry(hidden, step.values_column, geometry)

    def _log_prob_from_geometry(
        self, hidden: Tensor, values_column: np.ndarray, geometry: PriorGeometry
    ) -> Tensor:
        """Shared differentiable density: the per-object ``log_prob`` and the
        packed path both evaluate exactly this expression, which is what makes
        them bit-identical in loss and gradients."""
        means, scales, log_weights, _, _, _ = self._transformed_from_geometry(hidden, geometry)
        # Component log-density at the recorded values.
        log_pdf = F.normal_log_pdf(values_column, means, scales)       # (B, K)
        if geometry.any_bounded:
            # Truncation: subtract log(Phi(beta) - Phi(alpha)) per component.
            alpha = (Tensor(geometry.finite_lows_column) - means) / scales
            beta = (Tensor(geometry.finite_highs_column) - means) / scales
            z = F.normal_cdf(beta) - F.normal_cdf(alpha)
            z = z.clamp(min_value=1e-8)
            if geometry.all_bounded:
                # x * 1.0 is bitwise x: skipping the all-ones mask keeps the
                # value (and gradient) identical while dropping two graph nodes.
                log_pdf = log_pdf - z.log()
            else:
                log_pdf = log_pdf - z.log() * Tensor(geometry.bounded_mask_column)
        mixture_log_prob = F.logsumexp(log_weights + log_pdf, axis=-1)  # (B,)
        return mixture_log_prob.sum()

    # ---------------------------------------------------------------- inference
    def proposal_distributions(self, hidden: Tensor, priors: Sequence[Distribution]) -> List[Distribution]:
        means, scales, log_weights, lows, highs, bounded = self._transformed_parameters(hidden, list(priors))
        means_np = means.data
        scales_np = scales.data
        weights_np = np.exp(log_weights.data)
        num_components = self.num_components
        # All truncated components across the batch are built in one
        # vectorized pass (two ndtr calls total instead of two per object).
        bounded_rows = np.flatnonzero(bounded)
        truncated_per_row = {}
        if bounded_rows.size:
            built = TruncatedNormal.batch_build(
                means_np[bounded_rows].reshape(-1),
                scales_np[bounded_rows].reshape(-1),
                np.repeat(lows[bounded_rows], num_components),
                np.repeat(highs[bounded_rows], num_components),
            )
            for j, row in enumerate(bounded_rows):
                truncated_per_row[int(row)] = built[j * num_components : (j + 1) * num_components]
        distributions: List[Distribution] = []
        for i in range(len(priors)):
            if i in truncated_per_row:
                components: List[Distribution] = truncated_per_row[i]
            else:
                components = [Normal(means_np[i, k], scales_np[i, k]) for k in range(num_components)]
            distributions.append(Mixture(components, weights_np[i]))
        return distributions

    def proposal_batch(self, hidden: Tensor, priors: Sequence[Distribution]) -> BatchedDistribution:
        """The whole group's proposals as ONE array-parameterised mixture.

        Same transformed parameters as :meth:`proposal_distributions`, but no
        per-trace ``Mixture`` (and no B·K component objects) is ever built:
        the batched object holds the ``(B, K)`` parameter arrays and its row
        views sample/score bit-identically to the per-object path.
        """
        means, scales, log_weights, lows, highs, bounded = self._transformed_parameters(hidden, list(priors))
        return BatchedMixtureOfTruncatedNormals(
            means.data,
            scales.data,
            np.exp(log_weights.data),
            lows,
            highs,
            bounded=bounded,
        )


class ProposalCategorical(ProposalLayer):
    """Categorical proposal for discrete latents (e.g. the decay channel)."""

    def __init__(self, input_dim: int, num_categories: int, hidden_dim: int = 32, rng=None) -> None:
        super().__init__()
        self.num_categories = num_categories
        self.network = Sequential(
            Linear(input_dim, hidden_dim, rng=rng), ReLU(), Linear(hidden_dim, num_categories, rng=rng)
        )

    def log_prob(self, hidden: Tensor, values, priors: Sequence[Distribution]) -> Tensor:
        indices = np.asarray(values, dtype=np.int64).reshape(-1)
        return self._log_prob_indices(hidden, indices)

    def log_prob_packed(self, hidden: Tensor, step: "PackedStep") -> Tensor:
        if step.indices is None:
            return self.log_prob(hidden, step.values, step.priors)
        return self._log_prob_indices(hidden, step.indices)

    def _log_prob_indices(self, hidden: Tensor, indices: np.ndarray) -> Tensor:
        logits = self.network(hidden)
        log_probs = F.log_softmax(logits, axis=-1)
        picked = F.gather(log_probs, indices, axis=-1)
        return picked.sum()

    def proposal_distributions(self, hidden: Tensor, priors: Sequence[Distribution]) -> List[Distribution]:
        logits = self.network(hidden)
        probs = F.softmax(logits, axis=-1).data
        distributions: List[Distribution] = []
        for i, prior in enumerate(priors):
            row = probs[i]
            # Guard against zero-probability categories that the prior allows:
            # mix a small amount of the prior so importance weights stay finite.
            if isinstance(prior, Categorical):
                row = 0.99 * row + 0.01 * prior.probs
            distributions.append(Categorical(row))
        return distributions

    def proposal_batch(self, hidden: Tensor, priors: Sequence[Distribution]) -> BatchedDistribution:
        """The whole group's categorical proposals as one ``(B, K)`` batch."""
        logits = self.network(hidden)
        probs = np.array(F.softmax(logits, axis=-1).data)
        for i, prior in enumerate(priors):
            # Same prior smoothing as the per-object path (keeps importance
            # weights finite at categories the NN zeroes out).
            if isinstance(prior, Categorical):
                probs[i] = 0.99 * probs[i] + 0.01 * prior.probs
        return BatchedCategorical(probs)


def make_proposal_layer(
    prior: Distribution,
    input_dim: int,
    num_components: int = 5,
    hidden_dim: int = 32,
    rng=None,
) -> ProposalLayer:
    """Factory choosing the proposal family appropriate for a prior."""
    if isinstance(prior, Categorical):
        return ProposalCategorical(input_dim, prior.num_categories, hidden_dim=hidden_dim, rng=rng)
    if prior.discrete:
        raise NotImplementedError(
            f"no proposal layer family implemented for discrete prior {prior.name}"
        )
    return ProposalNormalMixture(input_dim, num_components=num_components, hidden_dim=hidden_dim, rng=rng)
