"""The dynamic 3DCNN–LSTM inference network (Section 4.3).

The network's runtime structure changes with every execution trace: an LSTM
core runs for as many steps as the trace has latent draws, and address-specific
embedding and proposal layers are attached according to the sequence of
addresses A_t encountered in the simulator.  New address-specific layers are
created the first time an address is seen (:meth:`InferenceNetwork.polymorph`),
either on-the-fly in online training or in a pre-generation pass over an
offline dataset (Section 4.4, :mod:`repro.ppl.nn.preprocessing`).

Two entry points matter:

* :meth:`InferenceNetwork.loss` — Algorithm 1: split a minibatch into
  sub-minibatches of equal trace type, run each through the LSTM in a single
  batched forward pass, and accumulate ``-log q_phi(x|y)``.
* :meth:`InferenceNetwork.inference_session` — a stateful helper that walks
  the LSTM step by step during guided execution, producing a proposal
  distribution for every address the simulator requests over PPX.
* :meth:`InferenceNetwork.batched_session` — the batched counterpart
  (:class:`BatchedProposalSession`): B guided executions advance in lockstep,
  sharing one observation embedding and one batched LSTM step per address.
  When control flow diverges (different traces request different addresses at
  the same step), the cohort is partitioned into per-address sub-batches, so
  a group of size 1 degrades gracefully to per-trace stepping.

Information flow during guided execution deliberately matches training: a
fallback to the prior at an address the network has never seen resets the
previous-sample embedding to zeros (in both the sessions here and the skipped
step of :meth:`InferenceNetwork._sub_minibatch_loss`), so trained weights see
the same inputs at inference time.
"""

from __future__ import annotations

import pickle
from collections import defaultdict
from typing import TYPE_CHECKING, Any, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - runtime imports stay lazy (cycle guard)
    from repro.data.packing import PackedSubMinibatch

from repro.common.config import Config, get_config
from repro.data.dataset import observation_array
from repro.distributions import Categorical, Distribution, distribution_from_dict
from repro.ppl.nn.embeddings import (
    AddressEmbedding,
    ObservationEmbedding3DCNN,
    ObservationEmbeddingFC,
    SampleEmbedding,
)
from repro.ppl.nn.proposals import make_proposal_layer
from repro.tensor import no_grad
from repro.tensor.nn import LSTM, Module, ModuleDict, Parameter
from repro.tensor.tensor import Tensor
from repro.trace.trace import Trace

__all__ = ["InferenceNetwork", "ProposalSession", "BatchedProposalSession"]


class InferenceNetwork(Module):
    """Dynamic LSTM network producing per-address proposal distributions."""

    def __init__(
        self,
        observation_embedding: Optional[Module] = None,
        config: Optional[Config] = None,
        observe_key: Optional[str] = None,
        rng=None,
        vectorized_loss: bool = True,
    ) -> None:
        super().__init__()
        cfg = config or get_config()
        self.config = cfg
        self.observe_key = observe_key
        self._rng = rng
        #: score training steps through packed array inputs (the default hot
        #: path); ``False`` retains the per-object reference path, mirroring
        #: the lockstep engine's ``batched_proposals=False`` precedent.
        self.vectorized_loss = bool(vectorized_loss)
        if observation_embedding is None:
            observation_embedding = ObservationEmbedding3DCNN(
                observation_shape=cfg.observation_shape,
                embedding_dim=cfg.observation_embedding_dim,
                rng=rng,
            )
        self.observation_embedding = observation_embedding
        obs_dim = getattr(observation_embedding, "embedding_dim", cfg.observation_embedding_dim)
        self.obs_dim = obs_dim
        self.address_dim = cfg.address_embedding_dim
        self.sample_dim = cfg.sample_embedding_dim
        lstm_input = obs_dim + self.address_dim + self.sample_dim
        self.lstm = LSTM(lstm_input, cfg.lstm_hidden, num_layers=cfg.lstm_stacks, rng=rng)
        self.address_embeddings = ModuleDict()
        self.sample_embeddings = ModuleDict()
        self.proposal_layers = ModuleDict()
        #: per-address record of the prior used to build its layers (for saving)
        self.address_specs: Dict[str, Dict[str, Any]] = {}
        self._frozen = False
        #: addresses already resolved by :meth:`polymorph` — layered or (when
        #: frozen) discarded — so re-scans are set lookups, not layer probes
        self._seen_addresses: set = set()
        #: trace types whose full address sequence has been scanned; traces
        #: of a known type are skipped outright (same type = same addresses)
        self._known_trace_types: set = set()
        #: addresses reported as discarded by the most recent polymorph call
        self.last_discarded: List[str] = []
        #: sub-minibatch count of the most recent loss evaluation
        self._last_sub_minibatches = 0
        #: bumped by :meth:`notify_updated` every time the parameters change
        #: in place (a completed training run); serving caches key on it
        self.version = 0
        self._update_listeners: List[Any] = []

    # -------------------------------------------------------- update notification
    def add_update_listener(self, listener) -> None:
        """Register ``listener()`` to run after every in-place parameter update.

        The serving layer uses this to invalidate cached posteriors the moment
        the proposal network they were computed under is retrained — a frozen
        posterior for the *old* parameters is wrong, not merely old.
        """
        if listener not in self._update_listeners:
            self._update_listeners.append(listener)

    def remove_update_listener(self, listener) -> None:
        if listener in self._update_listeners:
            self._update_listeners.remove(listener)

    def notify_updated(self) -> None:
        """Bump :attr:`version` and fan out to registered listeners."""
        self.version += 1
        for listener in list(self._update_listeners):
            listener()

    def __getstate__(self):
        # Listeners reference live services (locks, threads, queues) — they
        # must not ride along when the network is shipped to worker processes.
        state = dict(self.__dict__)
        state["_update_listeners"] = []
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)

    # ------------------------------------------------------------- polymorphism
    def polymorph(self, traces: Iterable[Trace]) -> List[Tuple[str, Parameter]]:
        """Create address-specific layers for any new addresses in ``traces``.

        Returns the newly created named parameters so that an optimizer can
        register them (online training).  When the network is frozen (the
        distributed offline mode after layer pre-generation), unseen addresses
        are reported via :attr:`last_discarded` instead and no layers are
        created, mirroring the paper's freeze-and-discard behaviour.

        The scan is amortized O(new addresses), not O(minibatch x trace
        length): traces whose trace type has been scanned before are skipped
        outright (same type = same address sequence), and within a new type
        every already-resolved address — layered, or discarded by the frozen
        network — is a single set lookup.  A discarded address is therefore
        reported the *first* time it is seen, not once per occurrence.
        """
        new_parameters: List[Tuple[str, Parameter]] = []
        self.last_discarded = []
        known_types = self._known_trace_types
        seen = self._seen_addresses
        for trace in traces:
            trace_type = trace.trace_type
            if trace_type in known_types:
                continue
            for sample in trace.samples:
                if sample.address in seen or not sample.controlled or sample.distribution is None:
                    continue
                if self._frozen:
                    self.last_discarded.append(sample.address)
                    seen.add(sample.address)
                    continue
                new_parameters.extend(self._create_layers(sample.address, sample.distribution))
            known_types.add(trace_type)
        return new_parameters

    def _create_layers(self, address: str, prior: Distribution) -> List[Tuple[str, Parameter]]:
        self._seen_addresses.add(address)
        before = {name for name, _ in self.named_parameters()}
        self.address_embeddings[address] = AddressEmbedding(self.address_dim, rng=self._rng)
        self.sample_embeddings[address] = SampleEmbedding(
            SampleEmbedding.value_dim_for(prior), self.sample_dim, rng=self._rng
        )
        self.proposal_layers[address] = make_proposal_layer(
            prior,
            input_dim=self.config.lstm_hidden,
            num_components=self.config.proposal_mixture_components,
            rng=self._rng,
        )
        self.address_specs[address] = {"prior": prior.to_dict()}
        return [(name, p) for name, p in self.named_parameters() if name not in before]

    def freeze_architecture(self) -> None:
        """Stop creating new address-specific layers (Section 4.4)."""
        self._frozen = True

    @property
    def num_addresses(self) -> int:
        return len(self.proposal_layers)

    # ------------------------------------------------------------- observations
    def _observation_array(self, trace: Trace) -> np.ndarray:
        return observation_array(trace, self.observe_key)

    # ------------------------------------------------------------------- loss
    def loss(self, traces: Sequence[Trace]) -> Tensor:
        """Algorithm 1: minibatch loss -1/B sum log q_phi(x|y).

        The minibatch is partitioned into sub-minibatches of identical trace
        type so that each sub-minibatch can be pushed through the LSTM in one
        batched forward execution.  With :attr:`vectorized_loss` (the
        default) each group is packed into array form first
        (:func:`repro.data.packing.pack_sub_minibatch`) and scored through
        the per-step vectorised path; offline training avoids even the
        packing cost by feeding cached packs to :meth:`loss_packed`.
        """
        if len(traces) == 0:
            raise ValueError("loss needs at least one trace")
        groups: Dict[str, List[Trace]] = defaultdict(list)
        for trace in traces:
            groups[trace.trace_type].append(trace)
        self._last_sub_minibatches = 0
        if self.vectorized_loss:
            from repro.data.packing import pack_sub_minibatch

            group_losses = [
                self._sub_minibatch_loss_packed(pack_sub_minibatch(group, self.observe_key))
                for group in groups.values()
            ]
        else:
            group_losses = [self._sub_minibatch_loss(group) for group in groups.values()]
        total: Optional[Tensor] = None
        for group_loss in group_losses:
            total = group_loss if total is None else total + group_loss
        assert total is not None
        return total * (1.0 / len(traces))

    def loss_packed(self, packs: Sequence["PackedSubMinibatch"]) -> Tensor:
        """The minibatch loss over pre-built packs (one per trace-type group).

        Numerically identical to ``loss(sum of packed traces)`` — the packs
        carry precomputed array inputs, not different math — and it honours
        :attr:`vectorized_loss`: with the flag off, each pack's retained
        traces are scored through the per-object reference path, so the two
        paths stay comparable under the same minibatch schedule.
        """
        packs = list(packs)
        if len(packs) == 0:
            raise ValueError("loss_packed needs at least one pack")
        self._last_sub_minibatches = 0
        num_traces = 0
        total: Optional[Tensor] = None
        for pack in packs:
            num_traces += pack.batch_size
            if self.vectorized_loss:
                group_loss = self._sub_minibatch_loss_packed(pack)
            else:
                group_loss = self._sub_minibatch_loss(pack.traces)
            total = group_loss if total is None else total + group_loss
        assert total is not None
        return total * (1.0 / num_traces)

    @property
    def last_num_sub_minibatches(self) -> int:
        return self._last_sub_minibatches

    def _sub_minibatch_loss_packed(self, pack: "PackedSubMinibatch") -> Tensor:
        """Negative log q over one packed group, in per-step array ops.

        Step for step the same computation graph as
        :meth:`_sub_minibatch_loss` — observation embedding, address
        embedding, LSTM step, proposal log-density, previous-sample embedding
        — but every numpy input (stacked observations, value columns, prior
        geometry, sample encodings) comes precomputed from the pack instead
        of being re-derived from per-trace objects.  Discarded addresses
        (frozen network) skip the step and zero the previous-sample
        embedding, exactly as the reference and the inference sessions do.
        """
        self._last_sub_minibatches += 1
        batch = pack.batch_size
        obs_embed = self.observation_embedding(Tensor(pack.observations))
        state = self.lstm.initial_state(batch)
        prev_embed = Tensor(np.zeros((batch, self.sample_dim)))
        neg_log_q: Optional[Tensor] = None
        for step in pack.steps:
            if step.address not in self.proposal_layers:
                prev_embed = Tensor(np.zeros((batch, self.sample_dim)))
                continue
            addr_embed = self.address_embeddings[step.address](batch)
            lstm_input = Tensor.cat([obs_embed, addr_embed, prev_embed], axis=1)
            hidden, state = self.lstm.step(lstm_input, state)
            log_q = self.proposal_layers[step.address].log_prob_packed(hidden, step)
            neg_log_q = (-log_q) if neg_log_q is None else neg_log_q - log_q
            prev_embed = self.sample_embeddings[step.address](Tensor(step.encoded_values))
        if neg_log_q is None:
            neg_log_q = Tensor(np.zeros(()))
        return neg_log_q

    def _sub_minibatch_loss(self, traces: Sequence[Trace]) -> Tensor:
        """Negative log q summed over a group of same-trace-type traces.

        The per-object reference path (``vectorized_loss=False``): scores
        values against per-trace prior objects and re-derives every array per
        call.  Kept as the bit-identity and benchmark reference for
        :meth:`_sub_minibatch_loss_packed`.
        """
        self._last_sub_minibatches += 1
        batch = len(traces)
        observations = np.stack([self._observation_array(t) for t in traces], axis=0)
        obs_embed = self.observation_embedding(Tensor(observations))
        steps = [
            [s for s in trace.samples if s.controlled and s.distribution is not None]
            for trace in traces
        ]
        num_steps = len(steps[0])
        state = self.lstm.initial_state(batch)
        prev_embed = Tensor(np.zeros((batch, self.sample_dim)))
        neg_log_q: Optional[Tensor] = None
        for t in range(num_steps):
            samples_t = [steps[i][t] for i in range(batch)]
            address = samples_t[0].address
            if address not in self.proposal_layers:
                # Discarded address (frozen network): skip the step AND reset
                # the previous-sample embedding, mirroring the inference-time
                # sessions which fall back to the prior here and feed zeros
                # into the next LSTM step.  Carrying the stale embedding would
                # train the network on an information flow it never sees at
                # inference time.
                prev_embed = Tensor(np.zeros((batch, self.sample_dim)))
                continue
            addr_embed = self.address_embeddings[address](batch)
            lstm_input = Tensor.cat([obs_embed, addr_embed, prev_embed], axis=1)
            hidden, state = self.lstm.step(lstm_input, state)
            values = [s.value for s in samples_t]
            priors = [s.distribution for s in samples_t]
            log_q = self.proposal_layers[address].log_prob(hidden, values, priors)
            neg_log_q = (-log_q) if neg_log_q is None else neg_log_q - log_q
            encoded = SampleEmbedding.encode_values(priors[0], np.asarray(values))
            prev_embed = self.sample_embeddings[address](Tensor(encoded))
        if neg_log_q is None:
            neg_log_q = Tensor(np.zeros(()))
        return neg_log_q

    # --------------------------------------------------------------- inference
    def inference_session(self, observation) -> "ProposalSession":
        """Start a guided-execution session for one observation y."""
        return ProposalSession(self, observation)

    def batched_session(
        self, observation, batch_size: int, batched_proposals: bool = True
    ) -> "BatchedProposalSession":
        """Start a lockstep session advancing ``batch_size`` executions at once.

        ``batched_proposals=False`` selects the legacy per-object proposal
        emission (one ``Mixture`` + components per trace per step) instead of
        the array-parameterised batched objects; it exists as the equivalence
        and benchmark reference, not for production use.
        """
        return BatchedProposalSession(
            self, observation, batch_size, batched_proposals=batched_proposals
        )

    def planned_session(
        self, plan, scratch, rngs, observation=None, observations=None
    ) -> "BatchedProposalSession":
        """Start a lockstep session driven by a compiled execution plan.

        Built by the engine when the :class:`repro.ppl.inference.plans.PlanCache`
        predicts the cohort's trace type: conforming cohorts run the plan's
        precompiled fast path, anything else falls back to the dynamic rounds
        of :class:`BatchedProposalSession` mid-cohort.  (Imported lazily:
        the plans module builds on this one.)
        """
        from repro.ppl.inference.plans import PlannedProposalSession

        return PlannedProposalSession(
            self, plan, scratch, rngs, observation=observation, observations=observations
        )

    def mixed_batched_session(self, observations: Sequence[Any]) -> "BatchedProposalSession":
        """Start a lockstep session whose slots condition on *different* observations.

        ``observations[slot]`` is the observation array for slot ``slot``; the
        cohort size is ``len(observations)``.  Duplicate observations (byte-
        identical arrays) are embedded once and share their embedding row, so
        a cohort coalescing several requests for the same observation pays one
        observation-embedding forward per *distinct* observation — the serving
        layer's amortization win.
        """
        return BatchedProposalSession(self, None, len(observations), observations=observations)

    # ------------------------------------------------------------- persistence
    def save(self, path: str) -> None:
        """Serialise architecture spec + weights to ``path``."""
        payload = {
            "config": self.config.__dict__,
            "observe_key": self.observe_key,
            "address_specs": self.address_specs,
            "state_dict": self.state_dict(),
            "observation_embedding_kind": type(self.observation_embedding).__name__,
            "observation_embedding_meta": {
                "embedding_dim": getattr(self.observation_embedding, "embedding_dim", None),
                "observation_shape": getattr(self.observation_embedding, "observation_shape", None),
                "input_dim": getattr(self.observation_embedding, "input_dim", None),
            },
        }
        with open(path, "wb") as handle:
            pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)

    @classmethod
    def load(cls, path: str) -> "InferenceNetwork":
        with open(path, "rb") as handle:
            payload = pickle.load(handle)
        config = Config(**payload["config"])
        meta = payload["observation_embedding_meta"]
        if payload["observation_embedding_kind"] == "ObservationEmbeddingFC":
            observation_embedding: Module = ObservationEmbeddingFC(
                input_dim=meta["input_dim"], embedding_dim=meta["embedding_dim"]
            )
        else:
            observation_embedding = ObservationEmbedding3DCNN(
                observation_shape=tuple(meta["observation_shape"]),
                embedding_dim=meta["embedding_dim"],
            )
        network = cls(observation_embedding=observation_embedding, config=config, observe_key=payload["observe_key"])
        for address, spec in payload["address_specs"].items():
            prior = distribution_from_dict(spec["prior"])
            network._create_layers(address, prior)
        network.load_state_dict(payload["state_dict"])
        return network


class ProposalSession:
    """Stateful walker that produces proposals during one guided execution.

    The execution controller calls :meth:`proposal` once per latent draw, in
    simulator order.  The session advances the LSTM using the value drawn at
    the *previous* step (read from the execution state's partial trace), which
    is exactly the information flow of Figure 3.
    """

    def __init__(self, network: InferenceNetwork, observation) -> None:
        self.network = network
        observation_arr = np.asarray(observation, dtype=float)
        with no_grad():
            self._obs_embed = network.observation_embedding(Tensor(observation_arr[None, ...]))
        self._state = None
        self._prev_address: Optional[str] = None
        self._prev_prior: Optional[Distribution] = None
        self.num_steps = 0
        self.num_fallbacks = 0
        #: a sequential session always pays exactly one embedding forward
        #: (harvested by merge_session_stats like the batched sessions')
        self.num_observation_embeddings = 1

    def _previous_embedding(self, previous_value) -> Tensor:
        if (
            previous_value is None
            or self._prev_address is None
            or self._prev_address not in self.network.sample_embeddings
        ):
            return Tensor(np.zeros((1, self.network.sample_dim)))
        encoded = SampleEmbedding.encode_values(self._prev_prior, np.asarray([previous_value]))
        return self.network.sample_embeddings[self._prev_address](Tensor(encoded))

    def proposal(
        self,
        address: str,
        prior: Distribution,
        previous_value=None,
    ) -> Optional[Distribution]:
        """Proposal distribution for the next latent draw (or None for prior fallback)."""
        self.num_steps += 1
        if address not in self.network.proposal_layers:
            # Address unseen during training: fall back to the prior without
            # advancing the LSTM (the network has no representation for it).
            self.num_fallbacks += 1
            self._prev_address = None
            self._prev_prior = None
            return None
        with no_grad():
            prev_embed = self._previous_embedding(previous_value)
            addr_embed = self.network.address_embeddings[address](1)
            lstm_input = Tensor.cat([self._obs_embed, addr_embed, prev_embed], axis=1)
            hidden, self._state = self.network.lstm.step(lstm_input, self._state)
            distribution = self.network.proposal_layers[address].proposal_distribution(hidden, prior)
        self._prev_address = address
        self._prev_prior = prior
        return distribution


class BatchedProposalSession:
    """Advances B guided executions in lockstep through the inference network.

    The sequential :class:`ProposalSession` pays the observation embedding,
    one LSTM step and one proposal-layer forward *per trace per address* at
    batch size 1.  This session amortizes all three across a cohort of B
    executions of the same observation:

    * the observation is embedded **once** and its embedding row is shared by
      every trace in the cohort,
    * all traces currently requesting the same address advance through **one
      batched LSTM step**, and
    * the proposal layer produces the B per-trace proposal distributions in a
      single batched forward pass.

    Per-trace LSTM state is kept as rows of ``(B, hidden)`` arrays, so when
    control flow diverges (traces request different addresses at the same
    step) the cohort is partitioned into per-address groups whose state rows
    are gathered, stepped and scattered back independently — a group of size
    1 is exactly per-trace stepping, which is the graceful fallback the
    divergent case degrades to.  The numerical information flow per trace is
    identical to :class:`ProposalSession` (zero previous-sample embedding
    after a prior fallback, no LSTM advance at unknown addresses).

    Drive it through :func:`repro.ppl.inference.batched.batched_importance_sampling`,
    which suspends B model executions at their controlled draws and answers
    them through :meth:`proposals`.

    Mixed-observation cohorts (:meth:`InferenceNetwork.mixed_batched_session`)
    give every slot its own observation embedding row, so *independent*
    posterior requests for different observations can share one lockstep
    cohort — the entry point the serving subsystem's micro-batching scheduler
    coalesces into.  Distinct observations are embedded once each
    (:attr:`num_observation_embeddings` counts the forwards actually paid).

    Proposal emission defaults to array-parameterised batched distributions
    (:mod:`repro.distributions.batched`): each address group's step builds
    ONE object holding the group's ``(B, K)`` parameters, and every slot is
    answered with a row view whose ``sample``/``log_prob`` are bit-identical
    to the per-trace ``Mixture``/``Categorical`` it replaces.  Construct with
    ``batched_proposals=False`` to get the legacy per-object emission (the
    benchmark/equivalence reference).
    """

    def __init__(
        self,
        network: InferenceNetwork,
        observation,
        batch_size: int,
        observations: Optional[Sequence[Any]] = None,
        batched_proposals: bool = True,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.network = network
        self.batch_size = int(batch_size)
        #: emit one array-parameterised object per address group (the default
        #: hot path) instead of B per-trace distribution objects (the legacy
        #: reference path kept for equivalence tests and benchmarks).
        self.batched_proposals = bool(batched_proposals)
        if observations is not None:
            if len(observations) != self.batch_size:
                raise ValueError("observations must supply one entry per slot")
            self._obs_rows = self._embed_per_slot(observations)
        else:
            observation_arr = np.asarray(observation, dtype=float)
            with no_grad():
                embed = network.observation_embedding(Tensor(observation_arr[None, ...]))
            # Shared observation: every slot reads the same embedding row.
            self._obs_rows = np.broadcast_to(
                embed.data[0], (self.batch_size, embed.data.shape[1])
            )
            self.num_observation_embeddings = 1
        hidden = network.lstm.hidden_size
        self._h = [np.zeros((self.batch_size, hidden)) for _ in range(network.lstm.num_layers)]
        self._c = [np.zeros((self.batch_size, hidden)) for _ in range(network.lstm.num_layers)]
        self._prev_address: List[Optional[str]] = [None] * self.batch_size
        self._prev_prior: List[Optional[Distribution]] = [None] * self.batch_size
        self.num_steps = 0
        self.num_fallbacks = 0
        self.num_rounds = 0
        self.num_batched_steps = 0
        self.num_divergent_rounds = 0

    def _embed_per_slot(self, observations: Sequence[Any]) -> np.ndarray:
        """Embed per-slot observations, deduplicating byte-identical arrays.

        Each distinct observation is embedded with the same single-row forward
        the shared-observation path uses, so a mixed cohort produces bitwise
        the same embedding rows as running each request in its own cohort —
        the property the serving layer's seeded-equivalence tests rely on.
        """
        network = self.network
        arrays = [np.ascontiguousarray(np.asarray(o, dtype=float)) for o in observations]
        unique_rows: Dict[Tuple[Any, bytes], np.ndarray] = {}
        rows = np.empty((len(arrays), network.obs_dim))
        for slot, array in enumerate(arrays):
            key = (array.shape, array.tobytes())
            row = unique_rows.get(key)
            if row is None:
                with no_grad():
                    row = network.observation_embedding(Tensor(array[None, ...])).data[0]
                unique_rows[key] = row
            rows[slot] = row
        self.num_observation_embeddings = len(unique_rows)
        return rows

    def proposals(self, requests: Sequence[Tuple[int, str, Distribution, Any]]) -> Dict[int, Optional[Distribution]]:
        """Answer one lockstep round of proposal requests.

        ``requests`` holds ``(slot, address, prior, previous_value)`` tuples,
        one per execution currently suspended at a controlled draw.  Returns
        ``slot -> Distribution`` (or ``None`` for the prior fallback at
        addresses the network has no layers for).
        """
        self.num_rounds += 1
        self.num_steps += len(requests)
        groups: Dict[str, List[Tuple[int, Distribution, Any]]] = {}
        for slot, address, prior, previous_value in requests:
            groups.setdefault(address, []).append((slot, prior, previous_value))
        if len(groups) > 1:
            self.num_divergent_rounds += 1
        responses: Dict[int, Optional[Distribution]] = {}
        for address, members in groups.items():
            if address not in self.network.proposal_layers:
                # Unseen address: fall back to the prior without advancing the
                # LSTM, and reset the previous-sample tracking (same semantics
                # as ProposalSession.proposal).
                self.num_fallbacks += len(members)
                for slot, _, _ in members:
                    responses[slot] = None
                    self._prev_address[slot] = None
                    self._prev_prior[slot] = None
                continue
            responses.update(self._step_group(address, members))
        return responses

    def _step_group(
        self, address: str, members: Sequence[Tuple[int, Distribution, Any]]
    ) -> Dict[int, Distribution]:
        """One batched LSTM step + proposal forward for a same-address group."""
        self.num_batched_steps += 1
        network = self.network
        size = len(members)
        with no_grad():
            # Previous-sample embeddings: zeros after a fallback / at the first
            # step, otherwise the (address-specific) embedding of the value
            # drawn at the previous step.  Rows are sub-batched by previous
            # address because each previous address owns its own layer.
            prev_embed = np.zeros((size, network.sample_dim))
            by_prev: Dict[str, List[int]] = {}
            for row, (slot, _, previous_value) in enumerate(members):
                prev_addr = self._prev_address[slot]
                if previous_value is None or prev_addr is None or prev_addr not in network.sample_embeddings:
                    continue
                by_prev.setdefault(prev_addr, []).append(row)
            for prev_addr, rows in by_prev.items():
                encoded = np.concatenate(
                    [
                        SampleEmbedding.encode_values(
                            self._prev_prior[members[row][0]], np.asarray([members[row][2]])
                        )
                        for row in rows
                    ],
                    axis=0,
                )
                prev_embed[rows] = network.sample_embeddings[prev_addr](Tensor(encoded)).data
            addr_embed = network.address_embeddings[address](size).data
            slots = [slot for slot, _, _ in members]
            obs_embed = self._obs_rows[slots]
            lstm_input = Tensor(np.concatenate([obs_embed, addr_embed, prev_embed], axis=1))
            state = [
                (Tensor(self._h[layer][slots]), Tensor(self._c[layer][slots]))
                for layer in range(network.lstm.num_layers)
            ]
            hidden, new_state = network.lstm.step(lstm_input, state)
            for layer, (h, c) in enumerate(new_state):
                self._h[layer][slots] = h.data
                self._c[layer][slots] = c.data
            priors = [prior for _, prior, _ in members]
            layer = network.proposal_layers[address]
            if self.batched_proposals:
                # One array-parameterised object for the whole group; each
                # slot receives a cheap row view instead of a freshly built
                # per-trace Mixture (O(1) objects per step, not O(B*K)).
                batch = layer.proposal_batch(hidden, priors)
                distributions: Sequence[Any] = [batch.row(row) for row in range(len(members))]
            else:
                distributions = layer.proposal_distributions(hidden, priors)
        out: Dict[int, Any] = {}
        for (slot, prior, _), distribution in zip(members, distributions):
            self._prev_address[slot] = address
            self._prev_prior[slot] = prior
            out[slot] = distribution
        return out
