"""Offline layer pre-generation (Section 4.4).

Because the embedding and proposal layers of the IC network are
address-dependent, different ranks in a data-parallel run would otherwise
build *different* networks from the minibatches they happen to see, making a
generic gradient allreduce impossible.  The paper's solution for offline
training is to pre-process the whole dataset once and pre-generate every
embedding and proposal layer the dataset implies, then share this globally
consistent network across all ranks (and freeze it so that online traces with
unknown addresses are discarded rather than grown into new layers).
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from repro.ppl.nn.inference_network import InferenceNetwork
from repro.tensor.nn import Parameter
from repro.trace.trace import Trace

__all__ = ["pregenerate_layers", "collect_address_statistics"]


def pregenerate_layers(
    network: InferenceNetwork,
    traces: Iterable[Trace],
    freeze: bool = True,
) -> List[Tuple[str, Parameter]]:
    """Create every address-specific layer implied by ``traces``.

    Returns the full list of newly created named parameters.  When ``freeze``
    is True the architecture is frozen afterwards so every rank trains exactly
    the same parameter set (required for allreduce-based synchronous SGD).
    """
    created = network.polymorph(traces)
    if freeze:
        network.freeze_architecture()
    return created


def collect_address_statistics(traces: Iterable[Trace]) -> dict:
    """Summarise a dataset's address space (used in reports and tests).

    Returns a dict with the set of unique addresses, the number of trace
    types, and the distribution of trace lengths — the quantities the paper
    quotes for the Sherpa setup (~24k addresses, many trace types, unbounded
    lengths from rejection sampling).
    """
    addresses = set()
    trace_types = set()
    lengths = []
    for trace in traces:
        addresses.update(trace.addresses)
        trace_types.add(trace.trace_type)
        lengths.append(trace.length)
    return {
        "num_unique_addresses": len(addresses),
        "num_trace_types": len(trace_types),
        "num_traces": len(lengths),
        "min_length": min(lengths) if lengths else 0,
        "max_length": max(lengths) if lengths else 0,
        "mean_length": sum(lengths) / len(lengths) if lengths else 0.0,
    }
