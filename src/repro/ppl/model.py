"""Models: local generative functions and remote PPX-controlled simulators.

A *model* specifies the joint distribution p(x, y) as a forward program.  Two
deployment shapes are supported, exactly as in the paper:

* :class:`Model` / :class:`FunctionModel` — the program is Python code in this
  process, calling :func:`repro.ppl.sample` and :func:`repro.ppl.observe`.
* :class:`RemoteModel` — the program is an *existing simulator* in another
  process (our stand-in for Sherpa), controlled over the PPX protocol; the
  PPL never imports or modifies the simulator.

Both produce :class:`repro.trace.Trace` objects through the same controller
interface, so every inference engine works with either.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional

import numpy as np

from repro.common.rng import RandomState, get_rng
from repro.distributions import distribution_from_dict
from repro.ppl.state import (
    Controller,
    ExecutionState,
    PriorController,
    pop_state,
    push_state,
)
from repro.ppx.server import SimulatorController
from repro.ppx.transport import Transport
from repro.trace.trace import Trace

__all__ = ["Model", "FunctionModel", "RemoteModel"]


class Model:
    """Base class for local probabilistic programs.

    Subclasses override :meth:`forward`, which expresses the generative
    process with :func:`repro.ppl.sample` / :func:`repro.ppl.observe` calls
    and returns an arbitrary result object.
    """

    def __init__(self, name: str = "model") -> None:
        self.name = name

    # ----------------------------------------------------------------- program
    def forward(self) -> Any:  # pragma: no cover - abstract
        raise NotImplementedError

    # ------------------------------------------------------------------ traces
    def get_trace(
        self,
        controller: Optional[Controller] = None,
        observed_values: Optional[Dict[str, Any]] = None,
        rng: Optional[RandomState] = None,
    ) -> Trace:
        """Execute the program once under ``controller`` and return its trace."""
        state = ExecutionState(
            controller=controller or PriorController(),
            rng=rng or get_rng(),
            observed_values=observed_values,
        )
        push_state(state)
        try:
            __ppl_model_entry__ = True  # noqa: F841 - stack marker for address building
            result = self.forward()
        finally:
            pop_state()
        trace = state.finalize(result=result)
        trace.log_q = state.log_q  # type: ignore[attr-defined]
        return trace

    def prior_trace(self, rng: Optional[RandomState] = None) -> Trace:
        """One forward execution with all latents drawn from the prior."""
        return self.get_trace(PriorController(), rng=rng)

    def prior_traces(self, num_traces: int, rng: Optional[RandomState] = None) -> List[Trace]:
        """A list of independent prior executions (training data for IC)."""
        rng = rng or get_rng()
        return [self.prior_trace(rng) for _ in range(num_traces)]

    # --------------------------------------------------------------- inference
    def posterior(
        self,
        observation: Dict[str, Any],
        num_traces: int = 1000,
        engine: str = "importance_sampling",
        rng: Optional[RandomState] = None,
        **engine_kwargs,
    ):
        """Convenience dispatcher to the inference engines.

        ``engine`` is one of ``"importance_sampling"``, ``"random_walk_metropolis"``
        (aliases ``"rmh"``, ``"lightweight_metropolis_hastings"``, ``"lmh"``), or an
        :class:`repro.ppl.inference.inference_compilation.InferenceCompilation`
        instance for amortized IC inference.
        """
        from repro.ppl.inference import importance_sampling, random_walk_metropolis
        from repro.ppl.inference.inference_compilation import InferenceCompilation

        if isinstance(engine, InferenceCompilation):
            return engine.posterior(self, observation, num_traces=num_traces, rng=rng, **engine_kwargs)
        if engine == "importance_sampling":
            return importance_sampling.importance_sampling(
                self, observation, num_traces=num_traces, rng=rng, **engine_kwargs
            )
        if engine in ("random_walk_metropolis", "rmh", "lightweight_metropolis_hastings", "lmh"):
            kernel = "prior" if engine in ("lightweight_metropolis_hastings", "lmh") else "random_walk"
            engine_kwargs.setdefault("kernel", kernel)
            sampler = random_walk_metropolis.RandomWalkMetropolis(self, observation, **engine_kwargs)
            return sampler.run(num_traces, rng=rng)
        raise ValueError(f"unknown inference engine {engine!r}")


class FunctionModel(Model):
    """Wrap a plain generative function ``fn(*args, **kwargs)`` as a model."""

    def __init__(self, fn: Callable[..., Any], name: Optional[str] = None, args: tuple = (), kwargs: Optional[dict] = None) -> None:
        super().__init__(name=name or fn.__name__)
        self.fn = fn
        self.args = args
        self.kwargs = kwargs or {}

    def forward(self) -> Any:
        return self.fn(*self.args, **self.kwargs)


class RemoteModel(Model):
    """A model implemented by an external simulator controlled over PPX.

    The remote simulator calls ``client.sample`` / ``client.observe`` on its
    side of the protocol; this class translates the controller interface used
    by the inference engines into PPX message exchanges.

    Notes
    -----
    The observation override works differently from local models: remote
    simulators report the value they generated at each observe statement, and
    the controller swaps in the conditioned value (keyed by observe ``name``)
    when scoring the likelihood.
    """

    def __init__(
        self,
        transport: Transport,
        name: str = "remote-model",
        run_timeout: Optional[float] = None,
    ) -> None:
        super().__init__(name=name)
        self.controller = SimulatorController(transport)
        #: bound on every wait for a simulator reply; None blocks indefinitely
        self.run_timeout = run_timeout

    def forward(self) -> Any:  # pragma: no cover - remote models never run locally
        raise RuntimeError("RemoteModel executes in the simulator process, not locally")

    def get_trace(
        self,
        controller: Optional[Controller] = None,
        observed_values: Optional[Dict[str, Any]] = None,
        rng: Optional[RandomState] = None,
    ) -> Trace:
        controller = controller or PriorController()
        rng = rng or get_rng()
        observed_values = observed_values or {}
        # Track per-address occurrence counts so the policy sees instances.
        counts: Dict[str, int] = {}
        log_q_total = {"value": 0.0}

        def sample_policy(address, distribution, request):
            # Every draw advances the per-address instance counter (the trace
            # records all of them), but uncontrolled (control=False) draws
            # never reach the controller — mirror the local ExecutionState:
            # draw from the prior and accumulate its density so the matching
            # prior term in log_joint cancels out of importance weights.
            instance = counts.get(address, 0)
            counts[address] = instance + 1
            if not getattr(request, "control", True):
                value = distribution.sample(rng)
                log_q_total["value"] += float(np.sum(distribution.log_prob(value)))
                return value
            value, log_q = controller.choose(address, instance, distribution, request.name, rng)
            log_q_total["value"] += log_q
            return value

        # Figure out the likelihood override: a single observed value applies
        # to the simulator's (single) observe statement; a dict is keyed by name.
        observe_override = None
        if observed_values:
            if len(observed_values) == 1:
                observe_override = next(iter(observed_values.values()))
            else:
                raise NotImplementedError(
                    "RemoteModel currently supports conditioning on a single observe statement"
                )
        trace = self.controller.run_trace(
            sample_policy=sample_policy,
            observation=None,
            observe_override=observe_override,
            timeout=self.run_timeout,
        )
        # Normalise trace.observation to the same dict form local models use.
        observation: Dict[str, Any] = {}
        for sample_record in trace.observes:
            key = sample_record.name if sample_record.name is not None else sample_record.address
            observation[key] = sample_record.value
        trace.observation = observation
        trace.log_q = log_q_total["value"]  # type: ignore[attr-defined]
        return trace

    def shutdown(self) -> None:
        """Terminate the remote simulator."""
        self.controller.shutdown()
