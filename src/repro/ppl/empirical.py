"""Empirical distributions over execution traces.

Every inference engine returns its posterior approximation as an
:class:`Empirical`: a collection of traces (or derived values) with associated
log-weights.  RMH produces unweighted (equally-weighted) samples; IS and IC
produce importance-weighted samples.  The class provides the summaries used by
Figure 8 (histograms of selected latent variables), the effective-sample-size
measure discussed in Section 6.4, and resampling utilities.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np
from scipy.special import logsumexp

from repro.common.rng import RandomState, get_rng
from repro.common.utils import weighted_quantile
from repro.trace.trace import Trace

__all__ = ["Empirical"]


class Empirical:
    """A weighted empirical distribution over arbitrary values (usually traces)."""

    def __init__(
        self,
        values: Sequence[Any],
        log_weights: Optional[Sequence[float]] = None,
        name: str = "posterior",
    ) -> None:
        self.values: List[Any] = list(values)
        if log_weights is None:
            log_weights_arr = np.zeros(len(self.values))
        else:
            log_weights_arr = np.asarray(log_weights, dtype=float)
        if len(self.values) != log_weights_arr.shape[0]:
            raise ValueError("values and log_weights must have the same length")
        if len(self.values) == 0:
            raise ValueError("an Empirical distribution needs at least one value")
        self.log_weights = log_weights_arr
        self.name = name

    # --------------------------------------------------------------- weights
    @property
    def normalized_weights(self) -> np.ndarray:
        finite = np.where(np.isfinite(self.log_weights), self.log_weights, -np.inf)
        if np.all(~np.isfinite(finite)):
            # All weights are zero: fall back to uniform to stay usable.
            return np.full(len(self.values), 1.0 / len(self.values))
        log_norm = logsumexp(finite)
        return np.exp(finite - log_norm)

    @property
    def log_evidence(self) -> float:
        """log(1/N sum w_i): the IS estimate of the marginal likelihood p(y)."""
        return float(logsumexp(self.log_weights) - np.log(len(self.values)))

    def effective_sample_size(self) -> float:
        """Kish effective sample size of the importance weights."""
        w = self.normalized_weights
        return float(1.0 / np.sum(w**2))

    def __len__(self) -> int:
        return len(self.values)

    # ------------------------------------------------------------ projections
    def map_values(self, fn: Callable[[Any], Any]) -> "Empirical":
        """Apply ``fn`` to every value (e.g. extract one latent from each trace)."""
        return Empirical([fn(v) for v in self.values], self.log_weights, name=self.name)

    def extract(self, name: str) -> "Empirical":
        """Project traces onto the named latent variable (drops traces lacking it)."""
        values = []
        log_weights = []
        for value, log_weight in zip(self.values, self.log_weights):
            if isinstance(value, Trace):
                extracted = value.get(name, None)
                if extracted is None:
                    continue
                values.append(extracted)
                log_weights.append(log_weight)
        if not values:
            raise KeyError(f"no trace in this Empirical has a sample named {name!r}")
        return Empirical(values, log_weights, name=f"{self.name}.{name}")

    def _numeric(self) -> np.ndarray:
        return np.asarray([float(np.asarray(v, dtype=float).reshape(-1)[0]) for v in self.values])

    # --------------------------------------------------------------- summaries
    @property
    def mean(self) -> float:
        values = self._numeric()
        return float(np.sum(values * self.normalized_weights))

    @property
    def variance(self) -> float:
        values = self._numeric()
        mean = self.mean
        return float(np.sum(self.normalized_weights * (values - mean) ** 2))

    @property
    def stddev(self) -> float:
        return float(np.sqrt(self.variance))

    def quantile(self, q: Union[float, Sequence[float]]):
        values = self._numeric()
        result = weighted_quantile(values, q, self.normalized_weights)
        return float(result[0]) if np.isscalar(q) else result

    def mode(self):
        """The value with the largest weight (MAP over the empirical support)."""
        index = int(np.argmax(self.log_weights))
        return self.values[index]

    def histogram(self, bins: int = 20, range_: Optional[Tuple[float, float]] = None) -> Tuple[np.ndarray, np.ndarray]:
        """Weighted histogram: returns (densities, bin_edges)."""
        values = self._numeric()
        return np.histogram(values, bins=bins, range=range_, weights=self.normalized_weights, density=True)

    def categorical_probabilities(self) -> Dict[Any, float]:
        """Weighted probabilities of discrete values (e.g. the decay channel)."""
        probs: Dict[Any, float] = {}
        for value, weight in zip(self.values, self.normalized_weights):
            key = int(np.asarray(value).reshape(-1)[0]) if not isinstance(value, (str, bool)) else value
            probs[key] = probs.get(key, 0.0) + float(weight)
        return probs

    # --------------------------------------------------------------- resampling
    def resample(self, num_samples: Optional[int] = None, rng: Optional[RandomState] = None) -> "Empirical":
        """Systematic-style multinomial resampling to equal weights."""
        rng = rng or get_rng()
        count = num_samples or len(self.values)
        indices = rng.generator.choice(len(self.values), size=count, p=self.normalized_weights)
        return Empirical([self.values[i] for i in indices], None, name=self.name)

    def unweighted_values(self) -> List[Any]:
        return list(self.values)

    # ----------------------------------------------------------------- algebra
    @staticmethod
    def combine(empiricals: Sequence["Empirical"], name: str = "combined") -> "Empirical":
        """Concatenate several empirical distributions (e.g. per-rank IC results)."""
        if not empiricals:
            raise ValueError("need at least one Empirical to combine")
        values: List[Any] = []
        log_weights: List[float] = []
        for emp in empiricals:
            values.extend(emp.values)
            log_weights.extend(emp.log_weights.tolist())
        return Empirical(values, log_weights, name=name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Empirical(name={self.name!r}, size={len(self)}, ess={self.effective_sample_size():.1f})"
