"""Empirical distributions over execution traces.

Every inference engine returns its posterior approximation as an
:class:`Empirical`: a collection of traces (or derived values) with associated
log-weights.  RMH produces unweighted (equally-weighted) samples; IS and IC
produce importance-weighted samples.  The class provides the summaries used by
Figure 8 (histograms of selected latent variables), the effective-sample-size
measure discussed in Section 6.4, and resampling utilities.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np
from scipy.special import logsumexp

from repro.common.rng import RandomState, get_rng
from repro.common.utils import weighted_quantile
from repro.trace.trace import Trace

__all__ = ["Empirical", "FrozenPosterior"]


class Empirical:
    """A weighted empirical distribution over arbitrary values (usually traces)."""

    def __init__(
        self,
        values: Sequence[Any],
        log_weights: Optional[Sequence[float]] = None,
        name: str = "posterior",
    ) -> None:
        self.values: List[Any] = list(values)
        if log_weights is None:
            log_weights_arr = np.zeros(len(self.values))
        else:
            log_weights_arr = np.array(log_weights, dtype=float)
        if len(self.values) != log_weights_arr.shape[0]:
            raise ValueError("values and log_weights must have the same length")
        if len(self.values) == 0:
            raise ValueError("an Empirical distribution needs at least one value")
        # Summaries are cached, so the weights they derive from must not change
        # underneath them: freeze our (private copy of the) weights array so an
        # in-place edit raises instead of silently staling the caches.
        log_weights_arr.setflags(write=False)
        self.log_weights = log_weights_arr
        self.name = name
        # Summaries (mean/variance/quantile/histogram/...) all need the
        # numeric projection and the normalized weights; both are cached so a
        # battery of summaries over a large posterior pays the O(N) conversion
        # once.  Instances are treated as immutable after construction.
        self._numeric_cache: Optional[np.ndarray] = None
        self._normalized_cache: Optional[np.ndarray] = None

    # --------------------------------------------------------------- weights
    @property
    def normalized_weights(self) -> np.ndarray:
        if self._normalized_cache is None:
            finite = np.where(np.isfinite(self.log_weights), self.log_weights, -np.inf)
            if np.all(~np.isfinite(finite)):
                # All weights are zero: fall back to uniform to stay usable.
                cache = np.full(len(self.values), 1.0 / len(self.values))
            else:
                log_norm = logsumexp(finite)
                cache = np.exp(finite - log_norm)
            # The cache is shared across summaries; freeze it so an in-place
            # edit by a caller raises instead of silently corrupting them.
            cache.setflags(write=False)
            self._normalized_cache = cache
        return self._normalized_cache

    @property
    def log_evidence(self) -> float:
        """log(1/N sum w_i): the IS estimate of the marginal likelihood p(y)."""
        return float(logsumexp(self.log_weights) - np.log(len(self.values)))

    def effective_sample_size(self) -> float:
        """Kish effective sample size of the importance weights."""
        w = self.normalized_weights
        return float(1.0 / np.sum(w**2))

    def __len__(self) -> int:
        return len(self.values)

    # ------------------------------------------------------------ projections
    def map_values(self, fn: Callable[[Any], Any]) -> "Empirical":
        """Apply ``fn`` to every value (e.g. extract one latent from each trace)."""
        return Empirical([fn(v) for v in self.values], self.log_weights, name=self.name)

    def extract(self, name: str) -> "Empirical":
        """Project traces onto the named latent variable (drops traces lacking it)."""
        values = []
        log_weights = []
        for value, log_weight in zip(self.values, self.log_weights):
            if isinstance(value, Trace):
                extracted = value.get(name, None)
                if extracted is None:
                    continue
                values.append(extracted)
                log_weights.append(log_weight)
        if not values:
            raise KeyError(f"no trace in this Empirical has a sample named {name!r}")
        return Empirical(values, log_weights, name=f"{self.name}.{name}")

    def _numeric(self) -> np.ndarray:
        """Scalar projection of the values feeding mean/variance/quantile/histogram.

        Multi-element values are refused: the old ``reshape(-1)[0]`` silently
        summarised only the first coordinate of a vector latent as if it were
        the whole value.  Project explicitly instead, e.g.
        ``posterior.map_values(lambda v: v[2]).mean``.
        """
        if self._numeric_cache is None:
            cache = np.empty(len(self.values))
            for index, value in enumerate(self.values):
                arr = np.asarray(value, dtype=float)
                if arr.size != 1:
                    raise ValueError(
                        f"cannot form a scalar summary of {self.name!r}: value at index "
                        f"{index} has shape {arr.shape} ({arr.size} elements); summaries "
                        "like mean/variance/quantile/histogram need scalar values — "
                        "project one coordinate first, e.g. "
                        ".map_values(lambda v: np.asarray(v).reshape(-1)[i])"
                    )
                cache[index] = float(arr.reshape(()))
            cache.setflags(write=False)
            self._numeric_cache = cache
        return self._numeric_cache

    # --------------------------------------------------------------- summaries
    @property
    def mean(self) -> float:
        values = self._numeric()
        return float(np.sum(values * self.normalized_weights))

    @property
    def variance(self) -> float:
        values = self._numeric()
        mean = self.mean
        return float(np.sum(self.normalized_weights * (values - mean) ** 2))

    @property
    def stddev(self) -> float:
        return float(np.sqrt(self.variance))

    def quantile(self, q: Union[float, Sequence[float]]):
        values = self._numeric()
        result = weighted_quantile(values, q, self.normalized_weights)
        return float(result[0]) if np.isscalar(q) else result

    def mode(self):
        """The value with the largest *total* weight (MAP over the empirical support).

        Duplicate values — resampled empiricals, discrete latents — have
        their weights aggregated per unique value before the argmax, so the
        MAP reflects total probability mass, not the single heaviest trace.
        Values that cannot be keyed (multi-element arrays) aggregate by
        identity, which still collapses the duplicates that resampling
        introduces.
        """
        weights = self.normalized_weights
        totals: Dict[Any, float] = {}
        representatives: Dict[Any, Any] = {}
        for value, weight in zip(self.values, weights):
            if isinstance(value, (str, bool)):
                key: Any = value
            else:
                try:
                    key = np.asarray(value).item()
                except (TypeError, ValueError):
                    key = id(value)
                else:
                    try:
                        hash(key)
                    except TypeError:
                        # item() handed back an unhashable object (dict, list):
                        # aggregate by identity, as for multi-element arrays.
                        key = id(value)
            if key not in totals:
                totals[key] = 0.0
                representatives[key] = value
            totals[key] += float(weight)
        best = max(totals, key=totals.__getitem__)
        return representatives[best]

    def histogram(self, bins: int = 20, range_: Optional[Tuple[float, float]] = None) -> Tuple[np.ndarray, np.ndarray]:
        """Weighted histogram: returns (densities, bin_edges)."""
        values = self._numeric()
        return np.histogram(values, bins=bins, range=range_, weights=self.normalized_weights, density=True)

    def categorical_probabilities(self) -> Dict[Any, float]:
        """Weighted probabilities of discrete values (e.g. the decay channel)."""
        probs: Dict[Any, float] = {}
        for value, weight in zip(self.values, self.normalized_weights):
            key = int(np.asarray(value).reshape(-1)[0]) if not isinstance(value, (str, bool)) else value
            probs[key] = probs.get(key, 0.0) + float(weight)
        return probs

    # --------------------------------------------------------------- resampling
    def resample(self, num_samples: Optional[int] = None, rng: Optional[RandomState] = None) -> "Empirical":
        """Systematic-style multinomial resampling to equal weights."""
        rng = rng or get_rng()
        count = num_samples or len(self.values)
        indices = rng.generator.choice(len(self.values), size=count, p=self.normalized_weights)
        return Empirical([self.values[i] for i in indices], None, name=self.name)

    def unweighted_values(self) -> List[Any]:
        return list(self.values)

    # ----------------------------------------------------------------- freezing
    def freeze(self, latents: Optional[Sequence[str]] = None) -> "FrozenPosterior":
        """A trace-free, cache-safe summary of this posterior.

        The serving layer's posterior cache must hand the same result object
        to many concurrent clients and keep it resident for the cache TTL, so
        the full traces (which hold distributions, simulator results and large
        observations) are dropped: each named latent is projected onto a
        weighted marginal :class:`Empirical` of its values, which supports the
        same summaries (mean/variance/quantile/histogram/ESS) at a fraction
        of the memory, and pickles cleanly.

        ``latents`` selects which named latents to keep; ``None`` keeps every
        name that appears in the traces.  Non-trace empiricals freeze to a
        single ``"value"`` marginal.
        """
        marginals: Dict[str, Empirical] = {}
        if self.values and isinstance(self.values[0], Trace):
            if latents is None:
                seen: List[str] = []
                for trace in self.values:
                    for sample in trace.samples:
                        if sample.name is not None and sample.name not in seen:
                            seen.append(sample.name)
                latents = seen
            for name in latents:
                marginals[name] = self.extract(name)
        else:
            marginals["value"] = Empirical(list(self.values), self.log_weights, name=self.name)
        return FrozenPosterior(
            marginals=marginals,
            log_evidence=self.log_evidence,
            effective_sample_size=self.effective_sample_size(),
            size=len(self),
            name=self.name,
            engine_stats=dict(getattr(self, "engine_stats", {}) or {}),
        )

    # ----------------------------------------------------------------- algebra
    @staticmethod
    def combine(empiricals: Sequence["Empirical"], name: str = "combined") -> "Empirical":
        """Concatenate several empirical distributions (e.g. per-rank IC results)."""
        if not empiricals:
            raise ValueError("need at least one Empirical to combine")
        values: List[Any] = []
        log_weights: List[float] = []
        for emp in empiricals:
            values.extend(emp.values)
            log_weights.extend(emp.log_weights.tolist())
        return Empirical(values, log_weights, name=name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Empirical(name={self.name!r}, size={len(self)}, ess={self.effective_sample_size():.1f})"


class FrozenPosterior:
    """An immutable, trace-free posterior summary (see :meth:`Empirical.freeze`).

    Holds one weighted marginal :class:`Empirical` per named latent plus the
    scalar summaries of the source posterior.  Supports the read-side subset
    of the :class:`Empirical` API (:meth:`extract`, ``len``, ``log_evidence``,
    ``effective_sample_size``), so cached serving responses can be consumed by
    the same client code that handles fresh ones.
    """

    def __init__(
        self,
        marginals: Dict[str, "Empirical"],
        log_evidence: float,
        effective_sample_size: float,
        size: int,
        name: str,
        engine_stats: Optional[Dict[str, int]] = None,
    ) -> None:
        self._marginals = dict(marginals)
        self.log_evidence = float(log_evidence)
        self._ess = float(effective_sample_size)
        self._size = int(size)
        self.name = name
        self.engine_stats = dict(engine_stats or {})
        self.frozen = True

    @property
    def latent_names(self) -> List[str]:
        return list(self._marginals)

    def extract(self, name: str) -> "Empirical":
        """The weighted marginal over the named latent."""
        try:
            return self._marginals[name]
        except KeyError:
            raise KeyError(
                f"latent {name!r} was not retained in this frozen posterior "
                f"(available: {sorted(self._marginals)})"
            ) from None

    def effective_sample_size(self) -> float:
        return self._ess

    def __len__(self) -> int:
        return self._size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FrozenPosterior(name={self.name!r}, size={self._size}, "
            f"latents={sorted(self._marginals)})"
        )
