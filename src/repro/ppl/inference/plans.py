"""Compiled trace-type execution plans: the lockstep engine's plan cache.

The paper's premise is that inference compilation amortises work across many
executions of the same simulator — yet the dynamic lockstep path re-discovers
each cohort's address schedule round by round, re-derives
:class:`~repro.distributions.geometry.PriorGeometry` per proposal step, and
re-allocates every ``(B, K)`` parameter array per request, even though
``Trace.trace_type`` is cached and serving traffic concentrates on a few hot
trace types.  This module applies the TensorRT-runtime playbook (plan cache,
dynamic-shape bucketing, pre-allocated outputs) to guided execution:

* :func:`compile_plan` turns one observed trace type into an immutable
  :class:`EnginePlan` — the address order, per-step precompiled geometry /
  smoothing vectors / address-embedding rows, and the shape information the
  scratch buffers are sized from.
* :class:`PlanScratch` pre-allocates the ``(B_max, ...)`` buffers a planned
  cohort writes into (LSTM input, batched-distribution parameters via the
  ``build_into`` constructors of :mod:`repro.distributions.batched`), reused
  across cohorts instead of reallocated per step.
* :class:`PlanCache` owns the compiled plans at runtime: cohort sizes are
  rounded up to a small set of **bucket sizes** so a B=3 request is served by
  the B=4 plan (prefix rows) rather than compiling per-B; plans are
  invalidated wholesale when ``InferenceNetwork.version`` changes (wired
  through the same update listeners as the serving ``PosteriorCache``); and
  repeated mid-cohort divergences **demote** a trace type back to the dynamic
  path (a branchy model is not plannable).
* :class:`PlannedProposalSession` executes a cohort against a plan: while the
  cohort conforms, each round is one slot-ordered batched step with no
  per-round grouping, gather/scatter, or geometry derivation, and the round's
  proposal values are drawn driver-side in one ``sample_rows`` pass over the
  workers' own rng states.  The first non-conforming round falls back to the
  dynamic grouped path of the parent class mid-cohort.

**Equivalence gate.** The planned path is bit-identical to the dynamic path —
samples, log-weights and generator states — because every shortcut reuses the
exact expression it shortcuts: compiled geometry is
:func:`~repro.distributions.geometry.prior_geometry` of priors validated
exactly equal (:func:`~repro.distributions.geometry.prior_signature`), the
``build_into`` constructors mirror the batched ``__init__`` op-for-op, the
LSTM/embedding math is row-independent so slot order and full-batch stepping
change nothing, and ``sample_rows`` consumes each worker's rng exactly as the
worker's own ``row(i).sample`` would.

``EnginePlan``/``PlanStep`` are frozen and must never be mutated outside this
module — enforced by ``repro.analysis``'s plan-mutation checker.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.distributions import Categorical
from repro.distributions.batched import (
    BatchedCategorical,
    BatchedMixtureOfTruncatedNormals,
    CategoricalScratch,
    MixtureScratch,
)
from repro.distributions.geometry import PriorGeometry, prior_geometry, prior_signature
from repro.ppl.nn.embeddings import SampleEmbedding
from repro.ppl.nn.inference_network import BatchedProposalSession, InferenceNetwork
from repro.ppl.nn.proposals import ProposalCategorical, ProposalNormalMixture
from repro.tensor import functional as F
from repro.tensor import no_grad
from repro.tensor.tensor import Tensor

__all__ = [
    "DEFAULT_BUCKET_SIZES",
    "EnginePlan",
    "PlanCache",
    "PlanScratch",
    "PlanStep",
    "PlannedProposal",
    "PlannedProposalSession",
    "bucket_size_for",
    "compile_plan",
]

#: Cohort sizes plans are compiled at: a cohort of B leases the plan of the
#: smallest bucket >= B and uses its buffers' first B rows.  Above the top
#: bucket, sizes round up to the next multiple of it.
DEFAULT_BUCKET_SIZES: Tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64)


def bucket_size_for(batch_size: int, buckets: Sequence[int] = DEFAULT_BUCKET_SIZES) -> int:
    """Round a cohort size up to its plan bucket."""
    for bucket in buckets:
        if batch_size <= bucket:
            return int(bucket)
    top = int(buckets[-1])
    return ((int(batch_size) + top - 1) // top) * top


class PlannedProposal:
    """One slot's precomputed proposal answer (value + log-density).

    A planned round draws all B values driver-side in one ``sample_rows``
    pass over the very rng objects the blocked workers own (race-free: every
    worker is parked on its event while the driver answers the round, and the
    batched distributions' row-equivalence contract makes the stream
    consumption bit-identical to per-worker sampling) and scores them with
    one ``log_prob_rows`` pass.  Workers then consume this stub through the
    same ``sample(rng)`` / ``log_prob(value)`` duck type as any proposal:
    ``sample`` returns the stored value without touching the stream (the
    driver already consumed it), ``log_prob`` the stored density.  The stub
    itself is never recorded in the trace — ``ExecutionState.do_sample``
    stores the *prior* — so it carries no pickling or lifetime concerns.
    """

    __slots__ = ("value", "log_q")

    def __init__(self, value, log_q) -> None:
        self.value = value
        self.log_q = log_q

    def sample(self, rng=None, size=None):
        return self.value

    def log_prob(self, value):
        return self.log_q


@dataclass(frozen=True)
class PlanStep:
    """One controlled draw of a compiled trace type.

    Frozen — plan steps are shared across cohorts and threads and must never
    be mutated after compilation (see the module docstring).
    """

    address: str
    #: the network has layers for this address; False = prior-fallback step
    known: bool
    #: proposal family: "mixture" | "categorical" | "fallback"
    kind: str
    #: exact prior fingerprint when every observed trace agreed (static step);
    #: None = dynamic priors, re-derive geometry per round
    signature: Optional[Tuple]
    #: exemplar prior object (static steps only; drives batched value encoding)
    prior: Optional[Any]
    #: precompiled (bucket,) geometry rows (static mixture steps only)
    geometry: Optional[PriorGeometry]
    #: precomputed ``0.01 * prior.probs`` (static categorical steps only)
    smooth_probs: Optional[np.ndarray]
    #: precomputed (bucket, addr_dim) address-embedding rows (known steps)
    addr_rows: Optional[np.ndarray]
    #: K (mixture components / categories) — sizes the step's scratch
    num_components: int
    #: the previous step advanced the LSTM and owns a sample embedding
    prev_known: bool
    prev_address: Optional[str]
    #: exemplar prior of the previous step (set when it was static)
    prev_prior: Optional[Any]
    prev_static: bool


@dataclass(frozen=True)
class EnginePlan:
    """Immutable compiled execution plan of one (trace type, bucket).

    Compiled once per :class:`PlanCache` entry and shared by every cohort the
    cache serves; all mutable per-cohort state lives in the leased
    :class:`PlanScratch` and the session.  Never mutate a plan outside
    ``plans.py`` — ``repro.analysis`` flags such writes.
    """

    trace_type: str
    bucket_size: int
    network_version: int
    lstm_input_dim: int
    sample_dim: int
    steps: Tuple[PlanStep, ...]

    @property
    def num_steps(self) -> int:
        return len(self.steps)


class PlanScratch:
    """Pre-allocated per-cohort buffers of one plan (leased, never shared).

    One scratch hosts one executing cohort at a time: the cache pools a few
    per plan so concurrent shards each lease their own.  Buffers are sized at
    the plan's bucket and served to smaller cohorts as row prefixes.
    """

    def __init__(self, plan: EnginePlan) -> None:
        bucket = plan.bucket_size
        self.plan = plan
        self.lstm_input = np.empty((bucket, plan.lstm_input_dim))
        #: all-zero previous-sample embedding input (read-only by convention)
        self.zero_prev = np.zeros((bucket, plan.sample_dim))
        self.mixture: Dict[int, MixtureScratch] = {}
        self.categorical: Dict[int, CategoricalScratch] = {}
        for index, step in enumerate(plan.steps):
            if step.signature is None:
                continue
            if step.kind == "mixture":
                self.mixture[index] = MixtureScratch(bucket, step.num_components)
            elif step.kind == "categorical":
                self.categorical[index] = CategoricalScratch(bucket, step.num_components)


def _step_kind(layer) -> Optional[str]:
    if isinstance(layer, ProposalNormalMixture):
        return "mixture"
    if isinstance(layer, ProposalCategorical):
        return "categorical"
    return None


def compile_plan(
    network: InferenceNetwork,
    trace_type: str,
    exemplar: Sequence[Tuple[str, Any]],
    static_flags: Sequence[bool],
    bucket: int,
) -> Optional[EnginePlan]:
    """Compile one (trace type, bucket) into an immutable :class:`EnginePlan`.

    ``exemplar`` holds the ``(address, prior)`` controlled draws of one
    observed trace of the type; ``static_flags[i]`` is True when every
    observed trace carried an exactly-equal prior at step ``i`` (so its
    geometry / smoothing can be precompiled — still validated per round).
    Returns ``None`` when the type is not plannable: an address is handled by
    a custom proposal-layer family the planner has no emission fast path for.
    """
    steps: List[PlanStep] = []
    prev_known = False
    prev_address: Optional[str] = None
    prev_prior: Optional[Any] = None
    prev_static = False
    with no_grad():
        for index, (address, prior) in enumerate(exemplar):
            known = address in network.proposal_layers
            kind = "fallback"
            signature: Optional[Tuple] = None
            geometry: Optional[PriorGeometry] = None
            smooth_probs: Optional[np.ndarray] = None
            addr_rows: Optional[np.ndarray] = None
            num_components = 0
            if known:
                layer = network.proposal_layers[address]
                maybe_kind = _step_kind(layer)
                if maybe_kind is None:
                    return None
                kind = maybe_kind
                signature = prior_signature(prior) if static_flags[index] else None
                # Rows of an AddressEmbedding forward are replicas of one
                # learned vector, so the bucket-size precompute's first B rows
                # are exactly the dynamic path's size-B forward.
                addr_rows = network.address_embeddings[address](bucket).data
                if kind == "mixture":
                    num_components = layer.num_components
                    if signature is not None:
                        # Bitwise equal to deriving from the round's actual
                        # priors, because the signature match is exact.
                        geometry = prior_geometry([prior] * bucket)
                else:
                    num_components = layer.num_categories
                    if signature is not None and isinstance(prior, Categorical):
                        smooth_probs = 0.01 * prior.probs
                    else:
                        # Prior smoothing needs a Categorical prior; anything
                        # else goes through the dynamic emission per round.
                        signature = None
            steps.append(
                PlanStep(
                    address=address,
                    known=known,
                    kind=kind,
                    signature=signature,
                    prior=prior if signature is not None else None,
                    geometry=geometry,
                    smooth_probs=smooth_probs,
                    addr_rows=addr_rows,
                    num_components=num_components,
                    prev_known=prev_known,
                    prev_address=prev_address,
                    prev_prior=prev_prior if prev_static else None,
                    prev_static=prev_static,
                )
            )
            if known:
                # Mirrors the dynamic sessions: a known step records itself
                # as the previous step; a fallback resets the tracking.
                prev_known = address in network.sample_embeddings
                prev_address = address
                prev_prior = prior
                prev_static = bool(static_flags[index])
            else:
                prev_known = False
                prev_address = None
                prev_prior = None
                prev_static = False
    return EnginePlan(
        trace_type=trace_type,
        bucket_size=int(bucket),
        network_version=network.version,
        lstm_input_dim=network.obs_dim + network.address_dim + network.sample_dim,
        sample_dim=network.sample_dim,
        steps=tuple(steps),
    )


class _TraceTypeRecord:
    """Mutable per-trace-type bookkeeping inside the cache lock."""

    __slots__ = (
        "trace_type",
        "traces",
        "cohorts",
        "last_seen",
        "exemplar",
        "exemplar_sigs",
        "static_flags",
        "compilable",
        "divergences",
        "demoted",
        "plans",
    )

    def __init__(self, trace_type: str) -> None:
        self.trace_type = trace_type
        self.traces = 0
        self.cohorts = 0
        self.last_seen = 0
        self.exemplar: Optional[List[Tuple[str, Any]]] = None
        self.exemplar_sigs: Optional[List[Optional[Tuple]]] = None
        self.static_flags: Optional[List[bool]] = None
        self.compilable: Optional[bool] = None
        self.divergences = 0
        self.demoted = False
        self.plans: Dict[int, EnginePlan] = {}


class PlanCache:
    """Runtime cache of compiled execution plans, shared engine-to-serving.

    Thread-safe (thread-pool serving shards lease concurrently).  Lifecycle:

    1. **observe** — completed cohorts report their traces; the cache counts
       trace types, keeps an exemplar address/prior schedule per type, and
       refines per-step *static* flags (a step stays static while every
       observed prior matches exactly).
    2. **lease** — before a cohort runs, the engine asks for a plan at the
       cohort's bucket size.  A type observed at least ``hot_after`` cohorts
       is eligible; its plan is compiled on first lease per bucket and reused
       after.  Misses (cold cache, demoted/uncompilable types) return ``None``
       and the cohort runs the dynamic path.
    3. **divergence/demotion** — a planned cohort that stops conforming
       mid-plan falls back dynamically and reports where; ``demote_after``
       such mid-plan divergences demote the type (branchy model).  Divergence
       at step 0 is a mispredicted lease (different trace type), never
       demotes.
    4. **invalidate** — everything is dropped when the network retrains
       (``InferenceNetwork.version`` is checked at every lease/observe, and
       the serving layer also invalidates eagerly via update listeners).
    """

    def __init__(
        self,
        hot_after: int = 1,
        demote_after: int = 3,
        bucket_sizes: Sequence[int] = DEFAULT_BUCKET_SIZES,
        max_trace_types: int = 64,
        max_pool: int = 8,
    ) -> None:
        self._lock = threading.Lock()
        self._records: Dict[str, _TraceTypeRecord] = {}
        self._pools: Dict[Tuple[str, int], List[PlanScratch]] = {}
        self.hot_after = int(hot_after)
        self.demote_after = int(demote_after)
        self.bucket_sizes = tuple(int(b) for b in bucket_sizes)
        self.max_trace_types = int(max_trace_types)
        self.max_pool = int(max_pool)
        self._version_seen: Optional[int] = None
        self._clock = 0
        self.hits = 0
        self.misses = 0
        self.compiles = 0
        self.demotions = 0
        self.divergences = 0
        self.invalidations = 0

    # ------------------------------------------------------------ invalidation
    def invalidate(self) -> None:
        """Drop every record and compiled plan (network parameters changed)."""
        with self._lock:
            self._drop_all()

    def _drop_all(self) -> None:
        self._records.clear()
        self._pools.clear()
        self.invalidations += 1

    def _sync_version(self, network) -> None:
        version = getattr(network, "version", None)
        if version != self._version_seen:
            if self._version_seen is not None and self._records:
                self._drop_all()
            self._version_seen = version

    # ------------------------------------------------------------- observation
    def observe_traces(self, traces: Sequence[Any], network) -> None:
        """Record a completed cohort's traces (counts, exemplars, static flags)."""
        if network is None or not traces:
            return
        with self._lock:
            self._sync_version(network)
            self._clock += 1
            by_type: Dict[str, List[Any]] = {}
            for trace in traces:
                by_type.setdefault(trace.trace_type, []).append(trace)
            for trace_type, group in by_type.items():
                record = self._records.get(trace_type)
                if record is None:
                    if len(self._records) >= self.max_trace_types:
                        self._evict_coldest()
                    record = _TraceTypeRecord(trace_type)
                    self._records[trace_type] = record
                record.traces += len(group)
                record.cohorts += 1
                record.last_seen = self._clock
                if record.demoted or record.compilable is False or record.plans:
                    # Counting is enough: demoted/uncompilable types stay
                    # dynamic, and static flags freeze once a plan compiled
                    # (the per-round signature validation still guards them).
                    continue
                self._refine(record, group)

    def _refine(self, record: _TraceTypeRecord, group: Sequence[Any]) -> None:
        for trace in group:
            steps = [
                s for s in trace.samples if s.controlled and s.distribution is not None
            ]
            if record.exemplar is None:
                record.exemplar = [(s.address, s.distribution) for s in steps]
                record.exemplar_sigs = [prior_signature(s.distribution) for s in steps]
                record.static_flags = [sig is not None for sig in record.exemplar_sigs]
                continue
            flags = record.static_flags
            sigs = record.exemplar_sigs
            for i, s in enumerate(steps):
                if flags[i] and prior_signature(s.distribution) != sigs[i]:
                    flags[i] = False

    def _evict_coldest(self) -> None:
        coldest = min(self._records.values(), key=lambda r: r.last_seen)
        del self._records[coldest.trace_type]
        for key in [k for k in self._pools if k[0] == coldest.trace_type]:
            del self._pools[key]

    # ------------------------------------------------------------------ leasing
    def lease(self, network, batch_size: int) -> Optional[Tuple[EnginePlan, PlanScratch]]:
        """A ``(plan, scratch)`` lease for the predicted trace type, or ``None``.

        Prediction is by traffic mass: the hottest eligible (not demoted,
        compilable, observed >= ``hot_after`` cohorts) trace type.  A wrong
        prediction costs one divergent round at step 0 and a dynamic
        fallback — never wrong results.
        """
        if network is None:
            return None
        with self._lock:
            self._sync_version(network)
            record = self._predict_record()
            if record is None:
                self.misses += 1
                return None
            bucket = bucket_size_for(batch_size, self.bucket_sizes)
            plan = record.plans.get(bucket)
            if plan is None:
                plan = compile_plan(
                    network, record.trace_type, record.exemplar, record.static_flags, bucket
                )
                if plan is None:
                    record.compilable = False
                    self.misses += 1
                    return None
                record.compilable = True
                record.plans[bucket] = plan
                self.compiles += 1
            pool = self._pools.get((record.trace_type, bucket))
            scratch = pool.pop() if pool else PlanScratch(plan)
            self.hits += 1
            return plan, scratch

    def _predict_record(self) -> Optional[_TraceTypeRecord]:
        best: Optional[_TraceTypeRecord] = None
        for record in self._records.values():
            if record.demoted or record.compilable is False or record.exemplar is None:
                continue
            if record.cohorts < self.hot_after:
                continue
            if best is None or (record.traces, record.last_seen) > (best.traces, best.last_seen):
                best = record
        return best

    def release(self, plan: EnginePlan, scratch: PlanScratch) -> None:
        """Return a leased scratch to its plan's pool."""
        with self._lock:
            if plan.network_version != self._version_seen:
                return  # stale lease released after an invalidation
            pool = self._pools.setdefault((plan.trace_type, plan.bucket_size), [])
            if len(pool) < self.max_pool:
                pool.append(scratch)

    # ---------------------------------------------------------------- demotion
    def record_divergence(self, plan: EnginePlan, at_step: int) -> bool:
        """Record a planned cohort diverging; True when this demoted the type.

        Divergence at step 0 means the *lease prediction* was wrong (a cohort
        of a different trace type) — that is the cache's miss to absorb, not
        evidence the type is branchy, so it never counts toward demotion.
        """
        with self._lock:
            self.divergences += 1
            record = self._records.get(plan.trace_type)
            if record is None or at_step <= 0:
                return False
            record.divergences += 1
            if not record.demoted and record.divergences >= self.demote_after:
                record.demoted = True
                self.demotions += 1
                return True
            return False

    # ------------------------------------------------------------------- stats
    def stats(self) -> Dict[str, int]:
        """Counter snapshot for the metrics surface."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "compiles": self.compiles,
                "demotions": self.demotions,
                "divergences": self.divergences,
                "invalidations": self.invalidations,
                "trace_types": len(self._records),
                "plans": sum(len(r.plans) for r in self._records.values()),
            }


class PlannedProposalSession(BatchedProposalSession):
    """A lockstep session executing a cohort against a compiled plan.

    While the cohort conforms to the plan, each round skips the dynamic
    path's per-round work: no address grouping, no per-slot gather/scatter of
    LSTM state (the whole batch steps in place, in slot order), no geometry
    derivation or ``(B, K)`` allocation on static steps (precompiled geometry
    + ``build_into`` scratch constructors), one batched previous-value
    encoding instead of B, and the round's proposal values/log-densities are
    precomputed driver-side in one vectorised pass.  The first round that
    does not conform — wrong address, wrong cohort size, more rounds than the
    plan has steps — permanently drops this session onto the dynamic path of
    the parent class (state carries over row-for-row) and records where it
    diverged so the cache can demote chronically divergent types.
    """

    def __init__(
        self,
        network: InferenceNetwork,
        plan: EnginePlan,
        scratch: PlanScratch,
        rngs: Sequence[Any],
        observation=None,
        observations: Optional[Sequence[Any]] = None,
    ) -> None:
        if observations is not None:
            super().__init__(network, None, len(observations), observations=observations)
        else:
            super().__init__(network, observation, len(rngs))
        if self.batch_size > plan.bucket_size:
            raise ValueError(
                f"cohort of {self.batch_size} cannot run on a bucket-{plan.bucket_size} plan"
            )
        self.plan = plan
        self.scratch = scratch
        self._rngs = list(rngs)
        self._cursor = 0
        self._on_plan = True
        #: last planned round's priors matched their static signature, so the
        #: next round's batched previous-value encoding may use the exemplar
        self._last_static_ok = True
        self._geometries: List[Optional[PriorGeometry]] = [
            step.geometry.prefix(self.batch_size) if step.geometry is not None else None
            for step in plan.steps
        ]
        self._round_priors: List[Any] = [None] * self.batch_size
        self._round_values: List[Any] = [None] * self.batch_size
        self.num_planned_rounds = 0
        self.num_plan_divergences = 0
        self.num_plan_geometry_misses = 0
        self.diverged_at = -1

    # ---------------------------------------------------------------- dispatch
    def proposals(self, requests):
        if self._on_plan:
            responses = self._planned_round(requests)
            if responses is not None:
                return responses
            # Divergence: the cohort stopped conforming (different trace
            # type, extra rounds, or a short round).  The parent class IS the
            # dynamic path and shares the per-slot LSTM state and
            # previous-sample tracking, so falling back mid-cohort is just
            # routing the remaining rounds through it.
            self._on_plan = False
            self.diverged_at = self._cursor
            self.num_plan_divergences += 1
        return super().proposals(requests)

    def _planned_round(self, requests):
        plan = self.plan
        cursor = self._cursor
        if cursor >= len(plan.steps) or len(requests) != self.batch_size:
            return None
        step = plan.steps[cursor]
        for request in requests:
            if request[1] != step.address:
                return None
        self._cursor = cursor + 1
        self.num_rounds += 1
        self.num_steps += len(requests)
        self.num_planned_rounds += 1
        if not step.known:
            # Prior-fallback step: same semantics as the dynamic path — no
            # LSTM advance, previous-sample tracking reset, workers sample
            # their own priors on their own rngs.
            self.num_fallbacks += len(requests)
            responses: Dict[int, Any] = {}
            for slot, _, _, _ in requests:
                responses[slot] = None
                self._prev_address[slot] = None
                self._prev_prior[slot] = None
            self._last_static_ok = True
            return responses
        return self._planned_step(cursor, step, requests)

    # ------------------------------------------------------------ planned step
    def _planned_step(self, index: int, step: PlanStep, requests):
        network = self.network
        size = self.batch_size
        self.num_batched_steps += 1
        priors = self._round_priors
        values = self._round_values
        signature = step.signature
        static_ok = signature is not None
        for slot, _, prior, previous_value in requests:
            priors[slot] = prior
            values[slot] = previous_value
            if static_ok and prior_signature(prior) != signature:
                static_ok = False
        if signature is not None and not static_ok:
            # Same trace type, drifted prior parameters: still planned, but
            # this round derives geometry/parameters dynamically.
            self.num_plan_geometry_misses += 1
        with no_grad():
            prev_embed = self._planned_prev_embed(step, values)
            lstm_view = self.scratch.lstm_input[:size]
            np.concatenate(
                [self._obs_rows, step.addr_rows[:size], prev_embed], axis=1, out=lstm_view
            )
            # Full-batch LSTM step in slot order: no gather/scatter.  The
            # recurrence is row-independent, so stepping all rows at once is
            # bitwise the dynamic path's gathered same-address group.
            state = [
                (Tensor(self._h[layer]), Tensor(self._c[layer]))
                for layer in range(network.lstm.num_layers)
            ]
            hidden, new_state = network.lstm.step(Tensor(lstm_view), state)
            for layer, (h, c) in enumerate(new_state):
                self._h[layer] = h.data
                self._c[layer] = c.data
            layer_module = network.proposal_layers[step.address]
            if static_ok and step.kind == "mixture":
                geometry = self._geometries[index]
                means, scales, log_weights, lows, highs, bounded = (
                    layer_module._transformed_from_geometry(hidden, geometry)
                )
                mscratch = self.scratch.mixture[index]
                weights = np.exp(log_weights.data, out=mscratch.weights[:size])
                batch = BatchedMixtureOfTruncatedNormals.build_into(
                    mscratch, means.data, scales.data, weights, lows, highs, bounded
                )
            elif static_ok and step.kind == "categorical":
                cscratch = self.scratch.categorical[index]
                logits = layer_module.network(hidden)
                probs = np.multiply(
                    F.softmax(logits, axis=-1).data, 0.99, out=cscratch.probs[:size]
                )
                np.add(probs, step.smooth_probs[None, :], out=probs)
                batch = BatchedCategorical.build_into(cscratch, probs)
            else:
                batch = layer_module.proposal_batch(hidden, priors)
            # Driver-side precompute: one vectorised draw + one vectorised
            # score for the round, on the workers' own (parked) rng states.
            out_values = batch.sample_rows(self._rngs)
            log_qs = batch.log_prob_rows(out_values)
        discrete = batch.discrete
        responses: Dict[int, Any] = {}
        prev_address = self._prev_address
        prev_prior = self._prev_prior
        address = step.address
        for slot in range(size):
            value = int(out_values[slot]) if discrete else out_values[slot]
            responses[slot] = PlannedProposal(value, log_qs[slot])
            prev_address[slot] = address
            prev_prior[slot] = priors[slot]
        self._last_static_ok = static_ok
        return responses

    def _planned_prev_embed(self, step: PlanStep, values) -> np.ndarray:
        """Previous-sample embedding rows for a conforming round."""
        if not step.prev_known:
            return self.scratch.zero_prev[: self.batch_size]
        network = self.network
        if step.prev_static and self._last_static_ok:
            # All B previous priors were validated exactly equal to the
            # exemplar last round, so one batched encode over the B values is
            # bitwise the B per-row encodes the dynamic path concatenates.
            encoded = SampleEmbedding.encode_values(step.prev_prior, np.asarray(values))
        else:
            prev_prior = self._prev_prior
            encoded = np.concatenate(
                [
                    SampleEmbedding.encode_values(prev_prior[slot], np.asarray([values[slot]]))
                    for slot in range(self.batch_size)
                ],
                axis=0,
            )
        return network.sample_embeddings[step.prev_address](Tensor(encoded)).data
