"""Inference engines: importance sampling (sequential and batched lockstep),
RMH/LMH MCMC, IC, and diagnostics."""

from repro.ppl.inference import batched, diagnostics, importance_sampling, random_walk_metropolis
from repro.ppl.inference.batched import (
    TraceJob,
    batched_importance_sampling,
    mixed_batched_importance_sampling,
    per_trace_rngs,
)
from repro.ppl.inference.plans import PlanCache
from repro.ppl.inference.importance_sampling import importance_sampling as run_importance_sampling
from repro.ppl.inference.random_walk_metropolis import RandomWalkMetropolis
from repro.ppl.inference.inference_compilation import InferenceCompilation, TrainingHistory
from repro.ppl.inference.diagnostics import (
    autocorrelation,
    effective_sample_size,
    gelman_rubin,
    integrated_autocorrelation_time,
)

__all__ = [
    "batched",
    "batched_importance_sampling",
    "mixed_batched_importance_sampling",
    "TraceJob",
    "PlanCache",
    "per_trace_rngs",
    "diagnostics",
    "importance_sampling",
    "random_walk_metropolis",
    "run_importance_sampling",
    "RandomWalkMetropolis",
    "InferenceCompilation",
    "TrainingHistory",
    "autocorrelation",
    "effective_sample_size",
    "gelman_rubin",
    "integrated_autocorrelation_time",
]
