"""Importance sampling over execution traces.

The basic IS engine: run the simulator ``num_traces`` times, drawing latents
either from the prior (``proposal_provider=None``) or from per-address
proposal distributions q(x|y) (the IC case), and weight each trace by

    log w = log p(x, y) - log q(x)
          = log_prior(x) + log_likelihood(y | x) - log q(x).

When sampling from the prior the prior terms cancel and the weight reduces to
the likelihood, which is the classic likelihood-weighting special case.

``log q(x)`` is the *execution-state-level* total accumulated over **all**
latent draws: controlled draws contribute the density of whatever proposal
(or prior) the controller chose, and uncontrolled (``control=False``) draws
contribute their prior density, so their prior terms inside ``log p(x, y)``
cancel exactly.  Using the controller's controlled-draws-only total instead
would leave uncontrolled prior terms dangling in the weight — this is the
accounting both the proposal and prior branches below share via
``trace.log_q``.

IS/IC inference is embarrassingly parallel; the batched lockstep engine in
:mod:`repro.ppl.inference.batched` runs cohorts of guided executions through
the inference network in single batched NN steps, and the distributed driver
(:mod:`repro.distributed.inference`) simply merges per-rank
:class:`repro.ppl.empirical.Empirical` results.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.common.rng import RandomState, get_rng
from repro.ppl.empirical import Empirical
from repro.ppl.state import PriorController, ProposalController
from repro.trace.trace import Trace

__all__ = ["importance_sampling"]


def importance_sampling(
    model,
    observation: Dict[str, Any],
    num_traces: int = 1000,
    proposal_provider: Optional[Callable] = None,
    rng: Optional[RandomState] = None,
    trace_callback: Optional[Callable[[Trace, float], None]] = None,
) -> Empirical:
    """Run importance sampling and return a weighted Empirical over traces.

    Parameters
    ----------
    model:
        A :class:`repro.ppl.model.Model` (local or remote).
    observation:
        Mapping from observe-statement name to the observed value y.
    num_traces:
        Number of simulator executions.
    proposal_provider:
        Optional callable ``(address, instance, prior, state) -> Distribution``
        supplying proposal distributions (used by IC); ``None`` means prior
        proposals (likelihood weighting).
    trace_callback:
        Optional hook called with ``(trace, log_weight)`` after every
        execution — used by tests and by the distributed inference driver.
    """
    if num_traces <= 0:
        raise ValueError("num_traces must be positive")
    rng = rng or get_rng()
    traces: List[Trace] = []
    log_weights: List[float] = []
    for _ in range(num_traces):
        if proposal_provider is None:
            controller: PriorController | ProposalController = PriorController()
        else:
            controller = ProposalController(proposal_provider)
        trace = model.get_trace(controller, observed_values=observation, rng=rng)
        # Both branches use the same ExecutionState-level accounting: the
        # trace-wide log_q includes uncontrolled draws' prior densities, which
        # cancel against the matching prior terms inside log_joint.
        log_q = getattr(trace, "log_q", None)
        if log_q is None:
            # Model subclass that didn't record trace.log_q: reconstruct the
            # state-level total — controlled draws from the controller,
            # uncontrolled draws' prior terms from the trace.
            if isinstance(controller, ProposalController):
                log_q = controller.log_q + (trace.log_prior - controller.log_prior)
            else:
                log_q = trace.log_prior
        log_weight = trace.log_joint - log_q
        traces.append(trace)
        log_weights.append(log_weight)
        if trace_callback is not None:
            trace_callback(trace, log_weight)
    return Empirical(traces, log_weights, name="importance_sampling_posterior")
