"""Single-site Metropolis–Hastings in trace space (RMH / LMH).

This is the paper's MCMC baseline (Section 4.2): a high-compute-cost
sequential algorithm with statistical guarantees, used to establish reference
posteriors against which IC inference is validated (Figure 8).  Two proposal
kernels are provided, matching the two algorithm families cited:

* ``kernel="prior"`` — lightweight Metropolis–Hastings (LMH, Wingate et al.):
  the chosen site is re-drawn from its prior.
* ``kernel="random_walk"`` — random-walk MH (RMH): continuous sites receive a
  Gaussian perturbation scaled to the prior scale (truncated to the support
  for bounded priors); discrete sites fall back to a prior re-draw.

Each MCMC iteration re-executes the simulator with a
:class:`repro.ppl.state.ReplayController` that reuses the current trace's
values everywhere except the resampled site; values needed on a new control
path are drawn fresh from the prior.  The acceptance ratio follows the
standard single-site trace-MH form, accounting for the site-selection
probability, the site proposal density, and the prior density of fresh/stale
draws on either side.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.common.rng import RandomState, get_rng
from repro.distributions import Categorical, Distribution, Normal, TruncatedNormal, Uniform
from repro.ppl.empirical import Empirical
from repro.ppl.state import PriorController, ReplayController
from repro.trace.trace import Trace

__all__ = ["RandomWalkMetropolis"]


class RandomWalkMetropolis:
    """Single-site MH sampler over execution traces."""

    def __init__(
        self,
        model,
        observation: Dict[str, Any],
        kernel: str = "random_walk",
        step_scale: float = 0.2,
        burn_in: int = 0,
        thin: int = 1,
    ) -> None:
        if kernel not in ("random_walk", "prior"):
            raise ValueError("kernel must be 'random_walk' or 'prior'")
        if thin < 1:
            raise ValueError("thin must be >= 1")
        self.model = model
        self.observation = observation
        self.kernel = kernel
        self.step_scale = float(step_scale)
        self.burn_in = int(burn_in)
        self.thin = int(thin)
        # Statistics
        self.num_proposed = 0
        self.num_accepted = 0
        self.num_executions = 0

    # ------------------------------------------------------------------ kernel
    def _site_proposal(self, distribution: Distribution, current_value) -> Tuple[Any, float, float]:
        """Propose a new value for the chosen site.

        Returns ``(new_value, log_q_forward, log_q_reverse)`` where the log
        densities are of the site proposal kernel only.
        """
        if self.kernel == "prior" or distribution.discrete:
            new_value = distribution.sample(self._rng)
            log_forward = float(np.sum(distribution.log_prob(new_value)))
            log_reverse = float(np.sum(distribution.log_prob(current_value)))
            return new_value, log_forward, log_reverse

        # Random-walk kernel for continuous sites, scaled to the prior spread.
        scale = self.step_scale * float(np.sqrt(np.mean(np.atleast_1d(distribution.variance))))
        if scale <= 0 or not math.isfinite(scale):
            scale = self.step_scale
        current = float(np.asarray(current_value, dtype=float).reshape(-1)[0])
        if isinstance(distribution, Uniform):
            forward = TruncatedNormal(current, scale, distribution.low, distribution.high)
            new_value = float(forward.sample(self._rng))
            reverse = TruncatedNormal(new_value, scale, distribution.low, distribution.high)
        else:
            forward = Normal(current, scale)
            new_value = float(forward.sample(self._rng))
            reverse = Normal(new_value, scale)
        log_forward = float(forward.log_prob(new_value))
        log_reverse = float(reverse.log_prob(current))
        return new_value, log_forward, log_reverse

    # -------------------------------------------------------------------- run
    def run(
        self,
        num_traces: int,
        rng: Optional[RandomState] = None,
        initial_trace: Optional[Trace] = None,
        trace_callback=None,
    ) -> Empirical:
        """Run the chain for ``burn_in + num_traces * thin`` iterations."""
        if num_traces <= 0:
            raise ValueError("num_traces must be positive")
        self._rng = rng or get_rng()
        current = initial_trace or self.model.get_trace(
            PriorController(), observed_values=self.observation, rng=self._rng
        )
        self.num_executions += 0 if initial_trace is not None else 1
        kept: List[Trace] = []
        total_iterations = self.burn_in + num_traces * self.thin
        for iteration in range(total_iterations):
            current = self._step(current)
            if iteration >= self.burn_in and (iteration - self.burn_in) % self.thin == 0:
                kept.append(current)
                if trace_callback is not None:
                    trace_callback(current)
        kept = kept[:num_traces]
        return Empirical(kept, None, name="rmh_posterior")

    # ------------------------------------------------------------------- step
    def _step(self, current: Trace) -> Trace:
        controlled = [s for s in current.samples if s.controlled]
        if not controlled:
            return current
        site_index = int(self._rng.integers(0, len(controlled)))
        site = controlled[site_index]
        new_value, log_site_forward, log_site_reverse = self._site_proposal(site.distribution, site.value)
        if not np.all(np.isfinite(np.atleast_1d(site.distribution.log_prob(new_value)))):
            self.num_proposed += 1
            return current  # proposed value outside the prior support

        base_values = {(s.address, s.instance): s.value for s in current.samples if s.controlled}
        controller = ReplayController(
            base_values=base_values,
            resample_key=(site.address, site.instance),
            resample_value=new_value,
        )
        proposed = self.model.get_trace(controller, observed_values=self.observation, rng=self._rng)
        self.num_executions += 1
        self.num_proposed += 1

        proposed_controlled = [s for s in proposed.samples if s.controlled]
        if not proposed_controlled:
            return current

        proposed_keys = {(s.address, s.instance) for s in proposed_controlled}
        current_keys = set(base_values.keys())
        # Prior density of values that exist only on one side (fresh vs stale).
        log_fresh = sum(
            s.log_prob for s in proposed_controlled if (s.address, s.instance) not in current_keys
        )
        log_stale = sum(
            s.log_prob for s in controlled if (s.address, s.instance) not in proposed_keys
        )

        log_alpha = (
            proposed.log_joint
            - current.log_joint
            + math.log(len(controlled))
            - math.log(len(proposed_controlled))
            + (log_site_reverse - log_site_forward)
            + (log_stale - log_fresh)
        )
        if math.log(self._rng.uniform(0.0, 1.0) + 1e-300) < log_alpha:
            self.num_accepted += 1
            return proposed
        return current

    # -------------------------------------------------------------- statistics
    @property
    def acceptance_rate(self) -> float:
        return self.num_accepted / self.num_proposed if self.num_proposed else 0.0
