"""MCMC convergence diagnostics (Section 4.2).

The paper establishes the correctness of its RMH reference posteriors with two
diagnostics, both implemented here:

* **autocorrelation** — how many iterations are needed for effectively
  independent samples within a chain, used to estimate how long RMH must run
  for a target effective sample size (the paper reports ~1e5 iterations per
  independent sample for the tau-decay observation), and
* the **Gelman–Rubin** statistic (potential scale reduction factor, R-hat) —
  given multiple independent chains, compares within-chain to pooled variance
  to establish convergence onto the same posterior.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

__all__ = [
    "autocorrelation",
    "integrated_autocorrelation_time",
    "effective_sample_size",
    "gelman_rubin",
]


def _batched_autocorrelation_fft(x: np.ndarray, max_lag: int) -> np.ndarray:
    """FFT autocovariance of ``(m, n)`` chains, normalised to ``rho[:, 0] == 1``.

    Zero-padding to at least ``2n`` turns the FFT's circular correlation into
    the plain (linear) correlation, so for every lag the numerator equals the
    direct estimator's ``dot(x[:-lag], x[lag:])`` exactly — the FFT path is a
    numerically equivalent O(n log n) replacement for the O(n * max_lag)
    direct loop, not an approximation.  Constant (zero-variance) chains are
    perfectly correlated at all lags, as in the direct estimator.
    """
    m, n = x.shape
    centered = x - x.mean(axis=1, keepdims=True)
    size = 1
    while size < 2 * n:
        size <<= 1
    spectrum = np.fft.rfft(centered, n=size, axis=1)
    autocov = np.fft.irfft(spectrum * np.conj(spectrum), n=size, axis=1)[:, : max_lag + 1]
    variance = autocov[:, :1]
    rho = np.ones((m, max_lag + 1))
    valid = variance[:, 0] > 0
    rho[valid] = autocov[valid] / variance[valid]
    return rho


def autocorrelation(chain: Sequence[float], max_lag: int = None, method: str = "fft") -> np.ndarray:
    """Normalised autocorrelation function of a scalar chain.

    Returns ``rho[0..max_lag]`` with ``rho[0] == 1``.  ``method="fft"`` (the
    default) computes every lag in one O(n log n) pass; ``method="direct"``
    keeps the original O(n * max_lag) loop as the reference implementation
    the equivalence tests compare against.
    """
    x = np.asarray(chain, dtype=float)
    n = x.shape[0]
    if n < 2:
        raise ValueError("need at least two samples to compute autocorrelation")
    if max_lag is None:
        max_lag = min(n - 1, 1000)
    max_lag = min(max_lag, n - 1)
    if method == "fft":
        return _batched_autocorrelation_fft(x[None, :], max_lag)[0]
    if method != "direct":
        raise ValueError(f"unknown autocorrelation method {method!r}")
    x_centered = x - x.mean()
    variance = float(np.dot(x_centered, x_centered) / n)
    if variance == 0:
        # A constant chain is perfectly correlated at all lags.
        return np.ones(max_lag + 1)
    rho = np.empty(max_lag + 1)
    rho[0] = 1.0
    for lag in range(1, max_lag + 1):
        rho[lag] = float(np.dot(x_centered[:-lag], x_centered[lag:]) / (n * variance))
    return rho


def _batched_tau(rho: np.ndarray) -> np.ndarray:
    """Geyer-truncated integrated autocorrelation time per chain row.

    ``tau = 1 + 2 * sum(rho_k)`` summed up to (not including) the first
    non-positive autocorrelation of each row — the same simplified initial-
    positive-sequence rule as the scalar loop, vectorised with a running
    positivity mask.
    """
    if rho.shape[1] <= 1:
        return np.ones(rho.shape[0])
    positive = np.cumprod(rho[:, 1:] > 0, axis=1)
    return 1.0 + 2.0 * np.sum(rho[:, 1:] * positive, axis=1)


def integrated_autocorrelation_time(chain: Sequence[float], max_lag: int = None) -> float:
    """Integrated autocorrelation time tau = 1 + 2 * sum(rho_k).

    The sum is truncated at the first negative autocorrelation (Geyer's
    initial positive sequence heuristic, simplified), which keeps the
    estimator stable for short chains.
    """
    rho = autocorrelation(chain, max_lag)
    return float(_batched_tau(rho[None, :])[0])


def effective_sample_size(chain, max_lag: int = None):
    """Effective sample size N / tau.

    Accepts a single scalar chain (1-D, returns a float — the original API)
    or a stack of equal-length chains (2-D ``(m, n)``, returns the per-chain
    ESS as an ``(m,)`` array).  The batched form shares one FFT pass across
    all chains, which is how the RMH convergence sweeps evaluate many chains
    at once.
    """
    x = np.asarray(chain, dtype=float)
    if x.ndim not in (1, 2):
        raise ValueError("effective_sample_size expects a 1-D chain or a 2-D stack of chains")
    batch = np.atleast_2d(x)
    n = batch.shape[1]
    if n < 2:
        raise ValueError("need at least two samples to compute autocorrelation")
    lag = min(n - 1, 1000) if max_lag is None else min(max_lag, n - 1)
    tau = _batched_tau(_batched_autocorrelation_fft(batch, lag))
    ess = n / np.maximum(tau, 1e-12)
    return float(ess[0]) if x.ndim == 1 else ess


def gelman_rubin(chains: Sequence[Sequence[float]]) -> float:
    """Potential scale reduction factor (R-hat) for multiple chains.

    Values close to 1 indicate that the chains have converged onto the same
    posterior; the conventional threshold is R-hat < 1.1.
    """
    arrays: List[np.ndarray] = [np.asarray(c, dtype=float) for c in chains]
    if len(arrays) < 2:
        raise ValueError("gelman_rubin needs at least two chains")
    length = min(a.shape[0] for a in arrays)
    if length < 2:
        raise ValueError("chains must contain at least two samples")
    stacked = np.stack([a[:length] for a in arrays], axis=0)  # (m, n)
    m, n = stacked.shape
    chain_means = stacked.mean(axis=1)
    chain_vars = stacked.var(axis=1, ddof=1)
    within = chain_vars.mean()
    between = n * chain_means.var(ddof=1)
    if within == 0:
        return 1.0
    var_estimate = (n - 1) / n * within + between / n
    return float(np.sqrt(var_estimate / within))
