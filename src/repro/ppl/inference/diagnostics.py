"""MCMC convergence diagnostics (Section 4.2).

The paper establishes the correctness of its RMH reference posteriors with two
diagnostics, both implemented here:

* **autocorrelation** — how many iterations are needed for effectively
  independent samples within a chain, used to estimate how long RMH must run
  for a target effective sample size (the paper reports ~1e5 iterations per
  independent sample for the tau-decay observation), and
* the **Gelman–Rubin** statistic (potential scale reduction factor, R-hat) —
  given multiple independent chains, compares within-chain to pooled variance
  to establish convergence onto the same posterior.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

__all__ = [
    "autocorrelation",
    "integrated_autocorrelation_time",
    "effective_sample_size",
    "gelman_rubin",
]


def autocorrelation(chain: Sequence[float], max_lag: int = None) -> np.ndarray:
    """Normalised autocorrelation function of a scalar chain.

    Returns ``rho[0..max_lag]`` with ``rho[0] == 1``.  Uses the FFT-free
    direct estimator, which is adequate for the chain lengths used here.
    """
    x = np.asarray(chain, dtype=float)
    n = x.shape[0]
    if n < 2:
        raise ValueError("need at least two samples to compute autocorrelation")
    if max_lag is None:
        max_lag = min(n - 1, 1000)
    max_lag = min(max_lag, n - 1)
    x_centered = x - x.mean()
    variance = float(np.dot(x_centered, x_centered) / n)
    if variance == 0:
        # A constant chain is perfectly correlated at all lags.
        return np.ones(max_lag + 1)
    rho = np.empty(max_lag + 1)
    rho[0] = 1.0
    for lag in range(1, max_lag + 1):
        rho[lag] = float(np.dot(x_centered[:-lag], x_centered[lag:]) / (n * variance))
    return rho


def integrated_autocorrelation_time(chain: Sequence[float], max_lag: int = None) -> float:
    """Integrated autocorrelation time tau = 1 + 2 * sum(rho_k).

    The sum is truncated at the first negative autocorrelation (Geyer's
    initial positive sequence heuristic, simplified), which keeps the
    estimator stable for short chains.
    """
    rho = autocorrelation(chain, max_lag)
    tau = 1.0
    for lag in range(1, rho.shape[0]):
        if rho[lag] <= 0:
            break
        tau += 2.0 * rho[lag]
    return float(tau)


def effective_sample_size(chain: Sequence[float], max_lag: int = None) -> float:
    """Effective sample size N / tau of a scalar chain."""
    x = np.asarray(chain, dtype=float)
    tau = integrated_autocorrelation_time(x, max_lag)
    return float(x.shape[0] / max(tau, 1e-12))


def gelman_rubin(chains: Sequence[Sequence[float]]) -> float:
    """Potential scale reduction factor (R-hat) for multiple chains.

    Values close to 1 indicate that the chains have converged onto the same
    posterior; the conventional threshold is R-hat < 1.1.
    """
    arrays: List[np.ndarray] = [np.asarray(c, dtype=float) for c in chains]
    if len(arrays) < 2:
        raise ValueError("gelman_rubin needs at least two chains")
    length = min(a.shape[0] for a in arrays)
    if length < 2:
        raise ValueError("chains must contain at least two samples")
    stacked = np.stack([a[:length] for a in arrays], axis=0)  # (m, n)
    m, n = stacked.shape
    chain_means = stacked.mean(axis=1)
    chain_vars = stacked.var(axis=1, ddof=1)
    within = chain_vars.mean()
    between = n * chain_means.var(ddof=1)
    if within == 0:
        return 1.0
    var_estimate = (n - 1) / n * within + between / n
    return float(np.sqrt(var_estimate / within))
