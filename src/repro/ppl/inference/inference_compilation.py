"""Inference compilation (IC): amortized inference with learned proposals.

IC (Le et al. 2017; Section 4.2 of the paper) trains a deep recurrent network
to provide proposal distributions for importance sampling by minimising

    L(phi) = E_{p(y)} [ KL( p(x|y) || q_phi(x|y) ) ]
           = E_{p(x,y)} [ -log q_phi(x|y) ] + const,

i.e. by sampling (x, y) pairs from the simulator prior and maximising the
proposal log-density of the recorded latents.  The training phase is costly
but happens once per model; afterwards inference for any new observation is a
(embarrassingly parallel) importance-sampling run with NN proposals, which is
where the paper's 230x speed-up over RMH comes from.

This module provides the single-process engine; multi-rank synchronous
training of the same loss lives in :mod:`repro.distributed.trainer`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.common.config import Config, get_config
from repro.common.rng import RandomState, get_rng
from repro.ppl.empirical import Empirical
from repro.ppl.inference.batched import batched_importance_sampling, mixed_batched_importance_sampling
from repro.ppl.nn.inference_network import InferenceNetwork
from repro.tensor import optim
from repro.trace.trace import Trace

__all__ = ["InferenceCompilation", "TrainingHistory"]


@dataclass
class TrainingHistory:
    """Loss curve and bookkeeping recorded during IC training."""

    losses: List[float] = field(default_factory=list)
    traces_seen: List[int] = field(default_factory=list)
    num_parameters: List[int] = field(default_factory=list)
    learning_rates: List[float] = field(default_factory=list)

    def append(self, loss: float, traces: int, params: int, lr: float) -> None:
        self.losses.append(float(loss))
        self.traces_seen.append(int(traces))
        self.num_parameters.append(int(params))
        self.learning_rates.append(float(lr))

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")


class InferenceCompilation:
    """The IC engine: trains an :class:`InferenceNetwork` and runs amortized IS."""

    def __init__(
        self,
        network: Optional[InferenceNetwork] = None,
        config: Optional[Config] = None,
        observe_key: Optional[str] = None,
        observation_embedding=None,
        rng: Optional[RandomState] = None,
    ) -> None:
        self.config = config or get_config()
        self.rng = rng or get_rng()
        self.network = network or InferenceNetwork(
            observation_embedding=observation_embedding,
            config=self.config,
            observe_key=observe_key,
            rng=self.rng,
        )
        self.history = TrainingHistory()
        self._total_traces = 0

    # -------------------------------------------------------------------- train
    def train(
        self,
        model=None,
        num_traces: int = 1000,
        minibatch_size: int = 16,
        dataset: Optional[Sequence[Trace]] = None,
        optimizer: str = "adam",
        learning_rate: float = 1e-3,
        larc: bool = False,
        lr_schedule: Optional[str] = None,
        end_learning_rate: float = 1e-5,
        callback: Optional[Callable[[int, float], None]] = None,
        offline_schedule: Optional[str] = None,
        tokens_per_minibatch: Optional[int] = None,
        cache_packs: bool = True,
    ) -> TrainingHistory:
        """Train the proposal network.

        Online mode (``dataset is None``): traces are sampled from ``model``
        on the fly and new address-specific layers are created as they are
        encountered, with their parameters registered into the optimizer.

        Offline mode (``dataset`` given): the network's layers are pre-
        generated from the dataset and frozen, and minibatches are drawn from
        the dataset (Algorithm 2's Gˆ(x, y) branch).  With
        ``offline_schedule="sorted"`` (the default) the dataset is sorted by
        trace type once and chunked into token-budgeted minibatches
        (:class:`repro.data.packing.PackedEpochPlan`): each epoch visits
        every minibatch in a freshly shuffled order, sub-minibatches stay
        large (Section 4.4.3), and the packed array inputs built for a
        minibatch are cached across epochs (``cache_packs=False`` rebuilds
        them per visit, trading the reuse for constant memory on datasets
        whose packed form would not fit).  ``tokens_per_minibatch``
        overrides the plan's token budget (default: ``minibatch_size`` times
        the mean trace length, Section 7.2's dynamic batching).
        ``offline_schedule="random"`` retains the legacy per-iteration
        uniform draw over the raw dataset as the benchmark reference.
        """
        if dataset is None and model is None:
            raise ValueError("either a model (online) or a dataset (offline) is required")
        offline = dataset is not None
        # Validate the schedule knobs — names AND values — before any side
        # effect: pregenerating layers freezes the network irreversibly, so a
        # bad argument must not leave the engine half-configured.
        if minibatch_size < 1:
            raise ValueError("minibatch_size must be >= 1")
        if tokens_per_minibatch is not None and tokens_per_minibatch <= 0:
            raise ValueError("tokens_per_minibatch must be positive")
        if offline:
            offline_schedule = offline_schedule or "sorted"
            if offline_schedule not in ("sorted", "random"):
                raise ValueError(
                    f"offline_schedule must be 'sorted' or 'random', got {offline_schedule!r}"
                )
        elif offline_schedule is not None:
            raise ValueError("offline_schedule only applies to offline training")
        if tokens_per_minibatch is not None and (not offline or offline_schedule != "sorted"):
            raise ValueError(
                "tokens_per_minibatch only applies to the offline 'sorted' schedule"
            )
        if not cache_packs and (not offline or offline_schedule != "sorted"):
            raise ValueError("cache_packs only applies to the offline 'sorted' schedule")
        if offline:
            from repro.ppl.nn.preprocessing import pregenerate_layers

            pregenerate_layers(self.network, dataset, freeze=True)

        opt = self._make_optimizer(optimizer, learning_rate, larc)
        num_iterations = max(1, num_traces // minibatch_size)
        scheduler = None
        if lr_schedule == "poly2":
            scheduler = optim.PolynomialDecayLR(opt, total_steps=num_iterations, end_lr=end_learning_rate, power=2.0)
        elif lr_schedule == "poly1":
            scheduler = optim.PolynomialDecayLR(opt, total_steps=num_iterations, end_lr=end_learning_rate, power=1.0)

        dataset_list = list(dataset) if offline else None
        plan = None
        if offline and offline_schedule == "sorted":
            from repro.data.packing import PackedEpochPlan

            plan = PackedEpochPlan(
                dataset_list,
                minibatch_size,
                observe_key=self.network.observe_key,
                tokens_per_batch=tokens_per_minibatch,
                cache_packs=cache_packs,
            )
        for iteration in range(num_iterations):
            if plan is not None:
                batch_id = plan.next_batch_id(self.rng)
                minibatch = plan.minibatch(batch_id)
                if self.network.vectorized_loss:
                    loss = self.network.loss_packed(plan.packs(batch_id))
                else:
                    # The reference loss re-derives everything per object:
                    # building (and caching) packs it would never read is
                    # pure waste, so score the traces directly.  Group order
                    # is identical either way — histories do not change.
                    loss = self.network.loss(minibatch)
            elif offline:
                indices = self.rng.generator.choice(len(dataset_list), size=min(minibatch_size, len(dataset_list)), replace=False)
                minibatch = [dataset_list[i] for i in indices]
                loss = self.network.loss(minibatch)
            else:
                minibatch = model.prior_traces(minibatch_size, rng=self.rng)
                new_params = self.network.polymorph(minibatch)
                if new_params:
                    opt.add_param_group([p for _, p in new_params], [n for n, _ in new_params])
                loss = self.network.loss(minibatch)
            opt.zero_grad()
            loss.backward()
            opt.step()
            if scheduler is not None:
                scheduler.step()
            self._total_traces += len(minibatch)
            self.history.append(loss.item(), self._total_traces, self.network.num_parameters(), opt.lr)
            if callback is not None:
                callback(iteration, loss.item())
        # The parameters changed in place: tell anyone caching results keyed
        # to this network (e.g. a PosteriorService's posterior cache).
        self.network.notify_updated()
        return self.history

    def _make_optimizer(self, name: str, learning_rate: float, larc: bool):
        params = list(self.network.named_parameters())
        if name == "adam":
            base = optim.Adam(params, lr=learning_rate)
        elif name == "sgd":
            base = optim.SGD(params, lr=learning_rate)
        else:
            raise ValueError(f"unknown optimizer {name!r}")
        return optim.LARC(base) if larc else base

    # ---------------------------------------------------------------- posterior
    def posterior(
        self,
        model,
        observation: Dict[str, Any],
        num_traces: int = 100,
        rng: Optional[RandomState] = None,
        observe_key: Optional[str] = None,
        batch_size: int = 64,
    ) -> Empirical:
        """Amortized inference: importance sampling with NN proposals.

        ``observation`` maps observe names to observed values; the entry used
        for the observation embedding is ``observe_key`` (or the single entry).

        Runs through the batched lockstep engine
        (:func:`repro.ppl.inference.batched.batched_importance_sampling`):
        cohorts of ``batch_size`` guided executions share one observation
        embedding and advance through batched LSTM/proposal steps.  Cohort
        executions run on worker threads, so ``model.forward`` must not
        mutate shared state; pass ``batch_size=1`` to run strictly
        sequentially (remote models are serialized automatically).
        """
        rng = rng or self.rng
        return batched_importance_sampling(
            model,
            observation,
            num_traces=num_traces,
            batch_size=batch_size,
            network=self.network,
            observe_key=observe_key,
            rng=rng,
        )

    def posterior_many(
        self,
        model,
        requests: Sequence[Any],
        batch_size: int = 64,
        observe_key: Optional[str] = None,
        rng: Optional[RandomState] = None,
    ) -> List[Empirical]:
        """Amortized inference for several observations through shared cohorts.

        ``requests`` holds ``(observation, num_traces, rng)`` triples (``rng``
        may be ``None`` to derive from ``rng``/the engine's stream).  The
        mixed-observation engine packs the trace jobs of all requests into
        lockstep cohorts of up to ``batch_size``, which is how the serving
        subsystem's micro-batching scheduler amortizes concurrent traffic; a
        request's posterior is identical to a direct :meth:`posterior` call
        with the same rng.
        """
        return mixed_batched_importance_sampling(
            model,
            requests,
            batch_size=batch_size,
            network=self.network,
            observe_key=observe_key,
            rng=rng or self.rng,
        )

    # -------------------------------------------------------------- persistence
    def save(self, path: str) -> None:
        self.network.save(path)

    @classmethod
    def load(cls, path: str, config: Optional[Config] = None) -> "InferenceCompilation":
        network = InferenceNetwork.load(path)
        engine = cls(network=network, config=config or network.config)
        return engine
