"""Batched guided-execution importance sampling (the lockstep IC engine).

Amortized inference turns posterior sampling into an embarrassingly parallel
importance-sampling run, but the sequential engine still steps the inference
network at batch size 1: one observation embedding, one LSTM step and one
proposal forward **per trace per address**.  This module batches all of that
across a *cohort* of B simultaneous executions:

1. the cohort's B model executions each run in their own worker thread and
   suspend at every controlled draw;
2. a coordinator collects the suspended draws of one lockstep round, groups
   them by address, and answers each group with **one** batched step of the
   :class:`repro.ppl.nn.inference_network.BatchedProposalSession`;
3. each execution resumes, samples from its per-trace proposal using its own
   deterministic random stream, and runs until its next draw (or finishes).

Divergence-fallback semantics: traces that request *different* addresses in
the same round are stepped as separate per-address sub-batches (a sub-batch
of size 1 is plain per-trace stepping), and traces that finish early simply
drop out of the cohort — so arbitrarily branching models are supported, with
lockstep models getting the full batching win.

Randomness: every trace gets its own child stream derived from the master
``rng`` (:func:`per_trace_rngs`), so results are independent of the cohort
partitioning — ``batch_size=1`` (the sequential :class:`ProposalSession`
reference) and ``batch_size=64`` produce the same traces up to floating-point
batching effects, which is what the equivalence tests assert.

Importance weights use the ``ExecutionState``-level accounting
``log w = log p(x, y) - log q(x)`` with ``log q`` accumulated over *all*
latent draws (controlled and uncontrolled), so the prior terms of
uncontrolled draws cancel exactly against ``log_joint``.
"""

from __future__ import annotations

import queue
import threading
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.common.rng import RandomState, get_rng
from repro.ppl.empirical import Empirical
from repro.ppl.model import RemoteModel
from repro.ppl.state import PriorController, ProposalController
from repro.trace.trace import Trace

__all__ = ["batched_importance_sampling", "per_trace_rngs"]


def per_trace_rngs(rng: RandomState, num_traces: int) -> List[RandomState]:
    """Derive one independent child random stream per trace (or per rank).

    One draw is consumed from ``rng`` so repeated calls yield fresh streams;
    beyond that the child streams are a pure function of (master seed, trace
    index), which makes inference results independent of how traces are
    partitioned into cohorts.  The distributed driver uses the same scheme to
    derive per-rank streams.
    """
    base = int(rng.generator.integers(0, 2**31 - 1))
    return [rng.spawn(base + index) for index in range(num_traces)]


class _LockstepCoordinator:
    """Suspends worker executions at controlled draws and answers them in batch.

    Round protocol: every live worker posts exactly one message per round —
    either a proposal request (then blocks on its event) or "done".  Once all
    live workers have been heard from, the pending requests are answered with
    one :meth:`BatchedProposalSession.proposals` call and the requesting
    workers are released for the next round.
    """

    def __init__(self, session, num_workers: int) -> None:
        self.session = session
        self.num_workers = num_workers
        self._queue: "queue.Queue[Tuple[str, int, Any, Any, Any]]" = queue.Queue()
        self._events = [threading.Event() for _ in range(num_workers)]
        self._responses: Dict[int, Any] = {}

    # ------------------------------------------------------------ worker side
    def request(self, slot: int, address: str, prior, previous_value):
        """Called from a worker thread; blocks until the round is answered."""
        self._queue.put(("request", slot, address, prior, previous_value))
        event = self._events[slot]
        event.wait()
        event.clear()
        return self._responses.pop(slot)

    def finished(self, slot: int) -> None:
        self._queue.put(("done", slot, None, None, None))

    # ------------------------------------------------------------ driver side
    def serve(self, threads: Optional[Sequence[threading.Thread]] = None) -> None:
        """Run rounds until every worker has finished.

        ``threads`` enables a liveness check: a worker that died without ever
        reaching its ``finally`` (interpreter-level failure) is treated as
        done instead of deadlocking the round.
        """
        outstanding = set(range(self.num_workers))
        pending: List[Tuple[int, str, Any, Any]] = []
        try:
            while outstanding:
                try:
                    kind, slot, address, prior, previous_value = self._queue.get(timeout=5.0)
                except queue.Empty:
                    # Workers blocked on their event are alive by construction;
                    # only a worker that died before reaching its ``finally``
                    # can leave outstanding non-empty forever.
                    if threads is not None:
                        outstanding -= {s for s in outstanding if not threads[s].is_alive()}
                else:
                    outstanding.discard(slot)
                    if kind == "request":
                        pending.append((slot, address, prior, previous_value))
                if not outstanding and pending:
                    responses = self.session.proposals(pending)
                    outstanding = {s for s, _, _, _ in pending}
                    pending = []
                    for request_slot, proposal in responses.items():
                        self._responses[request_slot] = proposal
                        self._events[request_slot].set()
        except BaseException:
            # A driver-side failure (e.g. inside the network forward) must not
            # leave workers blocked forever: release every suspended worker
            # with a prior fallback, drain the cohort to completion, re-raise.
            for request_slot, _, _, _ in pending:
                outstanding.add(request_slot)
                self._responses[request_slot] = None
                self._events[request_slot].set()
            while outstanding:
                try:
                    kind, slot, _, _, _ = self._queue.get(timeout=5.0)
                except queue.Empty:
                    if threads is not None:
                        outstanding -= {s for s in outstanding if not threads[s].is_alive()}
                    continue
                if kind == "request":
                    self._responses[slot] = None
                    self._events[slot].set()
                else:
                    outstanding.discard(slot)
            raise


class _TrackingProposalController(ProposalController):
    """A ProposalController that records the last *controlled* value drawn.

    The previous-sample embedding must be fed the value of the most recent
    controlled draw — training steps the LSTM over controlled draws only, so
    an uncontrolled (``control=False``) value would be encoded under the
    wrong prior.  Recording it here (every controlled draw passes through
    :meth:`choose`) works for local models *and* for :class:`RemoteModel`,
    whose guided executions have no local ``ExecutionState`` to read a trace
    from.

    ``request(address, prior, previous_value)`` returns the proposal
    distribution (or ``None`` for the prior fallback).
    """

    def __init__(self, request: Callable) -> None:
        super().__init__(self._provide)
        self._request = request
        self.previous_controlled_value: Any = None

    def _provide(self, address, instance, prior, state):
        return self._request(address, prior, self.previous_controlled_value)

    def choose(self, address, instance, distribution, name, rng):
        value, log_q = super().choose(address, instance, distribution, name, rng)
        self.previous_controlled_value = value
        return value, log_q


def _worker(model, observation, coordinator, slot, rng, traces, errors) -> None:
    try:
        controller = _TrackingProposalController(
            lambda address, prior, previous_value: coordinator.request(
                slot, address, prior, previous_value
            )
        )
        traces[slot] = model.get_trace(controller, observed_values=observation, rng=rng)
    except BaseException as exc:  # noqa: BLE001 - re-raised by the driver
        errors[slot] = exc
    finally:
        coordinator.finished(slot)


def _run_cohort(model, observation, network, observation_array, rngs, stats) -> List[Trace]:
    """Execute one cohort of ``len(rngs)`` guided executions in lockstep."""
    size = len(rngs)
    session = network.batched_session(observation_array, size)
    coordinator = _LockstepCoordinator(session, size)
    traces: List[Optional[Trace]] = [None] * size
    errors: List[Optional[BaseException]] = [None] * size
    threads = [
        threading.Thread(
            target=_worker,
            args=(model, observation, coordinator, slot, rngs[slot], traces, errors),
            name=f"batched-is-worker-{slot}",
            daemon=True,
        )
        for slot in range(size)
    ]
    for thread in threads:
        thread.start()
    coordinator.serve(threads)
    for thread in threads:
        thread.join()
    for error in errors:
        if error is not None:
            raise error
    stats["num_proposal_steps"] += session.num_steps
    stats["num_fallbacks"] += session.num_fallbacks
    stats["num_rounds"] += session.num_rounds
    stats["num_batched_steps"] += session.num_batched_steps
    stats["num_divergent_rounds"] += session.num_divergent_rounds
    return traces  # type: ignore[return-value]


def _run_sequential(model, observation, network, observation_array, rngs, stats) -> List[Trace]:
    """The sequential reference path: one ProposalSession per trace."""
    traces: List[Trace] = []
    for rng in rngs:
        session = network.inference_session(observation_array)
        controller = _TrackingProposalController(
            lambda address, prior, previous_value, _session=session: _session.proposal(
                address, prior, previous_value
            )
        )
        traces.append(model.get_trace(controller, observed_values=observation, rng=rng))
        stats["num_proposal_steps"] += session.num_steps
        stats["num_fallbacks"] += session.num_fallbacks
    return traces


def batched_importance_sampling(
    model,
    observation: Dict[str, Any],
    num_traces: int = 1000,
    batch_size: int = 64,
    network=None,
    observe_key: Optional[str] = None,
    rng: Optional[RandomState] = None,
    trace_callback: Optional[Callable[[Trace, float], None]] = None,
) -> Empirical:
    """Run importance sampling with cohorts of lockstep guided executions.

    Parameters
    ----------
    model:
        A :class:`repro.ppl.model.Model`.
    observation:
        Mapping from observe-statement name to the observed value y.
    num_traces:
        Total number of simulator executions.
    batch_size:
        Cohort size B.  Traces are partitioned into ``ceil(num_traces / B)``
        cohorts; ``batch_size=1`` selects the sequential per-trace engine
        (useful as the equivalence/throughput reference).  Cohort executions
        run on B worker threads, so ``model.forward`` must not mutate shared
        state; pass ``batch_size=1`` for non-thread-compatible models
        (:class:`RemoteModel` is detected and serialized automatically).
    network:
        A trained :class:`repro.ppl.nn.inference_network.InferenceNetwork`
        supplying proposals.  ``None`` falls back to prior proposals
        (likelihood weighting) with the same per-trace random streams.
    observe_key:
        Which entry of ``observation`` feeds the observation embedding
        (defaults to ``network.observe_key`` or the single entry).

    Returns
    -------
    Empirical
        Weighted posterior over traces.  The engine's counters (fallbacks,
        batched steps, divergent rounds, cohorts) are attached as the
        ``engine_stats`` attribute.
    """
    if num_traces <= 0:
        raise ValueError("num_traces must be positive")
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    rng = rng or get_rng()
    rngs = per_trace_rngs(rng, num_traces)
    stats: Dict[str, int] = {
        "num_cohorts": 0,
        "num_proposal_steps": 0,
        "num_fallbacks": 0,
        "num_rounds": 0,
        "num_batched_steps": 0,
        "num_divergent_rounds": 0,
    }

    observation_array = None
    if network is not None:
        key = observe_key or network.observe_key
        if key is None:
            if len(observation) != 1:
                raise ValueError("pass observe_key when conditioning on multiple observes")
            key = next(iter(observation))
        if key not in observation:
            raise ValueError(
                f"observe_key {key!r} not found in observation (available: {sorted(observation)})"
            )
        observation_array = np.asarray(observation[key], dtype=float)

    # A remote simulator multiplexes one PPX transport, so its guided
    # executions cannot be suspended concurrently; run those per trace.
    lockstep_capable = not isinstance(model, RemoteModel)
    traces: List[Trace] = []
    for start in range(0, num_traces, batch_size):
        cohort_rngs = rngs[start : start + batch_size]
        stats["num_cohorts"] += 1
        if network is None:
            for cohort_rng in cohort_rngs:
                traces.append(
                    model.get_trace(PriorController(), observed_values=observation, rng=cohort_rng)
                )
        elif len(cohort_rngs) == 1 or not lockstep_capable:
            traces.extend(
                _run_sequential(model, observation, network, observation_array, cohort_rngs, stats)
            )
        else:
            traces.extend(
                _run_cohort(model, observation, network, observation_array, cohort_rngs, stats)
            )

    log_weights: List[float] = []
    for trace in traces:
        # ExecutionState-level accounting: trace.log_q covers *every* latent
        # draw (uncontrolled draws contribute their prior density, cancelling
        # the matching term inside log_joint).
        log_q = getattr(trace, "log_q", None)
        if log_q is None:
            if network is not None:
                # A silent prior fallback would discard the proposal density
                # and bias the posterior — refuse instead.
                raise ValueError(
                    "model.get_trace did not record trace.log_q; guided "
                    "importance weights cannot be formed without it"
                )
            log_q = trace.log_prior
        log_weight = trace.log_joint - log_q
        log_weights.append(log_weight)
        if trace_callback is not None:
            trace_callback(trace, log_weight)

    result = Empirical(traces, log_weights, name="batched_importance_sampling_posterior")
    result.engine_stats = stats
    return result
