"""Batched guided-execution importance sampling (the lockstep IC engine).

Amortized inference turns posterior sampling into an embarrassingly parallel
importance-sampling run, but the sequential engine still steps the inference
network at batch size 1: one observation embedding, one LSTM step and one
proposal forward **per trace per address**.  This module batches all of that
across a *cohort* of B simultaneous executions:

1. the cohort's B model executions each run in their own worker thread and
   suspend at every controlled draw;
2. a coordinator collects the suspended draws of one lockstep round, groups
   them by address, and answers each group with **one** batched step of the
   :class:`repro.ppl.nn.inference_network.BatchedProposalSession`;
3. each execution resumes, samples from its per-trace proposal using its own
   deterministic random stream, and runs until its next draw (or finishes).

Divergence-fallback semantics: traces that request *different* addresses in
the same round are stepped as separate per-address sub-batches (a sub-batch
of size 1 is plain per-trace stepping), and traces that finish early simply
drop out of the cohort — so arbitrarily branching models are supported, with
lockstep models getting the full batching win.

Randomness: every trace gets its own child stream derived from the master
``rng`` (:func:`per_trace_rngs`), so results are independent of the cohort
partitioning — ``batch_size=1`` (the sequential :class:`ProposalSession`
reference) and ``batch_size=64`` produce the same traces up to floating-point
batching effects, which is what the equivalence tests assert.

Importance weights use the ``ExecutionState``-level accounting
``log w = log p(x, y) - log q(x)`` with ``log q`` accumulated over *all*
latent draws (controlled and uncontrolled), so the prior terms of
uncontrolled draws cancel exactly against ``log_joint``.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, List, NamedTuple, Optional, Sequence, Tuple

import numpy as np

from repro.common.rng import RandomState, get_rng
from repro.ppl.empirical import Empirical
from repro.ppl.model import RemoteModel
from repro.ppl.state import PriorController, ProposalController
from repro.trace.trace import Trace

__all__ = [
    "batched_importance_sampling",
    "batched_importance_sampling_seeded",
    "mixed_batched_importance_sampling",
    "per_trace_rngs",
    "resolve_observation_array",
    "TraceJob",
    "LockstepStallError",
    "ENGINE_STAT_KEYS",
    "new_engine_stats",
    "merge_engine_stats",
    "merge_session_stats",
    "form_log_weights",
    "run_mixed_cohort",
    "execute_trace_jobs",
]


class LockstepStallError(RuntimeError):
    """A lockstep round made no progress for the coordinator's stall budget.

    Raised by the cohort driver instead of waiting forever when live workers
    stop posting round messages (a wedged simulator, a deadlocked model, a
    stuck remote call).  The message names the slots still owed a message and
    the slots blocked awaiting a proposal, so the offender is identifiable
    from the error alone.  The driver's poison path then releases every
    blocked worker before re-raising, so the failure is loud but clean.
    """


def per_trace_rngs(rng: RandomState, num_traces: int) -> List[RandomState]:
    """Derive one independent child random stream per trace (or per rank).

    One draw is consumed from ``rng`` so repeated calls yield fresh streams;
    beyond that the child streams are a pure function of (master seed, base,
    trace index), which makes inference results independent of how traces are
    partitioned into cohorts.  The distributed driver uses the same scheme to
    derive per-rank streams.

    The child key mixes ``(base, index)`` as separate SeedSequence entropy
    words rather than summing them: with the old ``base + index`` keying, two
    requests whose random 31-bit bases landed within ``num_traces`` of each
    other shared *identical* trace streams for the overlapping indices — a
    birthday collision that serving traffic (thousands of requests, each
    drawing a fresh base) makes probable.  Mixing removes the overlap
    entirely; the cost is that fixed-seed draw sequences differ from
    pre-fix releases (posterior *statistics* are unaffected).
    """
    base = int(rng.generator.integers(0, 2**31 - 1))
    return [rng.spawn((base, index)) for index in range(num_traces)]


class _LockstepCoordinator:
    """Suspends worker executions at controlled draws and answers them in batch.

    Round protocol: every live worker posts exactly one message per round —
    either a proposal request (then blocks on its event) or "done".  Once all
    live workers have been heard from, the pending requests are answered with
    one :meth:`BatchedProposalSession.proposals` call and the requesting
    workers are released for the next round.

    The round inbox is a counting barrier, not a message queue: workers append
    under one lock and the *last* poster of the round wakes the driver, so a
    round costs one driver wake-up instead of one per message.  At serving
    cohort sizes (B=64) the per-message ``queue.get`` wake-ups were the single
    largest cost of the whole engine — coordination, not NN compute.
    """

    def __init__(
        self,
        session,
        num_workers: int,
        stall_timeout: float = 60.0,
        poll_interval: float = 5.0,
    ) -> None:
        self.session = session
        self.num_workers = num_workers
        #: seconds of zero round progress tolerated before the driver raises
        #: :class:`LockstepStallError` (liveness re-checks happen every
        #: ``poll_interval`` regardless; this only bounds how long "no new
        #: message and every laggard thread still alive" may persist)
        self.stall_timeout = float(stall_timeout)
        self.poll_interval = float(poll_interval)
        self._lock = threading.Lock()
        #: inbox of the current round: (kind, slot, address, prior, prev_value)
        self._messages: List[Tuple[str, int, Any, Any, Any]] = []
        #: how many messages complete the current round (live outstanding workers)
        self._expected = num_workers
        self._round_ready = threading.Event()
        self._events = [threading.Event() for _ in range(num_workers)]
        self._responses: Dict[int, Any] = {}
        #: set after a driver-side failure: workers stop suspending and run
        #: to completion on the prior fallback instead of deadlocking
        self._poisoned = False

    # ------------------------------------------------------------ worker side
    def _post(self, message: Tuple[str, int, Any, Any, Any]) -> bool:
        """Append to the round inbox; returns False when the cohort is poisoned."""
        with self._lock:
            if self._poisoned:
                return False
            self._messages.append(message)
            if len(self._messages) >= self._expected:
                self._round_ready.set()
            return True

    def request(self, slot: int, address: str, prior, previous_value):
        """Called from a worker thread; blocks until the round is answered."""
        if not self._post(("request", slot, address, prior, previous_value)):
            return None  # poisoned cohort: prior fallback, run to completion
        event = self._events[slot]
        event.wait()
        event.clear()
        return self._responses.pop(slot)

    def finished(self, slot: int) -> None:
        self._post(("done", slot, None, None, None))

    # ------------------------------------------------------------ driver side
    def _collect_round(self, outstanding: set, threads) -> List[Tuple[str, int, Any, Any, Any]]:
        """Block until every outstanding worker has posted its round message.

        ``threads`` enables a liveness check: a worker that died without ever
        reaching its ``finally`` (interpreter-level failure) is treated as
        done instead of deadlocking the round.

        A round that makes *no* progress — no new message posted, every
        laggard thread still alive — for ``stall_timeout`` cumulative seconds
        raises :class:`LockstepStallError` naming the stuck slots, instead of
        silently re-waiting forever (a wedged simulator used to hang the
        whole cohort here).
        """
        stalled_for = 0.0
        last_posted = -1
        while True:
            if self._round_ready.wait(timeout=self.poll_interval):
                break
            with self._lock:
                posted = {message[1] for message in self._messages}
                if threads is not None:
                    dead = {
                        slot
                        for slot in outstanding
                        if slot not in posted and not threads[slot].is_alive()
                    }
                    if dead:
                        outstanding -= dead
                        self._expected = len(outstanding)
                        if len(self._messages) >= self._expected:
                            break
                if len(posted) > last_posted:
                    last_posted = len(posted)
                    stalled_for = 0.0
                else:
                    stalled_for += self.poll_interval
                if stalled_for >= self.stall_timeout:
                    missing = sorted(outstanding - posted)
                    status = {
                        slot: (
                            "alive"
                            if threads is not None and threads[slot].is_alive()
                            else "no-thread-info" if threads is None else "dead"
                        )
                        for slot in missing
                    }
                    raise LockstepStallError(
                        f"lockstep round stalled for {stalled_for:.0f}s: "
                        f"{len(posted)}/{self._expected} messages posted, "
                        f"waiting on slots {status} "
                        f"(outstanding={sorted(outstanding)})"
                    )
        with self._lock:
            messages = self._messages
            self._messages = []
            self._round_ready.clear()
        return messages

    def serve(self, threads: Optional[Sequence[threading.Thread]] = None) -> None:
        """Run rounds until every worker has finished."""
        outstanding = set(range(self.num_workers))
        try:
            while outstanding:
                messages = self._collect_round(outstanding, threads)
                pending = [
                    (slot, address, prior, previous_value)
                    for kind, slot, address, prior, previous_value in messages
                    if kind == "request"
                ]
                outstanding = {slot for slot, _, _, _ in pending}
                if not pending:
                    continue
                # The next round's barrier size must be armed *before* any
                # released worker can post into it.
                with self._lock:
                    self._expected = len(outstanding)
                responses = self.session.proposals(pending)
                for request_slot, proposal in responses.items():
                    self._responses[request_slot] = proposal
                    self._events[request_slot].set()
        except BaseException:
            # A driver-side failure (e.g. inside the network forward) must not
            # leave workers blocked forever: poison the cohort (so no worker
            # suspends again), release every blocked worker with a prior
            # fallback, and re-raise.  Poisoned workers run to completion on
            # their own threads; the cohort's traces are discarded anyway.
            with self._lock:
                self._poisoned = True
                blocked = {message[1] for message in self._messages if message[0] == "request"}
                self._messages = []
            for request_slot in sorted(outstanding | blocked):
                self._responses[request_slot] = None
                self._events[request_slot].set()
            raise


class _TrackingProposalController(ProposalController):
    """A ProposalController that records the last *controlled* value drawn.

    The previous-sample embedding must be fed the value of the most recent
    controlled draw — training steps the LSTM over controlled draws only, so
    an uncontrolled (``control=False``) value would be encoded under the
    wrong prior.  Recording it here (every controlled draw passes through
    :meth:`choose`) works for local models *and* for :class:`RemoteModel`,
    whose guided executions have no local ``ExecutionState`` to read a trace
    from.

    ``request(address, prior, previous_value)`` returns the proposal
    distribution (or ``None`` for the prior fallback).  Since the lockstep
    session answers with :class:`repro.distributions.batched.BatchedRowView`
    objects — cheap views into one array-parameterised batched distribution
    per address group — the controller treats proposals purely through the
    ``sample``/``log_prob`` duck type and never assumes a concrete class.
    """

    def __init__(self, request: Callable) -> None:
        super().__init__(self._provide)
        self._request = request
        self.previous_controlled_value: Any = None

    def _provide(self, address, instance, prior, state):
        return self._request(address, prior, self.previous_controlled_value)

    def choose(self, address, instance, distribution, name, rng):
        value, log_q = super().choose(address, instance, distribution, name, rng)
        self.previous_controlled_value = value
        return value, log_q


def _worker(model, observation, coordinator, slot, rng, traces, errors) -> None:
    try:
        controller = _TrackingProposalController(
            lambda address, prior, previous_value: coordinator.request(
                slot, address, prior, previous_value
            )
        )
        traces[slot] = model.get_trace(controller, observed_values=observation, rng=rng)
    except BaseException as exc:  # noqa: BLE001 - re-raised by the driver
        errors[slot] = exc
    finally:
        coordinator.finished(slot)


def _drive_cohort(model, session, slot_observations, rngs, stats) -> List[Trace]:
    """Drive ``len(rngs)`` suspended guided executions against ``session``.

    ``slot_observations[slot]`` conditions slot ``slot``'s execution; the
    shared-observation path passes the same mapping for every slot, the
    mixed-observation path one mapping per request.
    """
    size = len(rngs)
    coordinator = _LockstepCoordinator(session, size)
    traces: List[Optional[Trace]] = [None] * size
    errors: List[Optional[BaseException]] = [None] * size
    threads = [
        threading.Thread(
            target=_worker,
            args=(model, slot_observations[slot], coordinator, slot, rngs[slot], traces, errors),
            name=f"batched-is-worker-{slot}",
            daemon=True,
        )
        for slot in range(size)
    ]
    for thread in threads:
        thread.start()
    try:
        coordinator.serve(threads)
    finally:
        # Join on *every* exit — the poison path has already released any
        # blocked worker, so a bounded join collects them; a worker that is
        # still wedged (the stall the coordinator just diagnosed) is a daemon
        # thread and must not also hang the driver here.
        for thread in threads:
            thread.join(timeout=5.0)
    for error in errors:
        if error is not None:
            raise error
    merge_session_stats(stats, session)
    return traces  # type: ignore[return-value]


def _leased_session(
    network, rngs, stats, plan_cache, observation=None, observations=None, batched_proposals=True
):
    """The cohort's session: planned when the cache predicts one, else dynamic.

    Returns ``(session, plan, scratch)`` with ``plan``/``scratch`` ``None`` on
    the dynamic path.  Plans only apply to the batched-proposal emission (the
    legacy per-object reference path stays dynamic by construction).
    """
    if plan_cache is not None and batched_proposals:
        lease = plan_cache.lease(network, len(rngs))
        if lease is not None:
            plan, scratch = lease
            stats["plan_hits"] += 1
            stats["num_planned_cohorts"] += 1
            session = network.planned_session(
                plan, scratch, rngs, observation=observation, observations=observations
            )
            return session, plan, scratch
        stats["plan_misses"] += 1
    if observations is not None:
        return network.mixed_batched_session(observations), None, None
    session = network.batched_session(
        observation, len(rngs), batched_proposals=batched_proposals
    )
    return session, None, None


def _finish_lease(plan_cache, network, session, plan, scratch, traces, stats) -> None:
    """Post-cohort plan bookkeeping: release scratch, record divergence, observe."""
    if plan_cache is None:
        return
    if plan is not None:
        plan_cache.release(plan, scratch)
        if session.num_plan_divergences and plan_cache.record_divergence(
            plan, session.diverged_at
        ):
            stats["plan_demotions"] += 1
    plan_cache.observe_traces(traces, network)


def _run_cohort(
    model,
    observation,
    network,
    observation_array,
    rngs,
    stats,
    batched_proposals=True,
    plan_cache=None,
) -> List[Trace]:
    """Execute one cohort of ``len(rngs)`` guided executions in lockstep."""
    session, plan, scratch = _leased_session(
        network,
        rngs,
        stats,
        plan_cache,
        observation=observation_array,
        batched_proposals=batched_proposals,
    )
    try:
        traces = _drive_cohort(model, session, [observation] * len(rngs), rngs, stats)
    except BaseException:
        if plan_cache is not None and plan is not None:
            plan_cache.release(plan, scratch)
        raise
    _finish_lease(plan_cache, network, session, plan, scratch, traces, stats)
    return traces


class TraceJob(NamedTuple):
    """One guided execution owed to a posterior request.

    The serving scheduler flattens every admitted request into ``num_traces``
    trace jobs (each carrying the request's observation and its own derived
    random stream) and packs jobs from *different* requests into shared
    lockstep cohorts.  ``request_index`` routes the finished trace back to the
    request that owns it.
    """

    request_index: int
    observation: Dict[str, Any]
    observation_array: Optional[np.ndarray]
    rng: RandomState


#: The one definition of the engine counter key set.  Every stat block is
#: created from it and every merge iterates actual dict items, so adding a
#: key here is the whole change — no hand-maintained lists at harvest or
#: shard-merge sites to drift out of sync (the key-parity test pins this).
ENGINE_STAT_KEYS: Tuple[str, ...] = (
    "num_cohorts",
    "num_proposal_steps",
    "num_fallbacks",
    "num_rounds",
    "num_batched_steps",
    "num_divergent_rounds",
    "num_observation_embeddings",
    "plan_hits",
    "plan_misses",
    "plan_demotions",
    "num_planned_cohorts",
    "num_planned_rounds",
    "num_plan_divergences",
    "num_plan_geometry_misses",
)

#: stat key -> session attribute harvested by :func:`merge_session_stats`
_SESSION_STAT_ATTRS: Tuple[Tuple[str, str], ...] = (
    ("num_proposal_steps", "num_steps"),
    ("num_fallbacks", "num_fallbacks"),
    ("num_rounds", "num_rounds"),
    ("num_batched_steps", "num_batched_steps"),
    ("num_divergent_rounds", "num_divergent_rounds"),
    ("num_observation_embeddings", "num_observation_embeddings"),
    ("num_planned_rounds", "num_planned_rounds"),
    ("num_plan_divergences", "num_plan_divergences"),
    ("num_plan_geometry_misses", "num_plan_geometry_misses"),
)


def new_engine_stats() -> Dict[str, int]:
    """A fresh counter block as attached to results via ``engine_stats``."""
    return {key: 0 for key in ENGINE_STAT_KEYS}


def merge_session_stats(stats: Dict[str, int], session) -> None:
    """Harvest a finished session's counters into an engine stat block.

    Counters a session kind lacks read as 0 (the sequential
    ``ProposalSession`` has no round counters; the dynamic batched session
    has no plan counters).
    """
    for key, attr in _SESSION_STAT_ATTRS:
        stats[key] += getattr(session, attr, 0)


def merge_engine_stats(into: Dict[str, int], stats: Dict[str, int]) -> Dict[str, int]:
    """Accumulate one stat block into another without dropping unknown keys.

    Shard merges (serving sinks, pool results, distributed gathers) must use
    this rather than iterating a hand-copied key list: a key added to
    :data:`ENGINE_STAT_KEYS` — or reported by a newer worker — merges through
    unchanged instead of being silently dropped.
    """
    for key, value in stats.items():
        into[key] = into.get(key, 0) + value
    return into


def resolve_observation_array(network, observation: Dict[str, Any], observe_key: Optional[str] = None):
    """The observation entry feeding the network's observation embedding.

    Returns ``None`` when no network is supplied (prior/likelihood-weighting
    mode needs no embedding).  Raises on an ambiguous or missing key, exactly
    as the one-shot engine does.
    """
    if network is None:
        return None
    key = observe_key or network.observe_key
    if key is None:
        if len(observation) != 1:
            raise ValueError("pass observe_key when conditioning on multiple observes")
        key = next(iter(observation))
    if key not in observation:
        raise ValueError(
            f"observe_key {key!r} not found in observation (available: {sorted(observation)})"
        )
    return np.asarray(observation[key], dtype=float)


def run_mixed_cohort(
    model, jobs: Sequence[TraceJob], network, stats: Dict[str, int], plan_cache=None
) -> List[Trace]:
    """Execute one lockstep cohort whose slots may condition on different observations.

    This is the serving subsystem's inner loop: ``jobs`` typically mixes trace
    jobs from several concurrent requests.  With a network, the cohort runs
    through :meth:`InferenceNetwork.mixed_batched_session` (one embedding per
    distinct observation, one batched LSTM step per address group); without
    one, every job draws from the prior (likelihood weighting).  With a
    ``plan_cache``, hot trace types run the compiled planned fast path
    (:mod:`repro.ppl.inference.plans`) with a mid-cohort dynamic fallback.
    """
    stats["num_cohorts"] += 1
    if network is None:
        traces = []
        for job in jobs:
            traces.append(
                model.get_trace(PriorController(), observed_values=job.observation, rng=job.rng)
            )
        return traces
    rngs = [job.rng for job in jobs]
    if len(jobs) == 1 or isinstance(model, RemoteModel):
        # Same constraint as the one-shot engine: a remote simulator
        # multiplexes one PPX transport, so run its executions one at a time.
        traces = []
        for job in jobs:
            traces.extend(
                _run_sequential(model, job.observation, network, job.observation_array, [job.rng], stats)
            )
        return traces
    session, plan, scratch = _leased_session(
        network,
        rngs,
        stats,
        plan_cache,
        observations=[job.observation_array for job in jobs],
    )
    try:
        traces = _drive_cohort(model, session, [job.observation for job in jobs], rngs, stats)
    except BaseException:
        if plan_cache is not None and plan is not None:
            plan_cache.release(plan, scratch)
        raise
    _finish_lease(plan_cache, network, session, plan, scratch, traces, stats)
    return traces


def execute_trace_jobs(
    model, jobs: Sequence[TraceJob], network, plan_cache=None
) -> Tuple[List[Trace], Dict[str, int]]:
    """Run one shard of trace jobs and return ``(traces, engine_stats)``.

    This is the engine entry point of an out-of-process cohort worker: jobs
    arrive pickled (a :class:`TraceJob` carries only the observation, its
    resolved array and a :class:`repro.common.rng.RandomState`, all of which
    round-trip through pickle with the generator state intact), the lockstep
    rounds run locally, and the finished traces plus the engine counter block
    travel back.  Because each job's random stream was derived in the parent
    with :func:`per_trace_rngs` *before* sharding, the traces are bit-identical
    wherever the shard executes — same process, worker thread, or worker
    process.
    """
    stats = new_engine_stats()
    traces = run_mixed_cohort(model, jobs, network, stats, plan_cache=plan_cache)
    return traces, stats


def form_log_weights(
    traces: Sequence[Trace],
    network,
    trace_callback: Optional[Callable[[Trace, float], None]] = None,
) -> List[float]:
    """ExecutionState-level importance weights ``log w = log p(x, y) - log q(x)``.

    ``trace.log_q`` covers *every* latent draw (uncontrolled draws contribute
    their prior density, cancelling the matching term inside ``log_joint``).
    """
    log_weights: List[float] = []
    for trace in traces:
        log_q = getattr(trace, "log_q", None)
        if log_q is None:
            if network is not None:
                # A silent prior fallback would discard the proposal density
                # and bias the posterior — refuse instead.
                raise ValueError(
                    "model.get_trace did not record trace.log_q; guided "
                    "importance weights cannot be formed without it"
                )
            log_q = trace.log_prior
        log_weight = trace.log_joint - log_q
        log_weights.append(log_weight)
        if trace_callback is not None:
            trace_callback(trace, log_weight)
    return log_weights


def mixed_batched_importance_sampling(
    model,
    requests: Sequence[Tuple[Dict[str, Any], int, Optional[RandomState]]],
    batch_size: int = 64,
    network=None,
    observe_key: Optional[str] = None,
    rng: Optional[RandomState] = None,
    plan_cache=None,
) -> List[Empirical]:
    """Run several independent posterior requests through shared cohorts.

    ``requests`` holds ``(observation, num_traces, rng)`` triples; requests
    with ``rng=None`` derive their stream from ``rng`` (or the global state).
    The trace jobs of all requests are flattened in request order and packed
    into lockstep cohorts of up to ``batch_size``, so concurrent requests
    amortize the network forwards that a one-request cohort would pay alone.

    Because every trace draws from a child stream that is a pure function of
    (request rng, trace index) — the same derivation
    :func:`batched_importance_sampling` uses — each returned posterior is
    identical to a direct one-shot run with that request's rng, regardless of
    how jobs were packed into cohorts.

    Returns one :class:`Empirical` per request, each carrying the shared
    ``engine_stats`` counter block of the whole run.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    master = rng or get_rng()
    stats = new_engine_stats()

    jobs: List[TraceJob] = []
    for index, (observation, num_traces, request_rng) in enumerate(requests):
        if num_traces <= 0:
            raise ValueError("num_traces must be positive")
        observation_array = resolve_observation_array(network, observation, observe_key)
        request_rng = request_rng or master
        for trace_rng in per_trace_rngs(request_rng, num_traces):
            jobs.append(TraceJob(index, observation, observation_array, trace_rng))

    traces_by_request: Dict[int, List[Trace]] = {index: [] for index in range(len(requests))}
    for start in range(0, len(jobs), batch_size):
        cohort = jobs[start : start + batch_size]
        for job, trace in zip(
            cohort, run_mixed_cohort(model, cohort, network, stats, plan_cache=plan_cache)
        ):
            traces_by_request[job.request_index].append(trace)

    results: List[Empirical] = []
    for index in range(len(requests)):
        traces = traces_by_request[index]
        result = Empirical(
            traces,
            form_log_weights(traces, network),
            name="mixed_batched_importance_sampling_posterior",
        )
        result.engine_stats = stats
        results.append(result)
    return results


def _run_sequential(model, observation, network, observation_array, rngs, stats) -> List[Trace]:
    """The sequential reference path: one ProposalSession per trace."""
    traces: List[Trace] = []
    for rng in rngs:
        session = network.inference_session(observation_array)
        controller = _TrackingProposalController(
            lambda address, prior, previous_value, _session=session: _session.proposal(
                address, prior, previous_value
            )
        )
        traces.append(model.get_trace(controller, observed_values=observation, rng=rng))
        merge_session_stats(stats, session)
    return traces


def batched_importance_sampling(
    model,
    observation: Dict[str, Any],
    num_traces: int = 1000,
    batch_size: int = 64,
    network=None,
    observe_key: Optional[str] = None,
    rng: Optional[RandomState] = None,
    trace_callback: Optional[Callable[[Trace, float], None]] = None,
    batched_proposals: bool = True,
    plan_cache=None,
) -> Empirical:
    """Run importance sampling with cohorts of lockstep guided executions.

    Parameters
    ----------
    model:
        A :class:`repro.ppl.model.Model`.
    observation:
        Mapping from observe-statement name to the observed value y.
    num_traces:
        Total number of simulator executions.
    batch_size:
        Cohort size B.  Traces are partitioned into ``ceil(num_traces / B)``
        cohorts; ``batch_size=1`` selects the sequential per-trace engine
        (useful as the equivalence/throughput reference).  Cohort executions
        run on B worker threads, so ``model.forward`` must not mutate shared
        state; pass ``batch_size=1`` for non-thread-compatible models
        (:class:`RemoteModel` is detected and serialized automatically).
    network:
        A trained :class:`repro.ppl.nn.inference_network.InferenceNetwork`
        supplying proposals.  ``None`` falls back to prior proposals
        (likelihood weighting) with the same per-trace random streams.
    observe_key:
        Which entry of ``observation`` feeds the observation embedding
        (defaults to ``network.observe_key`` or the single entry).
    batched_proposals:
        ``True`` (default) answers each lockstep address group with one
        array-parameterised batched distribution whose row views the workers
        sample; ``False`` selects the legacy per-object emission (B mixtures
        plus components per step), kept as the equivalence/benchmark
        reference.  Both produce bit-identical traces.

    Returns
    -------
    Empirical
        Weighted posterior over traces.  The engine's counters (fallbacks,
        batched steps, divergent rounds, cohorts) are attached as the
        ``engine_stats`` attribute.
    """
    return batched_importance_sampling_seeded(
        model,
        observation,
        num_traces=num_traces,
        batch_size=batch_size,
        network=network,
        observe_key=observe_key,
        rng=rng or get_rng(),
        trace_callback=trace_callback,
        batched_proposals=batched_proposals,
        plan_cache=plan_cache,
    )


def batched_importance_sampling_seeded(
    model,
    observation: Dict[str, Any],
    num_traces: int,
    batch_size: int,
    network=None,
    observe_key: Optional[str] = None,
    rng: Optional[RandomState] = None,
    trace_callback: Optional[Callable[[Trace, float], None]] = None,
    batched_proposals: bool = True,
    plan_cache=None,
) -> Empirical:
    """The seeded core of :func:`batched_importance_sampling`.

    ``rng`` is required: this is the variant job bodies (distributed ranks,
    pool workers) must call, with a stream the *parent* derived via the spawn
    tree — a job that defaulted its own generator would draw from a different
    process's global stream.  Only the top-level entry point
    :func:`batched_importance_sampling` may default ``rng`` to ``get_rng()``.
    """
    if num_traces <= 0:
        raise ValueError("num_traces must be positive")
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    if rng is None:
        raise ValueError(
            "batched_importance_sampling_seeded requires an explicit rng; "
            "use batched_importance_sampling for the defaulting entry point"
        )
    rngs = per_trace_rngs(rng, num_traces)
    stats = new_engine_stats()
    observation_array = resolve_observation_array(network, observation, observe_key)

    # A remote simulator multiplexes one PPX transport, so its guided
    # executions cannot be suspended concurrently; run those per trace.
    lockstep_capable = not isinstance(model, RemoteModel)
    traces: List[Trace] = []
    for start in range(0, num_traces, batch_size):
        cohort_rngs = rngs[start : start + batch_size]
        stats["num_cohorts"] += 1
        if network is None:
            for cohort_rng in cohort_rngs:
                traces.append(
                    model.get_trace(PriorController(), observed_values=observation, rng=cohort_rng)
                )
        elif len(cohort_rngs) == 1 or not lockstep_capable:
            traces.extend(
                _run_sequential(model, observation, network, observation_array, cohort_rngs, stats)
            )
        else:
            traces.extend(
                _run_cohort(
                    model,
                    observation,
                    network,
                    observation_array,
                    cohort_rngs,
                    stats,
                    batched_proposals=batched_proposals,
                    plan_cache=plan_cache,
                )
            )

    log_weights = form_log_weights(traces, network, trace_callback)
    result = Empirical(traces, log_weights, name="batched_importance_sampling_posterior")
    result.engine_stats = stats
    return result
