"""The pyprob-like probabilistic programming layer (the paper's core contribution).

Public API highlights:

* :func:`sample` / :func:`observe` — the probabilistic-program primitives,
* :class:`Model`, :class:`FunctionModel`, :class:`RemoteModel` — local and
  PPX-controlled models,
* :class:`Empirical` — weighted posterior representations,
* :mod:`repro.ppl.inference` — importance sampling, RMH/LMH and IC engines,
* :mod:`repro.ppl.nn` — the dynamic 3DCNN–LSTM inference network.
"""

from repro.ppl.state import (
    Controller,
    ExecutionState,
    PriorController,
    ProposalController,
    ReplayController,
    current_state,
    observe,
    sample,
)
from repro.ppl.model import FunctionModel, Model, RemoteModel
from repro.ppl.empirical import Empirical, FrozenPosterior
from repro.ppl import inference
from repro.ppl import nn

__all__ = [
    "sample",
    "observe",
    "current_state",
    "Controller",
    "ExecutionState",
    "PriorController",
    "ProposalController",
    "ReplayController",
    "Model",
    "FunctionModel",
    "RemoteModel",
    "Empirical",
    "FrozenPosterior",
    "inference",
    "nn",
]
