"""Execution state: the machinery behind ``sample`` and ``observe``.

A probabilistic program (a Python generative function, or a remote simulator
speaking PPX) calls :func:`sample` at every random-number draw and
:func:`observe` at every conditioning point.  While a model executes under
:class:`ExecutionState`, those calls are routed to a *controller* that decides
the value of each draw.  Different inference engines plug in different
controllers:

* :class:`PriorController` — draw from the prior (forward simulation /
  training-data generation),
* :class:`ReplayController` — reuse the values of an existing trace except at
  a chosen resample site (the single-site RMH/LMH kernel),
* :class:`ProposalController` — draw from per-address proposal distributions
  (importance sampling, and IC where the proposals come from the trained NN).

Every controller also reports the log-density of its choice under the
distribution it actually sampled from, so that importance weights and MH
acceptance ratios can be formed exactly.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.common.rng import RandomState, get_rng
from repro.distributions import Distribution
from repro.ppx.addresses import AddressBuilder
from repro.trace.sample import Sample
from repro.trace.trace import Trace

__all__ = [
    "ExecutionState",
    "Controller",
    "PriorController",
    "ReplayController",
    "ProposalController",
    "sample",
    "observe",
    "current_state",
]


class Controller:
    """Policy deciding the value of every latent draw during one execution."""

    def choose(
        self,
        address: str,
        instance: int,
        distribution: Distribution,
        name: Optional[str],
        rng: RandomState,
    ) -> Tuple[Any, float]:
        """Return ``(value, log_q)`` where ``log_q`` is the log-density of the
        chosen value under the distribution it was actually drawn from."""
        raise NotImplementedError


class PriorController(Controller):
    """Draw every latent from its prior (forward simulation)."""

    def choose(self, address, instance, distribution, name, rng):
        value = distribution.sample(rng)
        log_q = float(np.sum(distribution.log_prob(value)))
        return value, log_q


class ReplayController(Controller):
    """Reuse values from a base trace, except at one resample site.

    Used by the single-site Metropolis–Hastings engines: the proposed trace
    reuses the current trace's values at every (address, instance) pair except
    the chosen ``resample_key``, whose value is supplied by the MCMC kernel.
    Addresses not present in the base trace (the program took a different
    path) are drawn fresh from the prior.
    """

    def __init__(
        self,
        base_values: Dict[Tuple[str, int], Any],
        resample_key: Optional[Tuple[str, int]] = None,
        resample_value: Any = None,
    ) -> None:
        self.base_values = base_values
        self.resample_key = resample_key
        self.resample_value = resample_value
        #: log prior density of values drawn fresh (not reused, not the resample site)
        self.fresh_log_prob = 0.0
        #: keys of the base trace that were reused in this execution
        self.reused_keys: List[Tuple[str, int]] = []
        self.fresh_keys: List[Tuple[str, int]] = []

    def choose(self, address, instance, distribution, name, rng):
        key = (address, instance)
        if self.resample_key is not None and key == self.resample_key:
            value = self.resample_value
            log_q = float(np.sum(distribution.log_prob(value)))
            return value, log_q
        if key in self.base_values:
            value = self.base_values[key]
            log_q = float(np.sum(distribution.log_prob(value)))
            # A reused value can become impossible under the new path's prior
            # (e.g. changed support); treat that as a fresh prior draw instead.
            if np.isfinite(log_q):
                self.reused_keys.append(key)
                return value, log_q
        value = distribution.sample(rng)
        log_q = float(np.sum(distribution.log_prob(value)))
        self.fresh_log_prob += log_q
        self.fresh_keys.append(key)
        return value, log_q


class ProposalController(Controller):
    """Draw from per-address proposal distributions q(x|y).

    ``proposal_provider(address, instance, prior, context)`` returns either a
    proposal to sample from or ``None`` to fall back to the prior.  The
    accumulated ``log_q`` (proposal) and ``log_prior`` terms give the
    importance weight ``log p(x,y) - log q(x|y)`` when combined with the
    trace's likelihood.

    The proposal is consumed purely through ``sample(rng)`` and
    ``log_prob(value)``, so providers may return full
    :class:`Distribution` objects (the sequential engine) or the lightweight
    :class:`repro.distributions.batched.BatchedRowView` row views the
    lockstep engine's array-parameterised proposal steps emit — the
    controller is deliberately agnostic between the two.
    """

    def __init__(
        self,
        proposal_provider: Callable[[str, int, Distribution, "ExecutionState"], Optional[Distribution]],
        state: Optional["ExecutionState"] = None,
    ) -> None:
        self.proposal_provider = proposal_provider
        self.state = state
        self.log_q = 0.0
        self.log_prior = 0.0
        self.num_proposed = 0

    def choose(self, address, instance, distribution, name, rng):
        proposal = self.proposal_provider(address, instance, distribution, self.state)
        if proposal is None:
            value = distribution.sample(rng)
            log_q = float(np.sum(distribution.log_prob(value)))
        else:
            value = proposal.sample(rng)
            log_q = float(np.sum(proposal.log_prob(value)))
            self.num_proposed += 1
        log_prior = float(np.sum(distribution.log_prob(value)))
        self.log_q += log_q
        self.log_prior += log_prior
        return value, log_q


class ExecutionState:
    """Tracks one execution of a probabilistic program."""

    def __init__(
        self,
        controller: Controller,
        rng: Optional[RandomState] = None,
        observed_values: Optional[Dict[str, Any]] = None,
        address_builder: Optional[AddressBuilder] = None,
    ) -> None:
        self.controller = controller
        self.rng = rng or get_rng()
        self.observed_values = observed_values or {}
        self.address_builder = address_builder or AddressBuilder()
        self.trace = Trace()
        self.log_q = 0.0           # total proposal log-density of latent draws
        self.log_prior = 0.0       # total prior log-density of latent draws
        self._address_counts: Dict[str, int] = {}
        # Tell the proposal controller (if any) which state it serves.
        if isinstance(controller, ProposalController) and controller.state is None:
            controller.state = self

    # ------------------------------------------------------------------ sample
    def do_sample(
        self,
        distribution: Distribution,
        name: Optional[str] = None,
        address: Optional[str] = None,
        control: bool = True,
    ):
        resolved = address or self.address_builder.build(skip_frames=3)
        instance = self._address_counts.get(resolved, 0)
        self._address_counts[resolved] = instance + 1
        if control:
            value, log_q = self.controller.choose(resolved, instance, distribution, name, self.rng)
        else:
            value = distribution.sample(self.rng)
            log_q = float(np.sum(distribution.log_prob(value)))
        log_prior = float(np.sum(distribution.log_prob(value)))
        self.log_q += log_q
        self.log_prior += log_prior
        self.trace.add_sample(
            Sample(
                address=resolved,
                distribution=distribution,
                value=value,
                observed=False,
                log_prob=log_prior,
                controlled=control,
                name=name,
            )
        )
        return value

    # ----------------------------------------------------------------- observe
    def do_observe(
        self,
        distribution: Distribution,
        value: Any = None,
        name: Optional[str] = None,
        address: Optional[str] = None,
    ) -> Any:
        resolved = address or self.address_builder.build(skip_frames=3)
        key = name if name is not None else resolved
        if key in self.observed_values:
            scored_value = self.observed_values[key]
        else:
            scored_value = value if value is not None else distribution.sample(self.rng)
        log_prob = float(np.sum(distribution.log_prob(scored_value)))
        self.trace.add_sample(
            Sample(
                address=resolved,
                distribution=distribution,
                value=scored_value,
                observed=True,
                log_prob=log_prob,
                controlled=False,
                name=name,
            )
        )
        return scored_value

    # -------------------------------------------------------------- finalising
    def finalize(self, result: Any = None) -> Trace:
        observation: Dict[str, Any] = {}
        for sample_record in self.trace.observes:
            key = sample_record.name if sample_record.name is not None else sample_record.address
            observation[key] = sample_record.value
        self.trace.freeze(result=result, observation=observation)
        return self.trace

    @property
    def log_importance_weight(self) -> float:
        """log p(x, y) - log q(x) for the recorded execution."""
        return self.trace.log_joint - self.log_q


# ----------------------------------------------------------------------- globals
_state_stack: "threading.local" = threading.local()


def _stack() -> List[ExecutionState]:
    if not hasattr(_state_stack, "stack"):
        _state_stack.stack = []
    return _state_stack.stack


def push_state(state: ExecutionState) -> None:
    _stack().append(state)


def pop_state() -> ExecutionState:
    return _stack().pop()


def current_state() -> Optional[ExecutionState]:
    stack = _stack()
    return stack[-1] if stack else None


def sample(
    distribution: Distribution,
    name: Optional[str] = None,
    address: Optional[str] = None,
    control: bool = True,
):
    """Draw a random value inside a probabilistic program.

    Outside of an inference/tracing context this simply samples from the
    distribution, so generative code can also be run stand-alone.
    """
    state = current_state()
    if state is None:
        return distribution.sample(get_rng())
    return state.do_sample(distribution, name=name, address=address, control=control)


def observe(
    distribution: Distribution,
    value: Any = None,
    name: Optional[str] = None,
    address: Optional[str] = None,
):
    """Record a conditioning statement inside a probabilistic program."""
    state = current_state()
    if state is None:
        return value if value is not None else distribution.sample(get_rng())
    return state.do_observe(distribution, value=value, name=name, address=address)
