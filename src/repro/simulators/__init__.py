"""Scientific simulators: the mini-Sherpa tau decay pipeline and friends."""

from repro.simulators.handle import LocalHandle, SimulatorHandle
from repro.simulators.channels import DECAY_CHANNELS, TAU_MASS, branching_ratios, channel_names
from repro.simulators.detector import Deposit, Detector3D, DetectorConfig
from repro.simulators.tau_decay import (
    TauDecayConfig,
    TauDecayModel,
    ground_truth_event,
    tau_decay_program,
)
from repro.simulators.spectroscopy import (
    SpectroscopyConfig,
    SpectroscopyModel,
    spectroscopy_program,
)
from repro.simulators.external import SIMULATOR_REGISTRY, start_remote_model

__all__ = [
    "LocalHandle",
    "SimulatorHandle",
    "DECAY_CHANNELS",
    "TAU_MASS",
    "branching_ratios",
    "channel_names",
    "Deposit",
    "Detector3D",
    "DetectorConfig",
    "TauDecayConfig",
    "TauDecayModel",
    "ground_truth_event",
    "tau_decay_program",
    "SpectroscopyConfig",
    "SpectroscopyModel",
    "spectroscopy_program",
    "SIMULATOR_REGISTRY",
    "start_remote_model",
]
