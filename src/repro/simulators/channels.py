"""Tau-lepton decay channel table.

Sherpa models tau production and decay through the full Standard-Model decay
table; this module provides the mini-Sherpa equivalent: the dominant tau decay
channels with their branching ratios, the visible/invisible final-state
particle content, and particle masses.  The channel index is the categorical
latent variable shown in the "Decay Channel" panel of Figure 8 (the paper's
setup has ~38 channels; this table keeps the dominant ones plus an "other"
bucket so the categorical structure and the mode, tau -> pi nu_tau, are
preserved).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

__all__ = ["Particle", "DecayChannel", "DECAY_CHANNELS", "branching_ratios", "channel_names"]

# Particle masses in GeV/c^2.
MASS = {
    "pi": 0.13957,
    "pi0": 0.13498,
    "K": 0.49368,
    "e": 0.000511,
    "mu": 0.10566,
    "nu": 0.0,
    "gamma": 0.0,
}


@dataclass(frozen=True)
class Particle:
    """A final-state particle species."""

    name: str
    mass: float
    charged: bool
    visible: bool  # whether it deposits energy in the detector


def _p(name: str, charged: bool, visible: bool) -> Particle:
    return Particle(name=name, mass=MASS[name], charged=charged, visible=visible)


PION = _p("pi", charged=True, visible=True)
PION0 = _p("pi0", charged=False, visible=True)
KAON = _p("K", charged=True, visible=True)
ELECTRON = _p("e", charged=True, visible=True)
MUON = _p("mu", charged=True, visible=True)
NEUTRINO = _p("nu", charged=False, visible=False)


@dataclass(frozen=True)
class DecayChannel:
    """One tau decay channel: visible products, invisible products, branching ratio."""

    name: str
    branching_ratio: float
    products: Tuple[Particle, ...]

    @property
    def visible_products(self) -> Tuple[Particle, ...]:
        return tuple(p for p in self.products if p.visible)

    @property
    def invisible_products(self) -> Tuple[Particle, ...]:
        return tuple(p for p in self.products if not p.visible)

    @property
    def num_products(self) -> int:
        return len(self.products)


# Branching ratios loosely follow the PDG values for the dominant channels,
# renormalised to sum to 1 over the table.
DECAY_CHANNELS: List[DecayChannel] = [
    DecayChannel("tau->pi nu", 0.1082, (PION, NEUTRINO)),
    DecayChannel("tau->pi pi0 nu", 0.2549, (PION, PION0, NEUTRINO)),
    DecayChannel("tau->pi 2pi0 nu", 0.0926, (PION, PION0, PION0, NEUTRINO)),
    DecayChannel("tau->3pi nu", 0.0931, (PION, PION, PION, NEUTRINO)),
    DecayChannel("tau->3pi pi0 nu", 0.0462, (PION, PION, PION, PION0, NEUTRINO)),
    DecayChannel("tau->e nu nu", 0.1782, (ELECTRON, NEUTRINO, NEUTRINO)),
    DecayChannel("tau->mu nu nu", 0.1739, (MUON, NEUTRINO, NEUTRINO)),
    DecayChannel("tau->K nu", 0.0070, (KAON, NEUTRINO)),
    DecayChannel("tau->K pi0 nu", 0.0043, (KAON, PION0, NEUTRINO)),
    DecayChannel("tau->pi 3pi0 nu", 0.0105, (PION, PION0, PION0, PION0, NEUTRINO)),
]

_total_br = sum(c.branching_ratio for c in DECAY_CHANNELS)


def branching_ratios() -> np.ndarray:
    """Normalised branching-ratio vector over the channel table."""
    return np.asarray([c.branching_ratio / _total_br for c in DECAY_CHANNELS])


def channel_names() -> List[str]:
    return [c.name for c in DECAY_CHANNELS]


#: Tau mass in GeV/c^2 (used by the decay kinematics).
TAU_MASS = 1.77686
