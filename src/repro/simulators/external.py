"""Run a simulator in a separate process, coupled over PPX.

This is the deployment shape that makes Etalumis novel: the simulator (Sherpa,
nearly a million lines of C++) runs as its own process and the PPL controls it
purely through protocol messages.  Here the "foreign" simulator is one of the
Python programs in :mod:`repro.simulators`, launched with
``python -m repro.simulators.external`` so that it genuinely lives in another
interpreter and communicates only through a TCP socket.

Typical use (see ``examples/remote_simulator_ppx.py``)::

    remote, process = start_remote_model("tau_decay")
    posterior = remote.posterior({"detector": observation}, num_traces=200)
    remote.shutdown(); process.wait()
"""

from __future__ import annotations

import argparse
import subprocess
import sys
import time
from typing import Callable, Dict, Optional, Tuple

from repro.ppl.model import RemoteModel
from repro.ppx.client import SimulatorClient
from repro.ppx.transport import SocketTransport, connect_tcp, listen_tcp

__all__ = ["SIMULATOR_REGISTRY", "start_remote_model", "run_client", "main"]


def _tau_decay_simulator(client, observation):
    from repro.simulators.tau_decay import TauDecayConfig, tau_decay_program

    return None if tau_decay_program(client, TauDecayConfig()) is None else 0


def _gaussian_simulator(client, observation):
    """A tiny two-latent Gaussian model used by tests (fast to run remotely)."""
    import numpy as np

    from repro.distributions import Normal

    mu = client.sample(Normal(0.0, 1.0), name="mu")
    client.observe(Normal(float(np.asarray(mu)), 0.5), value=0.0, name="obs")
    return float(np.asarray(mu))


def _spectroscopy_simulator(client, observation):
    from repro.simulators.spectroscopy import SpectroscopyConfig, spectroscopy_program

    spectroscopy_program(client, SpectroscopyConfig())
    return 0


#: name -> simulator callable usable by :class:`repro.ppx.client.SimulatorClient`
SIMULATOR_REGISTRY: Dict[str, Callable] = {
    "tau_decay": _tau_decay_simulator,
    "gaussian": _gaussian_simulator,
    "spectroscopy": _spectroscopy_simulator,
}


def run_client(model_name: str, host: str, port: int) -> None:
    """Connect to the PPL side and serve PPX requests until shutdown."""
    if model_name not in SIMULATOR_REGISTRY:
        raise KeyError(f"unknown simulator {model_name!r}; options: {sorted(SIMULATOR_REGISTRY)}")
    transport = connect_tcp(host, port)
    client = SimulatorClient(
        transport,
        SIMULATOR_REGISTRY[model_name],
        system_name="repro-external-simulator",
        model_name=model_name,
    )
    client.serve_forever()
    transport.close()


def start_remote_model(
    model_name: str,
    host: str = "127.0.0.1",
    timeout: float = 30.0,
    python_executable: Optional[str] = None,
) -> Tuple[RemoteModel, subprocess.Popen]:
    """Launch the simulator subprocess and return a connected :class:`RemoteModel`.

    The PPL side listens on an ephemeral TCP port; the subprocess connects to
    it and performs the PPX handshake.  The caller is responsible for calling
    ``remote.shutdown()`` and waiting for the process.
    """
    server_socket, port = listen_tcp(host=host, port=0)
    process = subprocess.Popen(
        [
            python_executable or sys.executable,
            "-m",
            "repro.simulators.external",
            "--model",
            model_name,
            "--host",
            host,
            "--port",
            str(port),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
    )
    server_socket.settimeout(timeout)
    try:
        connection, _ = server_socket.accept()
    except Exception:
        process.kill()
        raise
    finally:
        server_socket.close()
    transport = SocketTransport(connection)
    remote = RemoteModel(transport, name=f"remote-{model_name}")
    return remote, process


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(description="Run a repro simulator as a PPX client process")
    parser.add_argument("--model", required=True, choices=sorted(SIMULATOR_REGISTRY))
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    args = parser.parse_args(argv)
    run_client(args.model, args.host, args.port)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in tests
    sys.exit(main())
